"""Package metadata for the HITSnDIFFs reproduction.

The single source of installation truth: CI and local installs both run
``pip install -e ".[test]"``, so the runtime requirements and the test
extras below cannot drift from what the workflow actually exercises.
Kept as ``setup.py`` (rather than ``pyproject.toml``) so editable installs
work in offline environments whose setuptools lacks the ``wheel`` package
required by the PEP 660 editable-install path
(``pip install -e . --no-use-pep517``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-hitsndiffs",
    version="1.0.0",
    description=(
        "Reproduction of 'HITSnDIFFs: From Truth Discovery to Ability "
        "Discovery by Recovering Matrices with the Consecutive Ones "
        "Property' (ICDE 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy",
        "scipy",
    ],
    extras_require={
        "test": [
            "pytest",
            "pytest-cov",
            "hypothesis",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro-experiments = repro.cli:main",
        ],
    },
)
