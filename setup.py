"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools lacks the ``wheel`` package required by the
PEP 660 editable-install path (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
