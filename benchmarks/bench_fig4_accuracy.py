"""Figure 4: accuracy of user ranking on synthetic polytomous IRT data.

Eight panels (paper Section IV-B):

* 4a-4c — accuracy vs number of questions ``n`` for GRM / Bock / Samejima
* 4d   — accuracy vs number of users ``m`` (Samejima)
* 4e   — accuracy vs number of options ``k`` (Samejima)
* 4f   — accuracy vs question difficulty range ``b`` (Samejima)
* 4g   — accuracy vs probability ``p`` of answering a question (Samejima)
* 4h   — accuracy vs ``n`` on ideal consistent (C1P) responses

Each benchmark times one sweep and prints the mean Spearman accuracy per
method and parameter value — the series plotted in the corresponding panel.
Grid sizes are reduced relative to the paper (which sweeps up to n=1600)
to keep the harness laptop-friendly; the orderings between methods are what
should match.
"""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import (
    accuracy_sweep,
    c1p_dataset_factory,
    irt_dataset_factory,
)

#: Reduced sweep grids (paper: {25, 50, 100, 200, 400, 800, 1600}).
QUESTION_GRID = [25, 50, 100, 200]
USER_GRID = [25, 50, 100, 200]
OPTION_GRID = [2, 3, 4, 5, 6]
PROBABILITY_GRID = [0.6, 0.7, 0.8, 0.9, 1.0]
#: Difficulty ranges of Figure 4f (paper shifts b from [-1,0] to [0.5,1.5]).
DIFFICULTY_RANGES = [
    (-1.0, 0.0),
    (-0.75, 0.25),
    (-0.5, 0.5),
    (-0.25, 0.75),
    (0.0, 1.0),
    (0.25, 1.25),
    (0.5, 1.5),
]
NUM_TRIALS = 2
SEED = 2024


def _print_sweep(table_printer, title, sweep):
    rows = [
        (value, method, mean, std)
        for (value, method, mean, std) in sweep.to_rows()
    ]
    table_printer(title, (sweep.parameter_name, "method", "mean accuracy", "std"), rows)


@pytest.mark.parametrize("model", ["grm", "bock", "samejima"])
def test_fig4_vary_n(benchmark, table_printer, model):
    """Figures 4a-4c: accuracy vs number of questions, one panel per model."""
    factory = irt_dataset_factory(model, num_users=100, num_options=3, vary="num_items")
    sweep = benchmark.pedantic(
        accuracy_sweep,
        args=("num_questions", QUESTION_GRID, factory),
        kwargs={"num_trials": NUM_TRIALS, "random_state": SEED},
        rounds=1,
        iterations=1,
    )
    _print_sweep(table_printer, f"Figure 4 ({model}): accuracy vs #questions", sweep)
    assert sweep.mean_accuracy["HnD"][-1] > 0.75


def test_fig4_vary_m(benchmark, table_printer):
    """Figure 4d: accuracy vs number of users (Samejima)."""
    factory = irt_dataset_factory("samejima", num_items=100, num_options=3, vary="num_users")
    sweep = benchmark.pedantic(
        accuracy_sweep,
        args=("num_users", USER_GRID, factory),
        kwargs={"num_trials": NUM_TRIALS, "random_state": SEED + 1},
        rounds=1,
        iterations=1,
    )
    _print_sweep(table_printer, "Figure 4d: accuracy vs #users (Samejima)", sweep)
    assert sweep.mean_accuracy["HnD"][-1] > 0.8


def test_fig4_vary_k(benchmark, table_printer):
    """Figure 4e: accuracy vs number of options (Samejima)."""
    factory = irt_dataset_factory("samejima", num_users=100, num_items=100,
                                  vary="num_options")
    sweep = benchmark.pedantic(
        accuracy_sweep,
        args=("num_options", OPTION_GRID, factory),
        kwargs={"num_trials": NUM_TRIALS, "random_state": SEED + 2},
        rounds=1,
        iterations=1,
    )
    _print_sweep(table_printer, "Figure 4e: accuracy vs #options (Samejima)", sweep)
    assert min(sweep.mean_accuracy["HnD"]) > 0.7


def test_fig4_vary_difficulty(benchmark, table_printer):
    """Figure 4f: accuracy vs question difficulty range (Samejima)."""

    def run():
        results = []
        for difficulty_range in DIFFICULTY_RANGES:
            factory = irt_dataset_factory(
                "samejima", num_users=100, num_items=100, num_options=3,
                vary="difficulty_range",
            )
            sweep = accuracy_sweep(
                "difficulty_range", [difficulty_range], factory,
                num_trials=NUM_TRIALS, random_state=SEED + 3,
            )
            results.append(sweep)
        return results

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for difficulty_range, sweep in zip(DIFFICULTY_RANGES, sweeps):
        for method, means in sweep.mean_accuracy.items():
            rows.append((str(difficulty_range), method, float(means[0])))
    table_printer("Figure 4f: accuracy vs difficulty range (Samejima)",
                  ("difficulty range", "method", "mean accuracy"), rows)
    # Samejima models random guessing, so HnD keeps working for all but the
    # most extreme range (where most users fall below every threshold and the
    # ranking signal among pure guessers vanishes); crucially it never flips
    # to the reverse ranking the way the no-guessing models do (Figure 9c/9g).
    hnd_values = [float(s.mean_accuracy["HnD"][0]) for s in sweeps]
    assert min(hnd_values[:-2]) > 0.5
    assert hnd_values[-1] > -0.5


def test_fig4_vary_p(benchmark, table_printer):
    """Figure 4g: accuracy vs probability of answering a question (Samejima)."""
    factory = irt_dataset_factory("samejima", num_users=100, num_items=100,
                                  num_options=3, vary="answer_probability")
    sweep = benchmark.pedantic(
        accuracy_sweep,
        args=("answer_probability", PROBABILITY_GRID, factory),
        kwargs={"num_trials": NUM_TRIALS, "random_state": SEED + 4},
        rounds=1,
        iterations=1,
    )
    _print_sweep(table_printer, "Figure 4g: accuracy vs answer probability (Samejima)", sweep)
    assert sweep.mean_accuracy["HnD"][-1] > 0.8


def test_fig4_c1p(benchmark, table_printer):
    """Figure 4h: accuracy vs #questions on ideal C1P data.

    Only HnD and ABH reconstruct the consistent ordering (accuracy ~1);
    the HITS-style baselines do not.
    """
    factory = c1p_dataset_factory(num_users=100, num_options=3)
    sweep = benchmark.pedantic(
        accuracy_sweep,
        args=("num_questions", QUESTION_GRID, factory),
        kwargs={"num_trials": NUM_TRIALS, "random_state": SEED + 5},
        rounds=1,
        iterations=1,
    )
    _print_sweep(table_printer, "Figure 4h: accuracy vs #questions (C1P data)", sweep)
    # With few questions several users share identical response rows; their
    # relative order is undetermined, which caps Spearman slightly below 1.
    assert min(sweep.mean_accuracy["HnD"]) > 0.97
    assert min(sweep.mean_accuracy["ABH"]) > 0.97
    assert max(sweep.mean_accuracy["HITS"]) < 0.95
