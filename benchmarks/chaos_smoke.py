"""CI chaos smoke: kill a remote worker mid-solve, demand the same bits.

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py [--log chaos-log.txt]

Spawns two real ``python -m repro.engine.remote.worker`` subprocesses on
localhost ephemeral ports, routes worker 1 through a frame-counting
:class:`~repro.engine.remote.chaos.ChaosProxy`, and ranks a sparse crowd
with HnD-Power over the remote backend.  After a fixed number of protocol
requests the proxy SIGKILLs worker 1 — mid-solve, past shard shipping —
and the run only passes if the coordinator reassigns the orphaned shards
and reproduces the fused ranker's scores **bit for bit**.

The proxy's frame-by-frame log (every forwarded request plus every
injected fault) is written to ``--log`` for upload as a CI artifact.

Exit status: 0 on success, 1 on any divergence or missed recovery.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

import numpy as np

from repro.core.hitsndiffs import HNDPower
from repro.core.response import ResponseMatrix
from repro.engine import ChaosProxy, ShardedResponse, rank_hnd_power
from repro.engine.remote.coordinator import RemoteEngine
from repro.engine.remote.supervision import SupervisionConfig

from bench_perf import _BenchWorker

#: Kill worker 1 before this (1-based) proxied request is forwarded.
KILL_AT_REQUEST = 40


def _crowd(num_users: int = 4_000, num_items: int = 200,
           density: float = 0.02, num_options: int = 4,
           seed: int = 7) -> ResponseMatrix:
    rng = np.random.default_rng(seed)
    mask = rng.random((num_users, num_items)) < density
    users, items = np.nonzero(mask)
    options = rng.integers(0, num_options, size=users.size)
    return ResponseMatrix.from_triples(
        users, items, options,
        shape=(num_users, num_items), num_options=num_options,
    )


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--log", default="chaos-log.txt",
                        help="where to write the proxy's frame log")
    args = parser.parse_args(argv)

    crowd = _crowd()
    reference = HNDPower(random_state=0).rank(crowd)
    sharded = ShardedResponse.split(crowd, 8)
    supervision = SupervisionConfig(
        request_timeout=10.0, connect_timeout=3.0, max_attempts=2,
        backoff_base=0.05, backoff_max=0.2, heartbeat_interval=0.5,
        heartbeat_timeout=1.0, breaker_threshold=2, breaker_reset=1.0,
    )

    workers = [_BenchWorker(), _BenchWorker()]
    failures: List[str] = []
    try:
        with ChaosProxy(workers[1].host, workers[1].port,
                        log_path=args.log) as proxy:
            proxy.on_request = (
                lambda count: workers[1].kill()
                if count == KILL_AT_REQUEST else None
            )
            start = time.perf_counter()
            with RemoteEngine(
                sharded, [workers[0].address, proxy.address],
                supervision=supervision,
            ) as engine:
                ranking = rank_hnd_power(engine, random_state=0)
                diagnostics = engine.diagnostics()
                events = engine.events()
            elapsed = time.perf_counter() - start

        if not np.array_equal(ranking.scores, reference.scores):
            failures.append("post-kill scores diverged from the fused ranker")
        if diagnostics["reassignments"] < 1:
            failures.append("no shard reassignment recorded — the kill "
                            "never disturbed the solve")
        if diagnostics["alive_workers"] != 1:
            failures.append("expected exactly one surviving worker, got %d"
                            % diagnostics["alive_workers"])
        kinds = [event["event"] for event in events]
        for expected in ("worker_lost", "shard_reassigned"):
            if expected not in kinds:
                failures.append("missing %r event in %r" % (expected, kinds))

        print("chaos smoke: killed worker 1 @ request %d; recovered in "
              "%.2f s with %d reassignment(s); bit-identical: %s"
              % (KILL_AT_REQUEST, elapsed, diagnostics["reassignments"],
                 not failures))
        print("chaos log (%d lines) -> %s" % (len(proxy.log), args.log))
    finally:
        for worker in workers:
            worker.stop()

    for failure in failures:
        print("FAIL:", failure)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
