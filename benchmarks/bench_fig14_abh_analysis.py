"""Figure 14: detailed analysis of ABH-power (Appendix E-B).

Two panels:

* 14a — the number of power iterations ABH-power needs grows (roughly
  linearly) with the spectral shift ``beta``;
* 14b — the number of iterations grows with the number of questions, which
  explains why ABH-power is not linear in practice even when its
  per-iteration cost matches HND-power's.
"""

from __future__ import annotations

import numpy as np

from repro.c1p.abh import ABHPower
from repro.core.hitsndiffs import HNDPower
from repro.irt.generators import generate_dataset

SEED = 1400


def test_fig14a_iterations_grow_with_beta(benchmark, table_printer):
    dataset = generate_dataset("samejima", 100, 100, 3, random_state=SEED)
    base_beta = ABHPower(random_state=0).rank(dataset.response).diagnostics["beta"]
    multipliers = [1, 2, 4, 8]

    def run():
        iterations = []
        for multiplier in multipliers:
            ranking = ABHPower(beta=multiplier * base_beta, random_state=0,
                               max_iterations=200_000).rank(dataset.response)
            iterations.append(int(ranking.diagnostics["iterations"]))
        return iterations

    iterations = benchmark.pedantic(run, rounds=1, iterations=1)
    table_printer("Figure 14a: ABH-power iterations vs beta",
                  ("beta multiplier", "iterations", "iterations / smallest"),
                  [(multiplier, count, count / max(iterations[0], 1))
                   for multiplier, count in zip(multipliers, iterations)])
    # Iterations increase with beta (the paper reports a roughly linear trend).
    assert iterations[-1] > iterations[0]
    assert all(later >= earlier for earlier, later in zip(iterations, iterations[1:]))


def test_fig14b_iterations_vs_question_count(benchmark, table_printer):
    question_counts = [100, 200, 400, 800]

    def run():
        abh_iterations = []
        hnd_iterations = []
        for num_questions in question_counts:
            dataset = generate_dataset("samejima", 100, num_questions, 3,
                                       random_state=SEED + num_questions)
            abh = ABHPower(random_state=1, max_iterations=200_000).rank(dataset.response)
            hnd = HNDPower(random_state=1).rank(dataset.response)
            abh_iterations.append(int(abh.diagnostics["iterations"]))
            hnd_iterations.append(int(hnd.diagnostics["iterations"]))
        return abh_iterations, hnd_iterations

    abh_iterations, hnd_iterations = benchmark.pedantic(run, rounds=1, iterations=1)
    table_printer("Figure 14b: power-iteration counts vs #questions",
                  ("questions", "ABH-power iterations", "HnD-power iterations"),
                  list(zip(question_counts, abh_iterations, hnd_iterations)))
    # ABH-power needs far more iterations than HND-power throughout, which is
    # the paper's explanation for its super-linear wall-clock behaviour.
    assert np.mean(abh_iterations) > 2 * np.mean(hnd_iterations)
