"""Ablation benchmarks for the design choices HITSnDIFFS is built on.

Not a paper figure, but the design decisions the library is built on
deserve their own measurements:

* **2nd vs 1st eigenvector** — AVGHITS' dominant eigenvector carries no
  ranking information (it is the all-ones direction); the ranking lives in
  the 2nd eigenvector.  Compared against plain HITS on ideal data.
* **Decile-entropy symmetry breaking** — without it, the returned ordering
  is only correct up to reversal; the ablation measures how often the
  heuristic orients correctly across the three IRT generators.
* **Averaging vs summing** (AVGHITS vs HITS update rule) on heterogeneous
  items with missing answers, where normalization is what keeps prolific
  users from dominating.
"""

from __future__ import annotations

import numpy as np

from repro.core.hitsndiffs import HNDPower
from repro.evaluation.metrics import orientation_agnostic_accuracy, spearman_accuracy
from repro.irt.generators import generate_c1p_dataset, generate_dataset
from repro.truth_discovery import HITSRanker

SEED = 777
NUM_TRIALS = 5


def test_ablation_second_vs_first_eigenvector(benchmark, table_printer):
    """On ideal C1P data the 2nd-eigenvector ranking (HnD) is exact while the
    1st-eigenvector ranking (HITS) is far from it."""

    def run():
        hnd_accuracies, hits_accuracies = [], []
        for trial in range(NUM_TRIALS):
            dataset = generate_c1p_dataset(80, 120, 3, random_state=SEED + trial)
            hnd = HNDPower(random_state=trial).rank(dataset.response)
            hits = HITSRanker().rank(dataset.response)
            hnd_accuracies.append(spearman_accuracy(hnd, dataset.abilities))
            hits_accuracies.append(spearman_accuracy(hits, dataset.abilities))
        return float(np.mean(hnd_accuracies)), float(np.mean(hits_accuracies))

    hnd_mean, hits_mean = benchmark.pedantic(run, rounds=1, iterations=1)
    table_printer("Ablation: 2nd eigenvector (HnD) vs 1st eigenvector (HITS) on C1P data",
                  ("method", "mean accuracy"),
                  [("HnD (2nd eigenvector)", hnd_mean), ("HITS (1st eigenvector)", hits_mean)])
    assert hnd_mean > 0.99
    assert hits_mean < 0.9


def test_ablation_symmetry_breaking(benchmark, table_printer):
    """The decile-entropy heuristic orients the ranking correctly on the vast
    majority of instances from every generator."""

    def run():
        outcomes = {}
        for model in ("grm", "bock", "samejima"):
            correct = 0
            magnitudes = []
            for trial in range(NUM_TRIALS):
                dataset = generate_dataset(model, 100, 100, 3,
                                           random_state=SEED + trial)
                ranking = HNDPower(random_state=trial).rank(dataset.response)
                accuracy = spearman_accuracy(ranking, dataset.abilities)
                magnitudes.append(orientation_agnostic_accuracy(ranking, dataset.abilities))
                correct += accuracy > 0
            outcomes[model] = (correct / NUM_TRIALS, float(np.mean(magnitudes)))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    table_printer("Ablation: decile-entropy orientation success rate",
                  ("model", "correct orientation rate", "|accuracy| (orientation-free)"),
                  [(model, rate, magnitude) for model, (rate, magnitude) in outcomes.items()])
    for model, (rate, magnitude) in outcomes.items():
        assert rate >= 0.8, model
        assert magnitude > 0.85, model


def test_ablation_averaging_vs_summing_with_missing_answers(benchmark, table_printer):
    """AVGHITS' averaging makes HnD robust to users answering different
    numbers of questions; HITS' summing favours prolific users."""

    def run():
        hnd_accuracies, hits_accuracies = [], []
        for trial in range(NUM_TRIALS):
            dataset = generate_dataset("samejima", 100, 150, 3,
                                       answer_probability=0.6,
                                       random_state=SEED + trial)
            hnd = HNDPower(random_state=trial).rank(dataset.response)
            hits = HITSRanker().rank(dataset.response)
            hnd_accuracies.append(orientation_agnostic_accuracy(hnd, dataset.abilities))
            hits_accuracies.append(orientation_agnostic_accuracy(hits, dataset.abilities))
        return float(np.mean(hnd_accuracies)), float(np.mean(hits_accuracies))

    hnd_mean, hits_mean = benchmark.pedantic(run, rounds=1, iterations=1)
    table_printer("Ablation: averaging (HnD) vs summing (HITS) with 60% coverage",
                  ("method", "mean |accuracy|"),
                  [("HnD (averages)", hnd_mean), ("HITS (sums)", hits_mean)])
    assert hnd_mean >= hits_mean - 0.05
    assert hnd_mean > 0.85
