"""Figures 7, 10 and 11: accuracy on the real-world-shaped MCQ datasets.

Section IV-E / Appendix D-B evaluate the unsupervised methods on six MCQ
datasets (Chinese, English, IT, Medicine, Pokemon, Science), using the
ranking of the "True-answer" baseline as the reference because no ground
truth on user ability exists.  Figure 10 summarizes the dataset shapes;
Figure 11 gives per-dataset correlations; Figure 7 averages them.

The original data is not redistributable, so the registry regenerates
simulated stand-ins with identical shapes (see
``repro.datasets.registry``); the protocol and
the qualitative outcome — no single method wins everywhere, ABH far behind,
HnD competitive with the HITS-family — are what is reproduced.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import dataset_summary_table, list_datasets, load_dataset
from repro.evaluation.experiments import default_ranker_suite, evaluate_rankers
from repro.truth_discovery import TrueAnswerRanker

SEED = 5


def test_fig10_dataset_summary(benchmark, table_printer):
    """Figure 10: the dataset summary table (users / questions / options)."""
    rows = benchmark.pedantic(dataset_summary_table, rounds=1, iterations=1)
    table_printer("Figure 10: real dataset summary",
                  ("dataset", "#users", "#questions", "#options"), list(rows))
    assert len(rows) == 6


def test_fig7_and_fig11_realworld_accuracy(benchmark, table_printer):
    """Figures 7 and 11: correlation with the True-answer reference ranking."""

    def run():
        per_dataset = {}
        for name in list_datasets():
            dataset = load_dataset(name)
            reference = TrueAnswerRanker(dataset.correct_options).rank(dataset.response)
            suite = default_ranker_suite(random_state=SEED)
            result = evaluate_rankers(dataset, suite,
                                      reference_abilities=reference.scores)
            per_dataset[name] = result.accuracies
        return per_dataset

    per_dataset = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, accuracies in per_dataset.items():
        for method, accuracy in accuracies.items():
            rows.append((name, method, 100.0 * accuracy))
    table_printer("Figure 11: per-dataset correlation with True-answer (x100)",
                  ("dataset", "method", "accuracy x100"), rows)

    methods = list(next(iter(per_dataset.values())))
    averages = {
        method: float(np.mean([per_dataset[name][method] for name in per_dataset]))
        for method in methods
    }
    table_printer("Figure 7: average correlation with True-answer (x100)",
                  ("method", "accuracy x100"),
                  [(method, 100.0 * value) for method, value in sorted(
                      averages.items(), key=lambda kv: -kv[1])])

    # Qualitative shape from the paper (Figure 7): ABH is far behind every
    # other method; HnD sits in the leading pack with the HITS-style
    # baselines, which edge it out slightly on these small datasets.
    assert averages["ABH"] < averages["HnD"] - 0.2
    best = max(averages.values())
    assert averages["HnD"] > best - 0.15
    assert averages["HnD"] > 0.6
