"""Serving benchmark: the ``repro.serve`` front end at 200k x 5k (PR 8).

Drives a real server subprocess (``python -m repro.cli serve``, READY-line
handshake — the same path CI and harnesses use) with the canonical
200k-user x 5k-item, 1M-answer crowd and measures what a serving user
feels:

* **warm cache-hit ranks** — repeated identical ranks against an
  unchanged crowd, concurrent clients; per-request p50/p99 latency and
  sustained QPS.  Each request crosses the wire, the event loop, a solver
  thread, and the session's rank cache.
* **append-then-rank cycles** — a small batch is appended (micro-batched,
  acknowledged from the buffer) and the next rank flushes + re-solves;
  cycle p50/p99.
* **coalescing + throttling counters** — concurrent identical cold ranks
  must coalesce onto one solve, and a rate-limited server must reject
  with typed errors; both counters are asserted, not just reported.

The gate is relative and measured in-run, so it holds on hardware of any
speed: the served warm-hit p99 must stay within ``GATE_BOUND`` (one order
of magnitude) of the *direct* in-process RankCache hit on the same crowd
(~37 ms at this scale when the content hash is computed, far less once
memoized — we measure the same memoized path the server serves).

PR 9 adds the **persistence scenario** (``--persistence``): a server with
``--store`` ranks the crowd cold, is SIGKILLed once the write-behind tier
has persisted, and restarts against the same directory — the crowd must
re-register, and the first post-restart rank must be a bit-identical
snapshot replay at least ``PERSIST_GATE`` (10x) faster than the cold
solve, with a follow-up append warm-starting from the pre-restart solver
state.  The gate is relative and in-run, like the serving gate.

Usage::

    python benchmarks/bench_serve.py            # full 200k x 5k, print table
    python benchmarks/bench_serve.py --update   # full run, rewrite
                                                # benchmarks/BENCH_PR8.json
    python benchmarks/bench_serve.py --smoke    # reduced 20k x 1k gate for
                                                # CI (<60 s, exit 1 on
                                                # regression)
    python benchmarks/bench_serve.py --persistence            # restart-warm
                                                # scenario, full scale
    python benchmarks/bench_serve.py --persistence --smoke    # CI variant
    python benchmarks/bench_serve.py --update-persistence     # full run,
                                                # rewrite BENCH_PR9.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_perf import _scenario_crowd  # noqa: E402
from repro.api import CrowdSession  # noqa: E402
from repro.exceptions import RateLimitedError  # noqa: E402
from repro.serve import ServeClient  # noqa: E402

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_PR8.json"
PERSIST_RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_PR9.json"

#: Served warm-hit p99 must stay within this factor of the direct
#: in-process cache hit (the ISSUE's order-of-magnitude bound).
GATE_BOUND = 10.0

#: The first post-restart rank (a disk snapshot replay) must be at least
#: this many times faster than the cold solve it replaces.
PERSIST_GATE = 10.0

#: The persistence scenario ranks with the real eigensolve: the gate
#: compares a ~ms snapshot replay against the full HnD cold solve.
PERSIST_METHOD = "HnD"

#: The method every serving request uses.  MajorityVote keeps the *solve*
#: O(nnz)-cheap so the benchmark isolates the serving overheads (wire,
#: event loop, executor hop, cache lookup) instead of timing HnD's
#: eigensolve yet again — the cache-hit path is method-independent.
METHOD = "MajorityVote"


def _percentile(samples: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples, dtype=float), q))


class ServerProcess:
    """A ``repro.cli serve`` subprocess with READY-line handshake."""

    def __init__(self, *extra_args: str) -> None:
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             *extra_args],
            stdout=subprocess.PIPE, text=True, cwd=str(REPO_ROOT),
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        line = self.proc.stdout.readline().strip()
        match = re.match(r"READY host=(\S+) port=(\d+)$", line)
        if not match:
            self.proc.kill()
            raise RuntimeError("server did not report READY, got %r" % line)
        self.host, self.port = match.group(1), int(match.group(2))

    def client(self, timeout: float = 120.0) -> ServeClient:
        return ServeClient(self.host, self.port, timeout=timeout)

    def stop(self) -> None:
        try:
            with self.client(timeout=10.0) as client:
                client.shutdown()
            self.proc.wait(timeout=15)
        except Exception:
            # Last resort; the latency numbers are already collected.
            self.proc.kill()


def _load_crowd(client: ServeClient, name: str, users, items, options,
                num_items: int, num_options: int,
                chunk: int = 250_000) -> float:
    client.create(name, num_items=num_items, num_options=num_options)
    start = time.perf_counter()
    for lo in range(0, users.size, chunk):
        client.add_answers(name, users[lo:lo + chunk], items[lo:lo + chunk],
                           options[lo:lo + chunk])
    return time.perf_counter() - start


def _bench_direct_hits(users, items, options, num_items, num_options,
                       repeats: int) -> Dict[str, float]:
    """The in-run reference: RankCache hits with no server in the way.

    The memoized content hash is dropped before every hit so each one
    pays the full O(nnz) hash the cache is keyed on — the documented
    serving cost of a warm hit (~37 ms at 200k x 5k), and the honest
    yardstick for the gate: the *server* additionally memoizes across
    requests, so comparing against the memoized lookup (microseconds)
    would gate wire overhead against a dict read.
    """
    session = CrowdSession(num_items=num_items, num_options=num_options)
    session.add_answers(users, items, options)
    session.rank(METHOD)  # cold solve; populates the cache
    matrix = session.matrix
    samples = []
    for _ in range(repeats):
        matrix._content_hash_memo = None
        start = time.perf_counter()
        session.rank(METHOD)
        samples.append((time.perf_counter() - start) * 1000.0)
    return {
        "direct_hit_p50_ms": round(_percentile(samples, 50), 4),
        "direct_hit_p99_ms": round(_percentile(samples, 99), 4),
    }


def _bench_warm_hits(server: ServerProcess, name: str, clients: int,
                     per_client: int) -> Dict[str, float]:
    """Concurrent identical ranks against an unchanged crowd."""
    def one_client(_):
        latencies = []
        with server.client() as client:
            for _ in range(per_client):
                start = time.perf_counter()
                client.rank(name, METHOD)
                latencies.append((time.perf_counter() - start) * 1000.0)
        return latencies

    wall_start = time.perf_counter()
    with ThreadPoolExecutor(clients) as pool:
        batches = list(pool.map(one_client, range(clients)))
    wall = time.perf_counter() - wall_start
    samples = [sample for batch in batches for sample in batch]
    return {
        "warm_hit_requests": len(samples),
        "warm_hit_clients": clients,
        "warm_hit_p50_ms": round(_percentile(samples, 50), 3),
        "warm_hit_p99_ms": round(_percentile(samples, 99), 3),
        "warm_hit_qps": round(len(samples) / wall, 1),
    }


def _bench_append_rank_cycles(server: ServerProcess, name: str,
                              cycles: int, num_users: int, num_items: int,
                              batch: int = 200) -> Dict[str, float]:
    """Append a fresh-user batch, then rank: the incremental-serving loop."""
    samples = []
    with server.client() as client:
        for cycle in range(cycles):
            # Brand-new users answering item 0: guaranteed conflict-free
            # with every earlier answer, whatever the base density.
            base = num_users + cycle * batch
            fresh_users = np.arange(base, base + batch, dtype=np.int64)
            fresh_items = np.zeros(batch, dtype=np.int64)
            fresh_options = fresh_users % 2
            start = time.perf_counter()
            client.add_answers(name, fresh_users, fresh_items, fresh_options)
            client.rank(name, METHOD)
            samples.append((time.perf_counter() - start) * 1000.0)
    return {
        "append_rank_cycles": cycles,
        "append_batch": batch,
        "append_rank_p50_ms": round(_percentile(samples, 50), 2),
        "append_rank_p99_ms": round(_percentile(samples, 99), 2),
    }


def _bench_coalescing(server: ServerProcess, name: str, concurrent: int,
                      fresh_user: int) -> Dict[str, int]:
    """Concurrent identical cold ranks: the single-flight counters."""
    with server.client() as client:
        # A tiny append (a brand-new user, so guaranteed conflict-free)
        # bumps the epoch: the next rank is a fresh solve to coalesce on.
        client.add_answers(name, [fresh_user], [0], [1])

    def one_rank(_):
        with server.client() as client:
            return client.rank(name, METHOD).served

    with ThreadPoolExecutor(concurrent) as pool:
        served = list(pool.map(one_rank, range(concurrent)))
    with server.client() as client:
        counters = client.server_stats()["counters"]
    return {
        "coalesce_concurrent_requests": concurrent,
        "coalesce_served_coalesced": served.count("coalesced"),
        "coalesced_total": int(counters["coalesced"]),
        "solves_total": int(counters["solves"]),
    }


def _bench_rate_limit() -> Dict[str, int]:
    """A throttled server rejects typed — never queues, never hangs."""
    server = ServerProcess("--rate", "25", "--burst", "5")
    rejections = 0
    try:
        with server.client() as client:
            for _ in range(40):
                try:
                    client.ping()
                except RateLimitedError as error:
                    assert error.retry_after is not None
                    rejections += 1
        with server.client() as client:
            counters = client.server_stats()["counters"]
    finally:
        server.stop()
    return {
        "rate_limit_rejections": rejections,
        "rate_limited_counter": int(counters["rate_limited"]),
    }


def _wait_for_persistence(store_dir: Path, timeout: float = 300.0) -> float:
    """Poll until the write-behind tier has landed snapshot + crowd.

    Durability is deliberately off the serving latency path (write-behind
    thread), so the rank reply arriving does NOT mean the files exist yet
    — a SIGKILL issued immediately could land before the store has
    anything to replay.  The scenario kills only after both tiers are on
    disk, which is exactly the contract an operator gets from a graceful
    drain or a few idle milliseconds.
    """
    start = time.perf_counter()
    index_path = store_dir / "index.json"
    while time.perf_counter() - start < timeout:
        # The index is rewritten (atomically) *after* each record/crowd
        # lands, so an index listing both tiers proves the data files are
        # whole — scanning the directories instead would race the store's
        # own temp files.
        try:
            index = json.loads(index_path.read_text())
        except (OSError, json.JSONDecodeError):
            index = {}
        if index.get("snapshots") and index.get("crowds"):
            return time.perf_counter() - start
        time.sleep(0.05)
    raise RuntimeError("write-behind persistence did not land within %.0f s"
                       % timeout)


def run_persistence(num_users: int = 200_000, num_items: int = 5_000,
                    density: float = 0.001, *, smoke: bool = False,
                    store_dir: str = "persistence-store") -> Dict[str, object]:
    """The restart-warm scenario: cold solve, SIGKILL, warm restart."""
    import shutil
    import signal

    scale = "smoke" if smoke else "full"
    users, items, options, results = _scenario_crowd(
        num_users=num_users, num_items=num_items, density=density,
        scale=scale,
    )
    num_options = int(results["num_options"])
    store = Path(store_dir)
    if store.exists():
        shutil.rmtree(store)

    print("persistence: cold server with --store %s ..." % store)
    server = ServerProcess("--solver-threads", "4", "--store", str(store))
    killed = False
    try:
        with server.client(timeout=1800.0) as client:
            load_seconds = _load_crowd(client, "durable", users, items,
                                       options, num_items, num_options)
            start = time.perf_counter()
            cold = client.rank("durable", PERSIST_METHOD, random_state=7)
            cold_seconds = time.perf_counter() - start
            assert "snapshot_hit" not in cold.meta
        results["ingest_seconds"] = round(load_seconds, 3)
        results["persist_cold_rank_seconds"] = round(cold_seconds, 4)
        print("  ingest %.2f s, cold %s rank %.2f s"
              % (load_seconds, PERSIST_METHOD, cold_seconds))

        persist_seconds = _wait_for_persistence(store)
        results["persist_write_behind_seconds"] = round(persist_seconds, 3)
        print("  write-behind persisted snapshot + crowd after %.2f s"
              % persist_seconds)

        server.proc.send_signal(signal.SIGKILL)
        server.proc.wait(timeout=30)
        killed = True
        print("  SIGKILLed pid %d" % server.proc.pid)
    finally:
        if not killed:
            server.stop()

    print("persistence: restarted server against the same store ...")
    start = time.perf_counter()
    server = ServerProcess("--solver-threads", "4", "--store", str(store))
    restart_seconds = time.perf_counter() - start
    try:
        with server.client(timeout=1800.0) as client:
            crowds = client.list()
            names = [entry["name"] for entry in crowds]
            start = time.perf_counter()
            warm = client.rank("durable", PERSIST_METHOD, random_state=7)
            warm_seconds = time.perf_counter() - start
            identical = bool(np.array_equal(warm.scores, cold.scores))

            # An append after the restart: the pre-kill solver state must
            # seed the PR 5 warm-start path, not a cold re-solve.
            client.add_answers("durable", [num_users + 1, num_users + 2],
                               [0, 0], [1, 2])
            append = client.rank("durable", PERSIST_METHOD, random_state=7,
                                 warm_start=True)
            stats = client.server_stats()
    finally:
        server.stop()

    ratio = cold_seconds / max(warm_seconds, 1e-9)
    results.update({
        "persist_restart_seconds": round(restart_seconds, 3),
        "persist_crowds_restored": names,
        "persist_warm_rank_seconds": round(warm_seconds, 4),
        "persist_warm_snapshot_hit": bool(warm.meta.get("snapshot_hit")),
        "persist_warm_bit_identical": identical,
        "persist_append_warm_start": str(append.meta.get("warm_start")),
        "persist_disk_hits": int(stats["cache"]["disk_hits"]),
        "persist_store_snapshots": int(stats["store"]["snapshots"]),
        "persist_gate": PERSIST_GATE,
        "gate_warm_vs_cold_speedup": round(ratio, 1),
    })
    print("  restart %.2f s, warm rank %.4f s (%.0fx the cold solve)"
          % (restart_seconds, warm_seconds, ratio))

    failures = []
    if names != ["durable"]:
        failures.append("restarted server re-registered %r, expected "
                        "['durable']" % (names,))
    if not results["persist_warm_snapshot_hit"]:
        failures.append("first post-restart rank was not served from a "
                        "snapshot")
    if not identical:
        failures.append("snapshot replay was not bit-identical to the "
                        "cold solve")
    if ratio < PERSIST_GATE:
        failures.append(
            "post-restart warm rank %.4f s is only %.1fx the cold solve "
            "(%.2f s); bound is %.0fx"
            % (warm_seconds, ratio, cold_seconds, PERSIST_GATE))
    if results["persist_append_warm_start"] != "warm":
        failures.append(
            "post-restart append ranked with warm_start=%r, expected "
            "'warm'" % results["persist_append_warm_start"])
    results["gate_failures"] = failures
    return results


def run_serve(num_users: int = 200_000, num_items: int = 5_000,
              density: float = 0.001, *, smoke: bool = False) -> Dict[str, object]:
    scale = "smoke" if smoke else "full"
    users, items, options, results = _scenario_crowd(
        num_users=num_users, num_items=num_items, density=density,
        scale=scale,
    )
    num_options = int(results["num_options"])
    direct_repeats = 20 if smoke else 50
    warm_clients, per_client = (4, 25) if smoke else (8, 50)
    cycles = 3 if smoke else 5

    print("reference: direct in-process RankCache hits ...")
    results.update(_bench_direct_hits(users, items, options, num_items,
                                      num_options, direct_repeats))
    print("  p50 %.3f ms / p99 %.3f ms"
          % (results["direct_hit_p50_ms"], results["direct_hit_p99_ms"]))

    server = ServerProcess("--solver-threads", "4", "--max-queue", "64")
    try:
        with server.client() as client:
            load_seconds = _load_crowd(client, "bench", users, items,
                                       options, num_items, num_options)
            start = time.perf_counter()
            client.rank("bench", METHOD)  # cold solve + flush of the load
            cold_seconds = time.perf_counter() - start
        results["ingest_seconds"] = round(load_seconds, 3)
        results["cold_rank_seconds"] = round(cold_seconds, 3)
        print("ingest %.2f s, cold rank %.2f s" % (load_seconds, cold_seconds))

        print("serving: warm cache-hit ranks (%d clients x %d) ..."
              % (warm_clients, per_client))
        results.update(_bench_warm_hits(server, "bench", warm_clients,
                                        per_client))
        print("  p50 %.2f ms / p99 %.2f ms, %.0f req/s sustained"
              % (results["warm_hit_p50_ms"], results["warm_hit_p99_ms"],
                 results["warm_hit_qps"]))

        print("serving: append-then-rank cycles ...")
        results.update(_bench_append_rank_cycles(server, "bench", cycles,
                                                 num_users, num_items))
        print("  p50 %.1f ms / p99 %.1f ms"
              % (results["append_rank_p50_ms"], results["append_rank_p99_ms"]))

        print("serving: single-flight coalescing ...")
        results.update(_bench_coalescing(server, "bench",
                                         concurrent=warm_clients,
                                         fresh_user=num_users + 100_000))
        print("  %d/%d concurrent ranks coalesced (%d solves total)"
              % (results["coalesce_served_coalesced"],
                 results["coalesce_concurrent_requests"],
                 results["solves_total"]))
    finally:
        server.stop()

    print("throttling: rate-limited server ...")
    results.update(_bench_rate_limit())
    print("  %d typed rejections" % results["rate_limit_rejections"])

    ratio = (results["warm_hit_p99_ms"]
             / max(results["direct_hit_p99_ms"], 1e-6))
    results["gate_bound"] = GATE_BOUND
    results["gate_warm_p99_vs_direct_hit"] = round(ratio, 2)

    failures = []
    if ratio > GATE_BOUND:
        failures.append(
            "served warm-hit p99 %.2f ms is %.1fx the direct cache hit "
            "(%.2f ms); bound is %.0fx"
            % (results["warm_hit_p99_ms"], ratio,
               results["direct_hit_p99_ms"], GATE_BOUND))
    if results["coalesced_total"] < 1:
        failures.append("no concurrent rank coalesced onto an in-flight "
                        "solve")
    if results["rate_limited_counter"] < 1:
        failures.append("the throttled server never rejected a request")
    results["gate_failures"] = failures
    return results


_REPORT_KEYS = ("num_users", "num_items", "num_answers", "ingest_seconds",
                "cold_rank_seconds", "direct_hit_p50_ms",
                "direct_hit_p99_ms", "warm_hit_p50_ms", "warm_hit_p99_ms",
                "warm_hit_qps", "append_rank_p50_ms", "append_rank_p99_ms",
                "coalesced_total", "solves_total", "rate_limited_counter",
                "gate_warm_p99_vs_direct_hit")

_PERSIST_REPORT_KEYS = ("num_users", "num_items", "num_answers",
                        "ingest_seconds", "persist_cold_rank_seconds",
                        "persist_write_behind_seconds",
                        "persist_restart_seconds",
                        "persist_warm_rank_seconds",
                        "persist_warm_snapshot_hit",
                        "persist_warm_bit_identical",
                        "persist_append_warm_start", "persist_disk_hits",
                        "gate_warm_vs_cold_speedup")


def _print_report(results: Dict[str, object],
                  keys=_REPORT_KEYS) -> None:
    print()
    print("%-32s %12s" % ("metric", "value"))
    print("-" * 46)
    for key in keys:
        print("%-32s %12s" % (key, results.get(key)))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced 20k x 1k CI gate (<60 s)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite benchmarks/BENCH_PR8.json")
    parser.add_argument("--persistence", action="store_true",
                        help="run the restart-warm persistence scenario "
                             "(SIGKILL + restart against --store-dir) "
                             "instead of the serving scenario")
    parser.add_argument("--update-persistence", action="store_true",
                        help="run the persistence scenario at full scale "
                             "and rewrite benchmarks/BENCH_PR9.json")
    parser.add_argument("--store-dir", default="persistence-store",
                        help="store directory for the persistence scenario "
                             "(wiped at the start of the run)")
    args = parser.parse_args(argv)

    if args.persistence or args.update_persistence:
        if args.smoke:
            results = run_persistence(num_users=20_000, num_items=1_000,
                                      density=0.01, smoke=True,
                                      store_dir=args.store_dir)
        else:
            results = run_persistence(store_dir=args.store_dir)
        _print_report(results, keys=_PERSIST_REPORT_KEYS)
        failures = results.pop("gate_failures")
        if args.update_persistence:
            payload = {
                "environment": {
                    "python": platform.python_version(),
                    "numpy": np.__version__,
                },
                "protocol": {
                    "description": (
                        "A repro.cli serve --store subprocess hosts the "
                        "canonical 200k x 5k, 1M-answer crowd and solves "
                        "one cold %s rank; once the write-behind tier has "
                        "persisted the snapshot and the crowd NPZ, the "
                        "server is SIGKILLed and restarted against the "
                        "same directory.  The restarted server must "
                        "re-register the crowd, serve the first rank as a "
                        "bit-identical snapshot replay at least %.0fx "
                        "faster than the cold solve (the relative in-run "
                        "gate), and warm-start a follow-up append from "
                        "the pre-kill solver state."
                        % (PERSIST_METHOD, PERSIST_GATE)
                    ),
                },
                "persistence": results,
            }
            PERSIST_RESULTS_PATH.write_text(
                json.dumps(payload, indent=1, sort_keys=True) + "\n")
            print("\nwrote %s" % PERSIST_RESULTS_PATH)
        if failures:
            for failure in failures:
                print("GATE FAILURE:", failure, file=sys.stderr)
            return 1
        print("\nall persistence gates passed")
        return 0

    if args.smoke:
        # Density is raised so the crowd still carries 200k answers: the
        # gate's reference is the O(nnz) hash, which must not vanish into
        # measurement noise at smoke scale.
        results = run_serve(num_users=20_000, num_items=1_000,
                            density=0.01, smoke=True)
    else:
        results = run_serve()
    _print_report(results)

    failures = results.pop("gate_failures")
    if args.update:
        payload = {
            "environment": {
                "python": platform.python_version(),
                "numpy": np.__version__,
            },
            "protocol": {
                "description": (
                    "A repro.cli serve subprocess (READY-line handshake) "
                    "hosts the canonical 200k x 5k, 1M-answer crowd; "
                    "latencies are per-request wall times measured "
                    "client-side over real sockets.  warm_hit_*: %d "
                    "concurrent clients issuing identical %s ranks against "
                    "the unchanged crowd (served from the session rank "
                    "cache).  append_rank_*: one micro-batched append of "
                    "%d answers followed by the rank that flushes and "
                    "re-solves.  The gate is in-run relative: served "
                    "warm-hit p99 must stay within %.0fx of the direct "
                    "in-process RankCache hit p99 on the same crowd, so "
                    "it holds on hardware of any speed.  Coalescing and "
                    "rate-limiting are asserted from the server's own "
                    "counters." % (results["warm_hit_clients"], METHOD,
                                   results["append_batch"], GATE_BOUND)
                ),
            },
            "serve": results,
        }
        RESULTS_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True)
                                + "\n")
        print("\nwrote %s" % RESULTS_PATH)

    if failures:
        for failure in failures:
            print("GATE FAILURE:", failure, file=sys.stderr)
        return 1
    print("\nall serving gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
