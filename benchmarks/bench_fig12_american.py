"""Figure 12: simulated American Experience test (Appendix D-C).

Binary 3PL items following DeMars' published analysis of the American
Experience test, answered by (a) 100 students and (b) the original cohort of
2692 students with abilities drawn from N(0, 1).  The paper reports the mean
and standard deviation of the ranking accuracy over 10 generated datasets;
the benchmark uses 3 replicas and a reduced large-cohort size of 800 to stay
laptop-friendly while preserving the comparison.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.experiments import default_ranker_suite, evaluate_rankers
from repro.evaluation.metrics import spearman_accuracy
from repro.irt.simulated import generate_american_experience_dataset
from repro.truth_discovery import GRMEstimatorRanker, TrueAnswerRanker

NUM_RUNS = 3
SEED = 1200


def _run_cohort(num_students: int, include_grm_estimator: bool):
    per_method = {}
    for run in range(NUM_RUNS):
        dataset = generate_american_experience_dataset(num_students,
                                                       random_state=SEED + run)
        suite = default_ranker_suite(random_state=SEED + run)
        suite["True-Answer"] = TrueAnswerRanker(dataset.correct_options)
        if include_grm_estimator:
            suite["GRM-estimator"] = GRMEstimatorRanker()
        result = evaluate_rankers(dataset, suite)
        for method, accuracy in result.accuracies.items():
            per_method.setdefault(method, []).append(accuracy)
    return {method: (float(np.mean(values)), float(np.std(values)))
            for method, values in per_method.items()}


@pytest.mark.parametrize("num_students,include_grm", [(100, True), (800, False)])
def test_fig12_american_experience(benchmark, table_printer, num_students, include_grm):
    summary = benchmark.pedantic(
        _run_cohort, args=(num_students, include_grm), rounds=1, iterations=1
    )
    table_printer(
        f"Figure 12: simulated American Experience ({num_students} students, "
        f"{NUM_RUNS} runs)",
        ("method", "mean accuracy x100", "std x100"),
        [(method, 100 * mean, 100 * std)
         for method, (mean, std) in sorted(summary.items(), key=lambda kv: -kv[1][0])],
    )
    # Paper's qualitative result: HnD leads the unsupervised pack and is close
    # to True-answer; TruthFinder trails clearly.
    assert summary["HnD"][0] > 0.75
    assert summary["HnD"][0] >= summary["TruthFinder"][0]
    assert summary["HnD"][0] >= summary["True-Answer"][0] - 0.1
