"""Figure 13: simulated half-moon data (Appendix D-C).

Items whose (log-discrimination, difficulty) pairs follow the half-moon
pattern observed across NLP benchmarks by Vania et al. (2021), with guessing
c ~ U[0, 0.5] and abilities ~ N(0, 1).  Figure 13a shows the parameter
scatter; Figure 13b reports the ranking accuracy of every method averaged
over 10 datasets of 100 users x 100 questions (we use 3 replicas).

The paper's qualitative outcome: HnD (95.1) and the GRM-estimator (95.1)
lead by a wide margin over HITS/Investment/PooledInvestment (~55) and
TruthFinder (44.5), with ABH close behind HnD (89.7).
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.experiments import default_ranker_suite, evaluate_rankers
from repro.irt.simulated import generate_halfmoon_dataset, halfmoon_item_parameters
from repro.truth_discovery import TrueAnswerRanker

NUM_RUNS = 3
SEED = 1300


def test_fig13a_halfmoon_parameter_shape(benchmark, table_printer):
    """Figure 13a: the (log a, b) scatter has the half-moon shape."""
    discrimination, difficulty, guessing = benchmark.pedantic(
        halfmoon_item_parameters, args=(2000,), kwargs={"random_state": SEED},
        rounds=1, iterations=1,
    )
    log_a = np.log(discrimination)
    extreme = np.abs(difficulty) > 2.0
    middle = np.abs(difficulty) < 0.5
    table_printer("Figure 13a: half-moon parameter summary",
                  ("statistic", "value"),
                  [("mean log a (|b| > 2)", float(log_a[extreme].mean())),
                   ("mean log a (|b| < 0.5)", float(log_a[middle].mean())),
                   ("difficulty range", f"[{difficulty.min():.2f}, {difficulty.max():.2f}]"),
                   ("max guessing", float(guessing.max()))])
    assert log_a[extreme].mean() > log_a[middle].mean()
    assert guessing.max() <= 0.5


def test_fig13b_halfmoon_accuracy(benchmark, table_printer):
    """Figure 13b: ranking accuracy on half-moon data."""

    def run():
        per_method = {}
        for run_index in range(NUM_RUNS):
            dataset = generate_halfmoon_dataset(100, 100, random_state=SEED + run_index)
            suite = default_ranker_suite(random_state=SEED + run_index)
            suite["True-Answer"] = TrueAnswerRanker(dataset.correct_options)
            result = evaluate_rankers(dataset, suite)
            for method, accuracy in result.accuracies.items():
                per_method.setdefault(method, []).append(accuracy)
        return {method: float(np.mean(values)) for method, values in per_method.items()}

    averages = benchmark.pedantic(run, rounds=1, iterations=1)
    table_printer("Figure 13b: accuracy on half-moon data (x100)",
                  ("method", "mean accuracy x100"),
                  [(method, 100 * value) for method, value in
                   sorted(averages.items(), key=lambda kv: -kv[1])])
    # Paper shape: HnD >> HITS-family baselines and TruthFinder, close to
    # the cheating True-answer reference.
    assert averages["HnD"] > 0.85
    assert averages["HnD"] > averages["TruthFinder"] + 0.1
    assert averages["HnD"] >= averages["True-Answer"] - 0.1
