"""Figure 9: supplementary accuracy experiments (Appendix D-A).

Panels 9a-9h repeat the Figure 4 sweeps (vary m, k, difficulty b, answer
probability p) for the GRM and Bock generators; panels 9i-9k vary the
question discrimination ``a`` for all three models.  The benchmark runs the
reduced grids and prints the per-method series.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.experiments import accuracy_sweep, irt_dataset_factory

NUM_TRIALS = 2
SEED = 31
USER_GRID = [25, 50, 100, 200]
OPTION_GRID = [3, 4, 5]
PROBABILITY_GRID = [0.6, 0.8, 1.0]
#: Figure 9i-9k: discrimination ceilings a_max in {2.5, 5, 10, 20, 40}.
DISCRIMINATION_GRID = [(0.0, 2.5), (0.0, 5.0), (0.0, 10.0), (0.0, 20.0), (0.0, 40.0)]


def _print_sweep(table_printer, title, sweep):
    table_printer(title, (sweep.parameter_name, "method", "mean accuracy", "std"),
                  sweep.to_rows())


@pytest.mark.parametrize("model", ["grm", "bock"])
def test_fig9_vary_m(benchmark, table_printer, model):
    """Figures 9a / 9e: accuracy vs number of users for GRM / Bock."""
    factory = irt_dataset_factory(model, num_items=100, num_options=3, vary="num_users")
    sweep = benchmark.pedantic(
        accuracy_sweep,
        args=("num_users", USER_GRID, factory),
        kwargs={"num_trials": NUM_TRIALS, "random_state": SEED},
        rounds=1,
        iterations=1,
    )
    _print_sweep(table_printer, f"Figure 9 ({model}): accuracy vs #users", sweep)
    assert sweep.mean_accuracy["HnD"][-1] > 0.8


@pytest.mark.parametrize("model", ["grm", "bock"])
def test_fig9_vary_k(benchmark, table_printer, model):
    """Figures 9b / 9f: accuracy vs number of options for GRM / Bock."""
    factory = irt_dataset_factory(model, num_users=100, num_items=100, vary="num_options")
    sweep = benchmark.pedantic(
        accuracy_sweep,
        args=("num_options", OPTION_GRID, factory),
        kwargs={"num_trials": NUM_TRIALS, "random_state": SEED + 1},
        rounds=1,
        iterations=1,
    )
    _print_sweep(table_printer, f"Figure 9 ({model}): accuracy vs #options", sweep)
    assert min(sweep.mean_accuracy["HnD"]) > 0.7


@pytest.mark.parametrize("model", ["grm", "bock"])
def test_fig9_vary_p(benchmark, table_printer, model):
    """Figures 9d / 9h: accuracy vs answer probability for GRM / Bock."""
    factory = irt_dataset_factory(model, num_users=100, num_items=100, num_options=3,
                                  vary="answer_probability")
    sweep = benchmark.pedantic(
        accuracy_sweep,
        args=("answer_probability", PROBABILITY_GRID, factory),
        kwargs={"num_trials": NUM_TRIALS, "random_state": SEED + 2},
        rounds=1,
        iterations=1,
    )
    _print_sweep(table_printer, f"Figure 9 ({model}): accuracy vs answer probability", sweep)
    assert sweep.mean_accuracy["HnD"][-1] > 0.75


@pytest.mark.parametrize("model", ["grm", "bock"])
def test_fig9_vary_difficulty(benchmark, table_printer, model):
    """Figures 9c / 9g: accuracy vs difficulty range for GRM / Bock.

    Without random guessing, hard questions push *all* methods towards the
    reverse ranking (the paper observes negative accuracies there), so only
    the easy-to-moderate ranges are asserted on.
    """
    ranges = [(-1.0, 0.0), (-0.5, 0.5), (0.0, 1.0)]
    factory = irt_dataset_factory(model, num_users=100, num_items=100, num_options=3,
                                  vary="difficulty_range")
    sweep = benchmark.pedantic(
        accuracy_sweep,
        args=("difficulty_range", ranges, factory),
        kwargs={"num_trials": NUM_TRIALS, "random_state": SEED + 3},
        rounds=1,
        iterations=1,
    )
    _print_sweep(table_printer, f"Figure 9 ({model}): accuracy vs difficulty range", sweep)
    assert sweep.mean_accuracy["HnD"][0] > 0.75


@pytest.mark.parametrize("model", ["grm", "bock", "samejima"])
def test_fig9_vary_discrimination(benchmark, table_printer, model):
    """Figures 9i-9k: accuracy vs question discrimination for all models."""
    factory = irt_dataset_factory(model, num_users=100, num_items=100, num_options=3,
                                  vary="discrimination_range")
    sweep = benchmark.pedantic(
        accuracy_sweep,
        args=("discrimination_range", DISCRIMINATION_GRID, factory),
        kwargs={"num_trials": NUM_TRIALS, "random_state": SEED + 4},
        rounds=1,
        iterations=1,
    )
    _print_sweep(table_printer, f"Figure 9 ({model}): accuracy vs discrimination", sweep)
    values = sweep.mean_accuracy["HnD"]
    # Accuracy improves (or at least does not collapse) as discrimination grows,
    # and is high once a_max >= 10 — the paper's "HnD keeps high accuracy
    # except when a_max = 2.5".
    assert values[-1] > 0.85
    assert values[-1] >= values[0]
