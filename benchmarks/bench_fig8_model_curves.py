"""Figure 8: GRM vs Bock response curves and their C1P limit.

Appendix C illustrates (8a) that GRM can be seen as a special case of the
Bock model after tying the Bock slopes to multiples of the GRM slope, and
(8b) that both models approach Heaviside-step (C1P-consistent) response
functions as the discrimination grows.  The benchmark evaluates both models
on an ability grid and checks the two relationships numerically.
"""

from __future__ import annotations

import numpy as np

from repro.irt.polytomous import BockModel, GradedResponseModel

ABILITY_GRID = np.linspace(-0.8, 0.8, 161)


def _paper_fig8a_models():
    """GRM with a=8, b=(-0.2, 0.2) vs Bock with alpha=(0,8,16), beta=(0,1.6,0)."""
    grm = GradedResponseModel(discrimination=np.array([8.0]),
                              thresholds=np.array([[-0.2, 0.2]]))
    bock = BockModel(slopes=np.array([[0.0, 8.0, 16.0]]),
                     intercepts=np.array([[0.0, 1.6, 0.0]]))
    return grm, bock


def _paper_fig8b_models():
    """The same pair with discrimination scaled up (a=50), close to C1P."""
    grm = GradedResponseModel(discrimination=np.array([50.0]),
                              thresholds=np.array([[-0.4, 0.4]]))
    bock = BockModel(slopes=np.array([[0.0, 50.0, 100.0]]),
                     intercepts=np.array([[0.0, 20.0, 0.0]]))
    return grm, bock


def test_fig8a_grm_approximates_bock(benchmark, table_printer):
    grm, bock = _paper_fig8a_models()

    def run():
        return (grm.option_probabilities(ABILITY_GRID)[:, 0, :],
                bock.option_probabilities(ABILITY_GRID)[:, 0, :])

    grm_curves, bock_curves = benchmark.pedantic(run, rounds=1, iterations=1)
    max_gap = float(np.max(np.abs(grm_curves - bock_curves)))
    table_printer("Figure 8a: GRM vs Bock curve gap",
                  ("quantity", "value"),
                  [("max |GRM - Bock| over grid", max_gap),
                   ("mean |GRM - Bock| over grid",
                    float(np.mean(np.abs(grm_curves - bock_curves))))])
    # "GRM can be interpreted as an approximate special case of Bock."
    assert max_gap < 0.15


def test_fig8b_high_discrimination_approaches_c1p(benchmark, table_printer):
    grm, bock = _paper_fig8b_models()

    def run():
        return (grm.option_probabilities(ABILITY_GRID)[:, 0, :],
                bock.option_probabilities(ABILITY_GRID)[:, 0, :])

    grm_curves, bock_curves = benchmark.pedantic(run, rounds=1, iterations=1)
    # Away from the thresholds, the dominant option's probability is ~1:
    # the response function is (numerically) a difference of Heaviside steps.
    away_from_steps = np.abs(np.abs(ABILITY_GRID) - 0.4) > 0.1
    for curves in (grm_curves, bock_curves):
        dominant = curves[away_from_steps].max(axis=1)
        assert np.all(dominant > 0.95)
    table_printer("Figure 8b: sharpness at high discrimination",
                  ("model", "min dominant-option probability (away from steps)"),
                  [("GRM", float(grm_curves[away_from_steps].max(axis=1).min())),
                   ("Bock", float(bock_curves[away_from_steps].max(axis=1).min()))])
