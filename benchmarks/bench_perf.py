"""Perf-regression benchmark harness (PR 1; sparse PR 2; sharded PR 3).

Times every ranker in the library on fixed, deterministic synthetic sizes —
driven through :func:`repro.evaluation.timing.benchmark_rankers` — and keeps
the trajectory file ``benchmarks/BENCH_PR1.json`` that later PRs are
measured against.

Usage::

    python benchmarks/bench_perf.py                 # full profile, print table
    python benchmarks/bench_perf.py --update        # full+smoke+calibration,
                                                    # rewrite "current"
    python benchmarks/bench_perf.py --capture-seed  # record the "seed" baseline
    python benchmarks/bench_perf.py --smoke         # <60 s regression gate:
                                                    # fails (exit 1) when any
                                                    # ranker is >2x slower than
                                                    # the committed numbers
    python benchmarks/bench_perf.py --smoke --calibrate
                                                    # same gate, but machine
                                                    # speed is normalized out
                                                    # (enforceable on shared
                                                    # CI runners)
    python benchmarks/bench_perf.py --sparse        # 200k x 5k triples-native
                                                    # scenario (wall + peak RSS)
    python benchmarks/bench_perf.py --update-sparse # rewrite BENCH_PR2.json
    python benchmarks/bench_perf.py --sharded       # 200k x 5k through the
                                                    # sharded engine + rank
                                                    # cache (PR 3 scenario)
    python benchmarks/bench_perf.py --update-sharded  # rewrite BENCH_PR3.json
    python benchmarks/bench_perf.py --sharded --backend processes
                                                    # same scenario through the
                                                    # PR 4 process pool
    python benchmarks/bench_perf.py --update-sharded --backend processes
                                                    # rewrite BENCH_PR4.json
    python benchmarks/bench_perf.py --incremental   # 200k x 5k planted-truth
                                                    # crowd, 1% append, warm-
                                                    # started HnD/Dawid-Skene
                                                    # vs cold re-solve (PR 5)
    python benchmarks/bench_perf.py --update-incremental
                                                    # rewrite BENCH_PR5.json
    python benchmarks/bench_perf.py --remote        # 200k x 5k over two
                                                    # localhost socket workers,
                                                    # incl. a kill-one-worker-
                                                    # mid-solve recovery run
                                                    # (PR 6)
    python benchmarks/bench_perf.py --update-remote # rewrite BENCH_PR6.json
    python benchmarks/bench_perf.py --speedwar      # PR 7 speed-war gates:
                                                    # sharded/process/remote
                                                    # HnD ratios vs a fresh
                                                    # fused anchor, O(nnz)
                                                    # GLAD vs seed reference,
                                                    # momentum iterations
    python benchmarks/bench_perf.py --update-speedwar  # rewrite BENCH_PR7.json

The PR 1 JSON file holds two sections: ``seed`` (timings captured on the
seed implementation, before the fused-kernel layer of PR 1) and ``current``
(timings of the code as committed), plus the cold-path speedup of current
over seed.  ``--smoke`` compares a fresh run against ``current.smoke`` with
a 2x tolerance and a small absolute floor so sub-millisecond jitter never
trips the gate.

``--calibrate`` makes the smoke gate *self-calibrating*: the committed
numbers are machine-specific, so the gate re-times a frozen reference
workload (the seed-faithful ``ReferenceDawidSkeneRanker`` preserved in
``repro.truth_discovery.reference`` — code that never changes across PRs)
on the current machine, derives the machine-speed ratio against the
committed anchor time, and compares *scaled* ratios instead of absolute
seconds.  That turns the advisory CI step into an enforced gate.

``--sparse`` exercises the PR 2 storage model: a 200k-user x 5k-item crowd
at ~0.1% density (1M answers) is ingested through
``ResponseMatrix.from_triples`` and ranked with HnD-Power and Dawid-Skene.
Peak RSS is recorded alongside wall time; the dense choice matrix this
workload *would* have needed (~8 GB) is reported for contrast — the whole
scenario fits in a few hundred MB because no ``(m, n)`` array ever exists.

``--sharded`` exercises the PR 3 execution engine on the same crowd: the
triples are saved to NPZ and streamed back through the chunked out-of-core
readers into 8 user-range shards, ranked with the shard-parallel HnD-Power /
Dawid-Skene / MajorityVote kernels (asserting bit-identical scores against
the single-process rankers at full scale), and served twice through the
hash-keyed ``RankCache`` to measure the warm-hit speedup (≥100x required).

``--sharded --backend processes`` routes the same scenario through the
PR 4 unified API (``repro.api.rank`` with
``ExecutionPolicy(backend="processes", shards=8)``): shard slices live in
worker processes, hot vectors travel through shared memory, and the scores
are asserted bit-identical to the fused single-process rankers at full
scale.  Committed as ``BENCH_PR4.json``.

``--remote`` exercises the PR 6 remote execution backend at the same
200k x 5k scale: two real worker subprocesses are spawned on localhost
ephemeral ports, the crowd is ranked with HnD-Power / Dawid–Skene /
MajorityVote over ``ExecutionPolicy(backend="remote")`` (scores asserted
bit-identical to the fused single-process rankers), and then the HnD solve
is repeated with a ChaosProxy in front of worker 1 that SIGKILLs it after
a fixed number of protocol requests — the coordinator must reassign the
dead worker's shards to the survivor and still land on the same bits, and
a repeated query must be served from the rank cache.  Committed as
``BENCH_PR6.json``.

``--incremental`` exercises the PR 5 warm-start subsystem: a planted-truth
200k x 5k crowd is split 99%/1%, the base is ranked cold through a
``CrowdSession`` (the rank cache captures the solver state), the 1% is
appended, and the re-rank resumes from the cached state.  The gates require
strictly fewer warm iterations than the fresh cold solve of the merged
matrix and rankings identical up to solver ties (see
``INCREMENTAL_TIE_GAP``).  Committed as ``BENCH_PR5.json``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np
import scipy

from repro.c1p.abh import ABHDirect, ABHPower
from repro.core.hitsndiffs import HNDDeflation, HNDDirect, HNDPower
from repro.core.response import ResponseMatrix
from repro.evaluation.timing import PerfSpec, benchmark_rankers
from repro.truth_discovery.dawid_skene import DawidSkeneRanker
from repro.truth_discovery.glad import GLADRanker
from repro.truth_discovery.hits import HITSRanker
from repro.truth_discovery.investment import InvestmentRanker, PooledInvestmentRanker
from repro.truth_discovery.majority import MajorityVoteRanker
from repro.truth_discovery.truthfinder import TruthFinderRanker

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_PR1.json"
SPARSE_RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_PR2.json"
SHARDED_RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_PR3.json"
PROCESS_RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_PR4.json"
INCREMENTAL_RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_PR5.json"
REMOTE_RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_PR6.json"
SPEEDWAR_RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_PR7.json"

#: Speed-war gates (PR 7), all machine-independent ratios.  The backend
#: gates compare the fresh backend/fused ratio against the ratio committed
#: in BENCH_PR4/BENCH_PR6 (the "before" numbers) — a required >= 2x
#: improvement — so a slower CI runner cannot false-fail them.
SPEEDWAR_SHARDED_CEILING = 1.3       # sharded-threads / fused, was ~2.2x
SPEEDWAR_BACKEND_IMPROVEMENT = 2.0   # process + remote vs committed ratios
SPEEDWAR_GLAD_FLOOR = 8.0            # seed-reference / O(nnz) GLAD, was 3.4x
SPEEDWAR_ACCEL_ITERATION_CEILING = 0.7  # momentum / plain iterations
SPEEDWAR_ACCEL_TIE_GAP = 1e-5        # ranking_inversion_gap(plain, momentum)
SPEEDWAR_ITERATION_BATCH = 32

#: Required warm-hit speedup of the rank cache in the sharded scenario.
CACHE_SPEEDUP_FLOOR = 100.0

#: Incremental scenario gates: a warm-started re-rank after the append must
#: re-converge in strictly fewer iterations than the cold solve, and the
#: deepest warm-vs-cold ranking disagreement (reference-score gap over
#: oppositely-ordered pairs) must stay below the per-method tie threshold —
#: i.e. the rankings are identical up to users the solver itself cannot
#: separate (duplicate answer patterns tie exactly; any two solver runs
#: order them arbitrarily).
INCREMENTAL_TIE_GAP = {"HnD-Power": 1e-5, "Dawid-Skene": 1e-6}

#: Regression gate: fail when current/committed > threshold and the
#: absolute slowdown exceeds the floor (guards against timer jitter on
#: the fastest rankers).
REGRESSION_THRESHOLD = 2.0
REGRESSION_FLOOR_SECONDS = 0.005


def _profile(smoke: bool) -> List[PerfSpec]:
    """The fixed ranker line-up; smoke sizes finish in well under 60 s."""

    def size(full_m: int, full_n: int, smoke_m: int, smoke_n: int):
        return (smoke_m, smoke_n) if smoke else (full_m, full_n)

    specs = [
        PerfSpec("HnD-Power", HNDPower(random_state=0), *size(5000, 200, 1000, 100)),
        PerfSpec("HnD-Deflation", HNDDeflation(random_state=0), *size(1000, 100, 300, 60)),
        PerfSpec("HnD-Direct", HNDDirect(), *size(1000, 100, 300, 60)),
        PerfSpec("ABH-Power", ABHPower(random_state=0), *size(2000, 200, 500, 100)),
        PerfSpec("ABH-Direct", ABHDirect(), *size(1000, 100, 300, 60)),
        PerfSpec("Dawid-Skene", DawidSkeneRanker(), *size(500, 200, 200, 80)),
        PerfSpec("GLAD", GLADRanker(), *size(500, 200, 150, 60)),
        PerfSpec("HITS", HITSRanker(), *size(5000, 200, 1000, 100)),
        PerfSpec("TruthFinder", TruthFinderRanker(), *size(2000, 200, 500, 100)),
        PerfSpec("Invest", InvestmentRanker(), *size(2000, 200, 500, 100)),
        PerfSpec("PooledInv", PooledInvestmentRanker(), *size(2000, 200, 500, 100)),
        PerfSpec("MajorityVote", MajorityVoteRanker(), *size(5000, 200, 1000, 100)),
    ]
    return specs


def _run(smoke: bool, num_repeats: int) -> Dict[str, Dict[str, object]]:
    records = benchmark_rankers(_profile(smoke), num_repeats=num_repeats)
    return {record.name: record.to_dict() for record in records}


# --------------------------------------------------------------------------- #
# Machine-speed calibration (self-calibrating smoke gate)
# --------------------------------------------------------------------------- #
def _time_calibration_anchor(num_repeats: int) -> Dict[str, object]:
    """Cold-time the frozen seed-faithful reference ranker.

    ``ReferenceDawidSkeneRanker`` is the seed implementation preserved
    verbatim as a test oracle — it never changes across PRs, so its runtime
    on a machine measures *the machine*, not the library.  The smoke gate
    divides fresh timings by (fresh anchor / committed anchor) to compare
    ratios instead of machine-specific absolute seconds.

    The anchor runs at 500x200 — a few hundred milliseconds — so the
    ratio is driven by machine speed, not by millisecond-scale timer
    noise (the smoke workloads themselves are only a few ms each).
    """
    from repro.truth_discovery.reference import ReferenceDawidSkeneRanker

    records = benchmark_rankers(
        [PerfSpec("calibration-anchor", ReferenceDawidSkeneRanker(), 500, 200)],
        num_repeats=num_repeats,
    )
    payload = records[0].to_dict()
    payload["ranker"] = "Dawid-Skene-reference"
    return payload


# --------------------------------------------------------------------------- #
# Large-sparse scenario (PR 2): triples-native ingestion at crowd scale
# --------------------------------------------------------------------------- #
def _peak_rss_mb() -> float:
    """Lifetime peak RSS of this process in MB (ru_maxrss is KB on Linux)."""
    import resource  # Unix-only; imported here so the other modes run anywhere

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes there
        peak /= 1024
    return peak / 1024.0


def _sparse_triples(num_users: int, num_items: int, density: float,
                    num_options: int, seed: int):
    """Deterministic random crowd as canonical (already-sorted) triples."""
    rng = np.random.default_rng(seed)
    target = int(num_users * num_items * density)
    # Oversample flat (user, item) keys, unique them (duplicate free, never
    # anywhere near (m * n) memory), then subsample back to the target
    # *randomly* — a sorted-prefix cut would silently empty the top of the
    # user range.
    keys = np.unique(
        rng.integers(0, num_users * num_items, size=int(target * 1.1), dtype=np.int64)
    )
    if keys.size > target:
        keys = np.sort(rng.choice(keys, size=target, replace=False))
    users = keys // num_items
    items = keys % num_items
    options = rng.integers(0, num_options, size=keys.size)
    return users, items, options


def _scenario_crowd(num_users: int = 200_000, num_items: int = 5_000,
                    density: float = 0.001, num_options: int = 4,
                    seed: int = 7, *, planted: bool = False,
                    **extra: object):
    """The canonical 200k x 5k scenario every standalone mode shares.

    Generates the deterministic triples (uniform flat keys by default,
    planted-truth for the accuracy-sensitive scenarios — see
    ``_structured_triples``) and the pre-populated results header every
    scenario report starts from, so the construction lives in exactly one
    place.  Returns ``(users, items, options, results)``.
    """
    generate = _structured_triples if planted else _sparse_triples
    users, items, options = generate(
        num_users, num_items, density, num_options, seed
    )
    results: Dict[str, object] = {
        "num_users": num_users,
        "num_items": num_items,
        "density": density,
        "num_options": num_options,
        "num_answers": int(users.size),
        **extra,
        "rss_before_mb": round(_peak_rss_mb(), 1),
    }
    return users, items, options, results


def _run_sparse(num_users: int = 200_000, num_items: int = 5_000,
                density: float = 0.001, num_options: int = 4,
                seed: int = 7) -> Dict[str, object]:
    users, items, options, results = _scenario_crowd(
        num_users, num_items, density, num_options, seed,
        dense_equivalent_mb=round(num_users * num_items * 8 / 1024 / 1024, 1),
    )

    start = time.perf_counter()
    response = ResponseMatrix.from_triples(
        users, items, options,
        shape=(num_users, num_items), num_options=num_options,
    )
    response.compiled  # include the kernel-cache build in ingestion cost
    results["ingest_seconds"] = round(time.perf_counter() - start, 4)

    for name, ranker in (
        ("HnD-Power", HNDPower(random_state=0)),
        ("Dawid-Skene", DawidSkeneRanker()),
    ):
        start = time.perf_counter()
        ranking = ranker.rank(response)
        results["%s_seconds" % name] = round(time.perf_counter() - start, 4)
        iterations = ranking.diagnostics.get("iterations")
        results["%s_iterations" % name] = (
            int(iterations) if iterations is not None else None
        )

    results["peak_rss_mb"] = round(_peak_rss_mb(), 1)
    return results


# --------------------------------------------------------------------------- #
# Sharded-engine scenario (PR 3): out-of-core ingest, shard-parallel ranking,
# and the hash-keyed rank cache, at the same 200k x 5k crowd scale
# --------------------------------------------------------------------------- #
def _run_sharded(num_users: int = 200_000, num_items: int = 5_000,
                 density: float = 0.001, num_options: int = 4,
                 num_shards: int = 8, max_workers: int = 4,
                 chunk_size: int = 262_144, seed: int = 7,
                 backend: str = "threads") -> Dict[str, object]:
    import tempfile

    from repro.api import ExecutionPolicy
    from repro.api import rank as api_rank
    from repro.engine import RankCache, ShardedResponse, load_streaming

    users, items, options, results = _scenario_crowd(
        num_users, num_items, density, num_options, seed,
        num_shards=num_shards, max_workers=max_workers,
        chunk_size=chunk_size, backend=backend,
    )

    # Out-of-core ingestion: NPZ on disk -> chunked streams -> builder ->
    # canonical matrix -> user-range shards.  The raw input is never held
    # whole; each chunk is bounded by chunk_size rows.
    source = ResponseMatrix.from_triples(
        users, items, options,
        shape=(num_users, num_items), num_options=num_options,
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "crowd.npz"
        source.save(path)
        results["npz_bytes"] = path.stat().st_size
        start = time.perf_counter()
        response = load_streaming(path, chunk_size=chunk_size)
        results["stream_ingest_seconds"] = round(time.perf_counter() - start, 4)
    assert response == source, "streamed reload must reproduce the matrix"
    start = time.perf_counter()
    split_workers = max_workers if backend == "threads" else None
    sharded = ShardedResponse.split(response, num_shards, max_workers=split_workers)
    sharded.columns  # warm the shared kernel state inside the split timing
    results["split_seconds"] = round(time.perf_counter() - start, 4)
    results["shard_answers"] = [int(s.num_answers) for s in sharded.shards]

    # Shard-parallel ranking through the unified API (the pre-split
    # sharding is reused; the policy picks thread vs process dispatch),
    # checked bit-identical against the single-process kernels at full
    # scale (scores, not just rankings).  The timed sharded call includes
    # the backend's own set-up cost (thread/process pool) — that is what a
    # cold serving call pays.
    policy = ExecutionPolicy(backend=backend, shards=num_shards,
                             workers=max_workers)
    single = {
        "HnD-Power": HNDPower(random_state=0),
        "Dawid-Skene": DawidSkeneRanker(),
        "MajorityVote": MajorityVoteRanker(),
    }
    methods = {
        "HnD-Power": ("HnD", {"random_state": 0}),
        "Dawid-Skene": ("Dawid-Skene", {}),
        "MajorityVote": ("MajorityVote", {}),
    }
    for name, (method, params) in methods.items():
        start = time.perf_counter()
        ranking = api_rank(sharded, method, execution=policy, **params)
        results["%s_sharded_seconds" % name] = round(time.perf_counter() - start, 4)
        iterations = ranking.diagnostics.get("iterations")
        results["%s_iterations" % name] = (
            int(iterations) if iterations is not None else None
        )
        start = time.perf_counter()
        reference = single[name].rank(response)
        results["%s_single_seconds" % name] = round(time.perf_counter() - start, 4)
        identical = bool(np.array_equal(ranking.scores, reference.scores))
        results["%s_bit_identical" % name] = identical
        assert identical, "%s sharded scores diverged from single-process" % name

    # Rank cache: the second rank() of unchanged data must be served in
    # O(nnz) hash time, >=100x faster than computing.  The cache key is
    # backend-independent, so the warm hit serves any execution policy.
    cache = RankCache()
    start = time.perf_counter()
    api_rank(sharded, "HnD", execution=policy, cache=cache, random_state=0)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    api_rank(sharded, "HnD", execution=policy, cache=cache, random_state=0)
    warm = time.perf_counter() - start
    results["cache_cold_seconds"] = round(cold, 4)
    results["cache_warm_seconds"] = round(warm, 6)
    results["cache_speedup"] = round(cold / max(warm, 1e-9), 1)
    results["cache_stats"] = cache.stats()

    results["peak_rss_mb"] = round(_peak_rss_mb(), 1)
    return results


# --------------------------------------------------------------------------- #
# Remote scenario (PR 6): socket workers with supervised failover
# --------------------------------------------------------------------------- #
class _BenchWorker:
    """One ``python -m repro.engine.remote.worker`` subprocess."""

    def __init__(self) -> None:
        import os
        import subprocess

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.engine.remote.worker", "--port", "0"],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        line = self.proc.stdout.readline().strip()
        if not line.startswith("READY"):
            self.proc.kill()
            raise RuntimeError("worker failed to start (got %r)" % line)
        fields = dict(part.split("=", 1) for part in line.split()[1:])
        self.host, self.port = fields["host"], int(fields["port"])
        self.address = "%s:%d" % (self.host, self.port)

    def kill(self) -> None:
        self.proc.kill()
        self.proc.wait(timeout=10)

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=5)
            except Exception:
                self.kill()
        if self.proc.stdout is not None:
            self.proc.stdout.close()


#: Protocol request after which the chaos run SIGKILLs worker 1 (mid-solve,
#: well past shard shipping, deterministic — the proxy counts frames).
REMOTE_KILL_AT_REQUEST = 50


def _run_remote(num_users: int = 200_000, num_items: int = 5_000,
                density: float = 0.001, num_options: int = 4,
                num_shards: int = 8, seed: int = 7) -> Dict[str, object]:
    from repro.api import ExecutionPolicy
    from repro.api import rank as api_rank
    from repro.engine import ChaosProxy, RankCache, ShardedResponse
    from repro.engine.remote.supervision import SupervisionConfig

    users, items, options, results = _scenario_crowd(
        num_users, num_items, density, num_options, seed,
        num_shards=num_shards, num_workers=2, backend="remote",
        kill_at_request=REMOTE_KILL_AT_REQUEST,
    )
    source = ResponseMatrix.from_triples(
        users, items, options,
        shape=(num_users, num_items), num_options=num_options,
    )
    sharded = ShardedResponse.split(source, num_shards)
    # Benchmark-friendly supervision: short enough that the kill run
    # recovers in seconds, long enough that a loaded machine never
    # false-trips a timeout on the healthy worker.
    supervision = SupervisionConfig(
        request_timeout=30.0, connect_timeout=5.0, max_attempts=2,
        backoff_base=0.05, backoff_max=0.5, heartbeat_interval=1.0,
        heartbeat_timeout=2.0, breaker_threshold=2, breaker_reset=2.0,
    )

    single = {
        "HnD-Power": HNDPower(random_state=0),
        "Dawid-Skene": DawidSkeneRanker(),
        "MajorityVote": MajorityVoteRanker(),
    }
    methods = {
        "HnD-Power": ("HnD", {"random_state": 0}),
        "Dawid-Skene": ("Dawid-Skene", {}),
        "MajorityVote": ("MajorityVote", {}),
    }

    workers = [_BenchWorker(), _BenchWorker()]
    try:
        policy = ExecutionPolicy(
            backend="remote", shards=num_shards,
            remote_workers=[worker.address for worker in workers],
            supervision=supervision,
        )
        # Undisturbed runs: remote vs fused, bit for bit.  The timed remote
        # call includes engine set-up (connections + shard shipping) — that
        # is what a cold serving call pays.
        for name, (method, params) in methods.items():
            start = time.perf_counter()
            ranking = api_rank(sharded, method, execution=policy, **params)
            results["%s_remote_seconds" % name] = round(
                time.perf_counter() - start, 4
            )
            iterations = ranking.diagnostics.get("iterations")
            results["%s_iterations" % name] = (
                int(iterations) if iterations is not None else None
            )
            start = time.perf_counter()
            reference = single[name].rank(source)
            results["%s_single_seconds" % name] = round(
                time.perf_counter() - start, 4
            )
            identical = bool(np.array_equal(ranking.scores, reference.scores))
            results["%s_bit_identical" % name] = identical
            assert identical, "%s remote scores diverged" % name

        # Chaos run: worker 1's traffic goes through a frame-counting
        # proxy that SIGKILLs it mid-solve; the coordinator must fail over
        # to worker 0 and reproduce the same bits.  Served through a
        # RankCache to prove the recovered run stores a servable entry.
        from repro.engine.remote.coordinator import RemoteEngine
        from repro.engine.rankers import rank_hnd_power

        with ChaosProxy(workers[1].host, workers[1].port) as proxy:
            proxy.on_request = (
                lambda count: workers[1].kill()
                if count == REMOTE_KILL_AT_REQUEST else None
            )
            start = time.perf_counter()
            with RemoteEngine(
                sharded, [workers[0].address, proxy.address],
                supervision=SupervisionConfig(
                    request_timeout=5.0, connect_timeout=2.0, max_attempts=2,
                    backoff_base=0.05, backoff_max=0.2,
                    heartbeat_interval=0.5, heartbeat_timeout=1.0,
                    breaker_threshold=2, breaker_reset=1.0,
                ),
            ) as engine:
                chaos_ranking = rank_hnd_power(engine, random_state=0)
                diagnostics = engine.diagnostics()
            results["kill_recovery_seconds"] = round(
                time.perf_counter() - start, 4
            )
        reference = single["HnD-Power"].rank(source)
        identical = bool(
            np.array_equal(chaos_ranking.scores, reference.scores)
        )
        results["kill_bit_identical"] = identical
        assert identical, "post-kill scores diverged"
        results["kill_reassignments"] = int(diagnostics["reassignments"])
        results["kill_alive_workers"] = int(diagnostics["alive_workers"])
        results["kill_overhead_seconds"] = round(
            results["kill_recovery_seconds"]
            - results["HnD-Power_remote_seconds"], 4
        )

        # The rank cache serves repeated remote queries without touching
        # the (now degraded) fleet.
        cache = RankCache()
        start = time.perf_counter()
        api_rank(sharded, "MajorityVote", execution=policy, cache=cache)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        api_rank(sharded, "MajorityVote", execution=policy, cache=cache)
        warm = time.perf_counter() - start
        results["cache_cold_seconds"] = round(cold, 4)
        results["cache_warm_seconds"] = round(warm, 6)
        results["cache_hit_served"] = cache.stats()["hits"] == 1
        assert results["cache_hit_served"]
    finally:
        for worker in workers:
            worker.stop()

    results["peak_rss_mb"] = round(_peak_rss_mb(), 1)
    return results


def _check_remote(results: Dict[str, object]) -> List[str]:
    """The remote acceptance gates: bit-identity, recovery, cache service."""
    failures = []
    for name in ("HnD-Power", "Dawid-Skene", "MajorityVote"):
        if not results["%s_bit_identical" % name]:
            failures.append("%s remote scores are not bit-identical" % name)
    if not results["kill_bit_identical"]:
        failures.append("kill-mid-solve run did not reproduce the bits")
    if results["kill_reassignments"] < 1:
        failures.append("kill-mid-solve run recorded no shard reassignment")
    if not results["cache_hit_served"]:
        failures.append("repeated remote query was not served from the cache")
    return failures


def _print_remote(results: Dict[str, object]) -> None:
    print("remote-backend scenario (2 localhost socket workers)")
    print("  crowd:   %dx%d @ %.2f%% density -> %s answers, %d shards" % (
        results["num_users"], results["num_items"],
        100 * float(results["density"]),
        format(results["num_answers"], ","), results["num_shards"],
    ))
    for name in ("HnD-Power", "Dawid-Skene", "MajorityVote"):
        print("  %-14s remote %8.3f s | single %8.3f s | bit-identical: %s" % (
            name,
            results["%s_remote_seconds" % name],
            results["%s_single_seconds" % name],
            results["%s_bit_identical" % name],
        ))
    print("  kill worker @ request %d: recovered in %.3f s "
          "(+%.3f s vs undisturbed), %d reassignment(s), bit-identical: %s" % (
              results["kill_at_request"], results["kill_recovery_seconds"],
              results["kill_overhead_seconds"], results["kill_reassignments"],
              results["kill_bit_identical"],
          ))
    print("  rank cache: cold %.3f s -> warm hit %.5f s (served: %s)" % (
        results["cache_cold_seconds"], results["cache_warm_seconds"],
        results["cache_hit_served"],
    ))
    print("  peak RSS: %.0f MB" % results["peak_rss_mb"])
    print()


# --------------------------------------------------------------------------- #
# Speed-war scenario (PR 7): the four single-node gaps, before/after
# --------------------------------------------------------------------------- #
def _median_run(fn, repeats: int):
    """``(median seconds over repeats, last return value)`` of ``fn()``."""
    times = []
    value = None
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        value = fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times)), value


def _committed_backend_ratio(path: Path, timing_key: str) -> float:
    """The backend/fused HnD ratio committed in a prior trajectory file."""
    section = next(iter(
        value for key, value in json.loads(path.read_text()).items()
        if key not in ("environment", "protocol")
    ))
    return float(section[timing_key]) / float(section["HnD-Power_single_seconds"])


def _run_speedwar(num_users: int = 200_000, num_items: int = 5_000,
                  density: float = 0.001, num_options: int = 4,
                  num_shards: int = 8, max_workers: int = 4,
                  seed: int = 7, repeats: int = 3) -> Dict[str, object]:
    """Measure all four PR 7 gaps on the canonical crowd, median-of-N.

    Every timed segment is a ratio to a *fresh* fused anchor measured in
    the same run, so the committed gates hold on hardware of any speed;
    the process/remote "before" ratios come from the committed
    BENCH_PR4/BENCH_PR6 files.  GLAD runs at a reduced 20k x 2k scale —
    the seed-faithful dense reference needs ``O(m * n)`` memory *per
    gradient step* and would take hours at 200k x 5k, which is the point
    of the rewrite.
    """
    from repro.api import ExecutionPolicy
    from repro.api import rank as api_rank
    from repro.engine import ShardedResponse
    from repro.engine.remote.supervision import SupervisionConfig
    from repro.evaluation.metrics import ranking_inversion_gap
    from repro.truth_discovery.reference import ReferenceGLADRanker

    users, items, options, results = _scenario_crowd(
        num_users, num_items, density, num_options, seed,
        num_shards=num_shards, max_workers=max_workers,
        iteration_batch=SPEEDWAR_ITERATION_BATCH, repeats=repeats,
    )
    source = ResponseMatrix.from_triples(
        users, items, options,
        shape=(num_users, num_items), num_options=num_options,
    )
    source.compiled
    sharded = ShardedResponse.split(source, num_shards,
                                    max_workers=max_workers)

    # The fused anchor: plain single-process HnD at default tolerance —
    # the denominator of every backend ratio.
    fused_seconds, fused = _median_run(
        lambda: HNDPower(random_state=0).rank(source), repeats
    )
    results["fused_seconds"] = round(fused_seconds, 4)
    results["fused_iterations"] = int(fused.diagnostics["iterations"])

    # (a) Per-shard CSR kernels over the thread backend.
    threads_policy = ExecutionPolicy(backend="threads", shards=num_shards,
                                     workers=max_workers)
    sharded_seconds, ranking = _median_run(
        lambda: api_rank(sharded, "HnD", execution=threads_policy,
                         random_state=0), repeats
    )
    assert np.array_equal(ranking.scores, fused.scores), \
        "sharded scores diverged from fused"
    results["sharded_seconds"] = round(sharded_seconds, 4)
    results["sharded_vs_fused"] = round(sharded_seconds / fused_seconds, 3)
    results["sharded_vs_fused_before"] = round(
        _committed_backend_ratio(SHARDED_RESULTS_PATH,
                                 "HnD-Power_sharded_seconds"), 3
    )

    # (b) Batched-iteration dispatch: process pool and remote sockets.
    process_policy = ExecutionPolicy(
        backend="processes", shards=num_shards, workers=max_workers,
        iteration_batch=SPEEDWAR_ITERATION_BATCH,
    )
    process_seconds, ranking = _median_run(
        lambda: api_rank(sharded, "HnD", execution=process_policy,
                         random_state=0), repeats
    )
    assert np.array_equal(ranking.scores, fused.scores), \
        "batched process scores diverged from fused"
    results["process_seconds"] = round(process_seconds, 4)
    results["process_vs_fused"] = round(process_seconds / fused_seconds, 3)
    results["process_vs_fused_before"] = round(
        _committed_backend_ratio(PROCESS_RESULTS_PATH,
                                 "HnD-Power_sharded_seconds"), 3
    )

    workers = [_BenchWorker(), _BenchWorker()]
    try:
        remote_policy = ExecutionPolicy(
            backend="remote", shards=num_shards,
            remote_workers=[worker.address for worker in workers],
            iteration_batch=SPEEDWAR_ITERATION_BATCH,
            supervision=SupervisionConfig(
                request_timeout=60.0, connect_timeout=5.0, max_attempts=2,
                backoff_base=0.05, backoff_max=0.5,
                heartbeat_interval=1.0, heartbeat_timeout=5.0,
                breaker_threshold=2, breaker_reset=2.0,
            ),
        )
        remote_seconds, ranking = _median_run(
            lambda: api_rank(sharded, "HnD", execution=remote_policy,
                             random_state=0), repeats
        )
    finally:
        for worker in workers:
            worker.stop()
    assert np.array_equal(ranking.scores, fused.scores), \
        "batched remote scores diverged from fused"
    results["remote_seconds"] = round(remote_seconds, 4)
    results["remote_vs_fused"] = round(remote_seconds / fused_seconds, 3)
    results["remote_vs_fused_before"] = round(
        _committed_backend_ratio(REMOTE_RESULTS_PATH,
                                 "HnD-Power_remote_seconds"), 3
    )

    # (c) O(nnz) GLAD vs the seed-faithful dense reference, reduced scale.
    glad_users, glad_items = 20_000, 2_000
    gu, gi, go = _sparse_triples(glad_users, glad_items, 0.005, 3, seed)
    glad_crowd = ResponseMatrix.from_triples(
        gu, gi, go, shape=(glad_users, glad_items), num_options=3,
    )
    glad_crowd.compiled
    results["glad_num_users"] = glad_users
    results["glad_num_items"] = glad_items
    results["glad_num_answers"] = int(gu.size)
    glad_seconds, glad = _median_run(
        lambda: GLADRanker(max_iterations=3).rank(glad_crowd), repeats
    )
    seed_seconds, seed_glad = _median_run(
        lambda: ReferenceGLADRanker(max_iterations=3).rank(glad_crowd),
        repeats,
    )
    results["glad_seconds"] = round(glad_seconds, 4)
    results["glad_seed_seconds"] = round(seed_seconds, 4)
    results["glad_speedup_vs_seed"] = round(seed_seconds / glad_seconds, 1)
    from scipy.stats import spearmanr

    results["glad_spearman_vs_seed"] = round(
        float(spearmanr(glad.scores, seed_glad.scores).statistic), 6
    )

    # (d) Momentum-accelerated HnD vs a plain solve at equal *tight*
    # tolerance.  The comparison deliberately runs at 1e-8, not the 1e-5
    # default the anchor uses: the inversion-gap contract compares two
    # *converged* solves, and at 1e-5 the plain run's own remaining error
    # (residual / (1 - contraction rate), ~1e-3 at this scale's ~0.9984
    # per-iteration rate) dwarfs the 1e-5 tie bound — the gap would
    # measure the baseline's sloppiness, not the acceleration's fidelity.
    # Both runs share random_state, so the iteration counts and the gap
    # are deterministic: one run each, no median needed.
    accel_tolerance, accel_budget = 1e-8, 40_000
    plain_started = time.perf_counter()
    plain_tight = HNDPower(random_state=0, tolerance=accel_tolerance,
                           max_iterations=accel_budget).rank(source)
    results["accel_plain_seconds"] = round(
        time.perf_counter() - plain_started, 4
    )
    accel_started = time.perf_counter()
    accel = HNDPower(random_state=0, tolerance=accel_tolerance,
                     max_iterations=accel_budget,
                     acceleration="momentum").rank(source)
    results["accel_seconds"] = round(time.perf_counter() - accel_started, 4)
    results["accel_tolerance"] = accel_tolerance
    results["accel_mode"] = accel.diagnostics["acceleration"]
    results["accel_plain_iterations"] = int(
        plain_tight.diagnostics["iterations"]
    )
    results["accel_iterations"] = int(accel.diagnostics["iterations"])
    results["accel_iteration_ratio"] = round(
        results["accel_iterations"] / results["accel_plain_iterations"], 3
    )
    results["accel_inversion_gap"] = float(
        ranking_inversion_gap(plain_tight.scores, accel.scores)
    )

    results["peak_rss_mb"] = round(_peak_rss_mb(), 1)
    return results


def _check_speedwar(results: Dict[str, object]) -> List[str]:
    """The four speed-war gates (machine-independent ratios)."""
    failures = []
    if results["sharded_vs_fused"] > SPEEDWAR_SHARDED_CEILING:
        failures.append(
            "sharded/fused ratio %.2f exceeds the %.1fx ceiling (was %.2fx)"
            % (results["sharded_vs_fused"], SPEEDWAR_SHARDED_CEILING,
               results["sharded_vs_fused_before"])
        )
    for backend in ("process", "remote"):
        before = float(results["%s_vs_fused_before" % backend])
        now = float(results["%s_vs_fused" % backend])
        if now > before / SPEEDWAR_BACKEND_IMPROVEMENT:
            failures.append(
                "%s/fused ratio %.2f is not >= %.0fx better than the "
                "committed %.2f" % (backend, now,
                                    SPEEDWAR_BACKEND_IMPROVEMENT, before)
            )
    if results["glad_speedup_vs_seed"] < SPEEDWAR_GLAD_FLOOR:
        failures.append(
            "GLAD speedup vs seed reference %.1fx is below the %.0fx floor"
            % (results["glad_speedup_vs_seed"], SPEEDWAR_GLAD_FLOOR)
        )
    if results["accel_mode"] != "momentum":
        failures.append(
            "accelerated solve fell back to %r" % results["accel_mode"]
        )
    if results["accel_iteration_ratio"] > SPEEDWAR_ACCEL_ITERATION_CEILING:
        failures.append(
            "momentum iterations ratio %.2f exceeds the %.2f ceiling "
            "(needs >= 30%% fewer iterations)"
            % (results["accel_iteration_ratio"],
               SPEEDWAR_ACCEL_ITERATION_CEILING)
        )
    if results["accel_inversion_gap"] > SPEEDWAR_ACCEL_TIE_GAP:
        failures.append(
            "momentum ranking inversion gap %.3g exceeds the tie bound %.0e"
            % (results["accel_inversion_gap"], SPEEDWAR_ACCEL_TIE_GAP)
        )
    return failures


def _print_speedwar(results: Dict[str, object]) -> None:
    print("speed-war scenario (median of %d)" % results["repeats"])
    print("  crowd:   %dx%d @ %.2f%% density -> %s answers, %d shards, "
          "iteration_batch %d" % (
              results["num_users"], results["num_items"],
              100 * float(results["density"]),
              format(results["num_answers"], ","), results["num_shards"],
              results["iteration_batch"],
          ))
    print("  fused anchor:    %8.3f s (%d iterations)" % (
        results["fused_seconds"], results["fused_iterations"]))
    for backend, ceiling in (
        ("sharded", "%.1fx ceiling" % SPEEDWAR_SHARDED_CEILING),
        ("process", "committed/2"),
        ("remote", "committed/2"),
    ):
        print("  %-8s %8.3f s -> %.2fx fused (was %.2fx; gate: %s)" % (
            backend, results["%s_seconds" % backend],
            results["%s_vs_fused" % backend],
            results["%s_vs_fused_before" % backend], ceiling,
        ))
    print("  GLAD %dx%d (%s answers): %.3f s vs seed reference %.3f s "
          "-> %.1fx (spearman %.4f)" % (
              results["glad_num_users"], results["glad_num_items"],
              format(results["glad_num_answers"], ","),
              results["glad_seconds"], results["glad_seed_seconds"],
              results["glad_speedup_vs_seed"],
              results["glad_spearman_vs_seed"],
          ))
    print("  momentum HnD @ tol %.0e: %d -> %d iterations (%.2fx, "
          "%.1f s -> %.1f s), inversion gap %.3g" % (
              results["accel_tolerance"],
              results["accel_plain_iterations"], results["accel_iterations"],
              results["accel_iteration_ratio"],
              results["accel_plain_seconds"], results["accel_seconds"],
              results["accel_inversion_gap"],
          ))
    print("  peak RSS: %.0f MB" % results["peak_rss_mb"])
    print()


# --------------------------------------------------------------------------- #
# Incremental scenario (PR 5): warm-started re-ranking after a 1% append
# --------------------------------------------------------------------------- #
def _structured_triples(num_users: int, num_items: int, density: float,
                        num_options: int, seed: int):
    """Deterministic *planted-truth* crowd as canonical sorted triples.

    Each item has a true option and each user an ability ``p`` drawn from
    ``[0.4, 0.95]``; a user answers correctly with probability ``p`` and
    uniformly among the wrong options otherwise.  Unlike the uniform-random
    crowd of ``_sparse_triples``, this workload has the majority structure a
    real crowd has — which is what makes warm-vs-cold equivalence
    meaningful for Dawid–Skene: on pure-noise data *every* item is a
    near-tie, EM has many self-consistent labelings, and an appended batch
    legitimately flips basins (a documented limitation of incremental EM,
    not of this implementation).
    """
    rng = np.random.default_rng(seed)
    target = int(num_users * num_items * density)
    keys = np.unique(
        rng.integers(0, num_users * num_items, size=int(target * 1.1), dtype=np.int64)
    )
    if keys.size > target:
        keys = np.sort(rng.choice(keys, size=target, replace=False))
    users = keys // num_items
    items = keys % num_items
    truth = rng.integers(0, num_options, size=num_items)
    ability = rng.uniform(0.4, 0.95, size=num_users)
    correct = rng.random(keys.size) < ability[users]
    wrong = (truth[items] + rng.integers(1, num_options, size=keys.size)) % num_options
    options = np.where(correct, truth[items], wrong)
    return users, items, options


def _run_incremental(num_users: int = 200_000, num_items: int = 5_000,
                     density: float = 0.001, num_options: int = 4,
                     append_fraction: float = 0.01,
                     seed: int = 7) -> Dict[str, object]:
    from repro.api import CrowdSession
    from repro.api import rank as api_rank
    from repro.evaluation.metrics import ranking_inversion_gap, spearman_accuracy

    users, items, options, results = _scenario_crowd(
        num_users, num_items, density, num_options, seed, planted=True,
        append_fraction=append_fraction,
    )
    nnz = int(results["num_answers"])
    split_rng = np.random.default_rng(seed + 1)
    shuffled = split_rng.permutation(nnz)
    cut = nnz - int(nnz * append_fraction)
    base = np.sort(shuffled[:cut])
    append = np.sort(shuffled[cut:])
    results["append_answers"] = int(append.size)

    # The two paper methods the acceptance gate names; HnD runs at a tight
    # tolerance so warm-vs-cold score differences sit orders of magnitude
    # below genuine score gaps (the committed tie-gap numbers quantify it).
    methods = {
        "HnD-Power": ("HnD", {"random_state": 0, "tolerance": 1e-8}),
        "Dawid-Skene": ("Dawid-Skene", {}),
    }

    session = CrowdSession(num_items=num_items, num_options=num_options,
                           num_users=num_users)
    session.add_answers(users[base], items[base], options[base])
    session.matrix  # materialize outside the timed solves

    for name, (method, params) in methods.items():
        start = time.perf_counter()
        ranking = session.rank(method, warm_start=True, **params)
        results["%s_base_seconds" % name] = round(time.perf_counter() - start, 4)
        results["%s_base_iterations" % name] = int(ranking.diagnostics["iterations"])
        assert ranking.diagnostics["warm_start"] == "cold"

    start = time.perf_counter()
    session.add_answers(users[append], items[append], options[append])
    merged = session.matrix
    results["append_seconds"] = round(time.perf_counter() - start, 4)

    for name, (method, params) in methods.items():
        start = time.perf_counter()
        warm = session.rank(method, warm_start=True, **params)
        results["%s_warm_seconds" % name] = round(time.perf_counter() - start, 4)
        assert warm.diagnostics["warm_start"] == "warm", (
            "%s did not warm-start: %r" % (name, warm.diagnostics["warm_start"])
        )
        start = time.perf_counter()
        cold = api_rank(merged, method, **params)
        results["%s_cold_seconds" % name] = round(time.perf_counter() - start, 4)
        warm_iters = int(warm.diagnostics["iterations"])
        cold_iters = int(cold.diagnostics["iterations"])
        gap = ranking_inversion_gap(cold.scores, warm.scores)
        results["%s_warm_iterations" % name] = warm_iters
        results["%s_cold_iterations" % name] = cold_iters
        results["%s_score_max_diff" % name] = float(
            np.abs(warm.scores - cold.scores).max()
        )
        results["%s_ranking_identical" % name] = bool(
            np.array_equal(np.argsort(warm.scores, kind="stable"),
                           np.argsort(cold.scores, kind="stable"))
        )
        results["%s_ranking_inversion_gap" % name] = gap
        results["%s_ranking_tie_gap_bound" % name] = INCREMENTAL_TIE_GAP[name]
        results["%s_spearman_warm_vs_cold" % name] = round(
            spearman_accuracy(warm.scores, cold.scores), 10
        )

    # A repeated warm query of the unchanged crowd is an exact cache hit.
    method, params = methods["HnD-Power"]
    before = session.cache.stats()["hits"]
    start = time.perf_counter()
    session.rank(method, warm_start=True, **params)
    results["warm_hit_seconds"] = round(time.perf_counter() - start, 6)
    results["warm_hit_served_from_cache"] = session.cache.stats()["hits"] > before
    results["cache_stats"] = session.cache.stats()
    results["peak_rss_mb"] = round(_peak_rss_mb(), 1)
    return results


def _check_incremental(results: Dict[str, object]) -> List[str]:
    """The incremental acceptance gates (see INCREMENTAL_TIE_GAP)."""
    failures = []
    for name in ("HnD-Power", "Dawid-Skene"):
        warm = int(results["%s_warm_iterations" % name])
        cold = int(results["%s_cold_iterations" % name])
        if warm >= cold:
            failures.append(
                "%s warm solve took %d iterations vs %d cold — no "
                "incremental win" % (name, warm, cold)
            )
        gap = float(results["%s_ranking_inversion_gap" % name])
        bound = INCREMENTAL_TIE_GAP[name]
        if gap > bound:
            failures.append(
                "%s warm-vs-cold rankings disagree beyond solver ties: "
                "inversion gap %.3g > %.3g" % (name, gap, bound)
            )
    if not results["warm_hit_served_from_cache"]:
        failures.append("repeated warm query was not served from the cache")
    return failures


def _print_incremental(results: Dict[str, object]) -> None:
    print("incremental scenario (%.0f%% append, warm-started solvers)"
          % (100 * float(results["append_fraction"])))
    print("  crowd:   %dx%d @ %.2f%% density -> %s answers (planted truth), "
          "append %s answers" % (
              results["num_users"], results["num_items"],
              100 * float(results["density"]),
              format(results["num_answers"], ","),
              format(results["append_answers"], ","),
          ))
    print("  append (O(batch) ingest + rematerialize): %.3f s"
          % results["append_seconds"])
    for name in ("HnD-Power", "Dawid-Skene"):
        print("  %-12s base cold %4d it %8.3f s | append warm %4d it %8.3f s"
              " | merged cold %4d it %8.3f s" % (
                  name,
                  results["%s_base_iterations" % name],
                  results["%s_base_seconds" % name],
                  results["%s_warm_iterations" % name],
                  results["%s_warm_seconds" % name],
                  results["%s_cold_iterations" % name],
                  results["%s_cold_seconds" % name],
              ))
        print("  %-12s warm-vs-cold: max score diff %.3g, inversion gap %.3g"
              " (tie bound %.0e), identical=%s, spearman %.8f" % (
                  "",
                  results["%s_score_max_diff" % name],
                  results["%s_ranking_inversion_gap" % name],
                  results["%s_ranking_tie_gap_bound" % name],
                  results["%s_ranking_identical" % name],
                  results["%s_spearman_warm_vs_cold" % name],
              ))
    print("  repeated warm query: %.5f s (cache hit: %s)" % (
        results["warm_hit_seconds"], results["warm_hit_served_from_cache"],
    ))
    print("  peak RSS: %.0f MB" % results["peak_rss_mb"])
    print()


def _print_sharded(results: Dict[str, object]) -> None:
    backend = results.get("backend", "threads")
    print("sharded-engine scenario (%s backend)"
          % ("process-pool" if backend == "processes" else "thread"))
    print("  crowd:   %dx%d @ %.2f%% density -> %s answers, %d shards (%s workers)" % (
        results["num_users"], results["num_items"], 100 * float(results["density"]),
        format(results["num_answers"], ","), results["num_shards"],
        results["max_workers"],
    ))
    print("  out-of-core ingest (NPZ stream, %d-row chunks): %.3f s (%.1f MB archive)"
          % (results["chunk_size"], results["stream_ingest_seconds"],
             results["npz_bytes"] / 1e6))
    print("  split into user-range shards:                   %.3f s" % results["split_seconds"])
    for name in ("HnD-Power", "Dawid-Skene", "MajorityVote"):
        print("  %-14s sharded %8.3f s | single %8.3f s | bit-identical: %s" % (
            name,
            results["%s_sharded_seconds" % name],
            results["%s_single_seconds" % name],
            results["%s_bit_identical" % name],
        ))
    print("  rank cache: cold %.3f s -> warm hit %.5f s (%.0fx speedup)" % (
        results["cache_cold_seconds"], results["cache_warm_seconds"],
        results["cache_speedup"],
    ))
    print("  peak RSS: %.0f MB (%.0f MB before ingest)" % (
        results["peak_rss_mb"], results["rss_before_mb"],
    ))
    print()


def _print_sparse(results: Dict[str, object]) -> None:
    print("large-sparse scenario (triples-native ingestion)")
    print("  crowd:         %dx%d @ %.2f%% density -> %s answers" % (
        results["num_users"], results["num_items"],
        100 * float(results["density"]), format(results["num_answers"], ","),
    ))
    print("  dense (m, n) choice matrix would need: %.0f MB (never allocated)"
          % results["dense_equivalent_mb"])
    print("  ingest (from_triples + compile):       %.3f s" % results["ingest_seconds"])
    for name in ("HnD-Power", "Dawid-Skene"):
        print("  %-14s %8.3f s  (%s iterations)" % (
            name, results["%s_seconds" % name], results["%s_iterations" % name],
        ))
    print("  peak RSS: %.0f MB (%.0f MB before ingest)" % (
        results["peak_rss_mb"], results["rss_before_mb"],
    ))
    print()


def _load() -> Dict[str, object]:
    if RESULTS_PATH.exists():
        return json.loads(RESULTS_PATH.read_text())
    return {}


def _save(payload: Dict[str, object]) -> None:
    # allow_nan=False keeps the committed file strict JSON (bare NaN tokens
    # break jq / JSON.parse); non-finite values must be mapped to None first.
    RESULTS_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
    )


def _environment() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
    }


def _print_table(title: str, results: Dict[str, Dict[str, object]],
                 baseline: Dict[str, Dict[str, object]] | None = None) -> None:
    print(title)
    header = "%-14s %10s %10s %10s %8s" % ("ranker", "size", "cold (s)", "warm (s)", "vs seed")
    print(header)
    print("-" * len(header))
    for name, row in results.items():
        speedup = ""
        if baseline and name in baseline:
            ref = float(baseline[name]["cold_seconds"])
            now = float(row["cold_seconds"])
            if now > 0:
                speedup = "%.1fx" % (ref / now)
        print("%-14s %10s %10.4f %10.4f %8s" % (
            name,
            "%dx%d" % (row["num_users"], row["num_items"]),
            row["cold_seconds"],
            row["warm_seconds"],
            speedup,
        ))
    print()


def _check_regression(fresh: Dict[str, Dict[str, object]],
                      committed: Dict[str, Dict[str, object]],
                      machine_scale: float = 1.0) -> List[str]:
    """Compare fresh against committed timings with a 2x tolerance.

    ``machine_scale`` is the calibration ratio (fresh anchor / committed
    anchor): the committed reference is multiplied by it, so the comparison
    is between *ratios to the frozen anchor workload* rather than absolute
    machine-specific seconds.  ``1.0`` preserves the uncalibrated gate.
    """
    failures = []
    for name, row in fresh.items():
        if name not in committed:
            continue
        reference = float(committed[name]["cold_seconds"]) * machine_scale
        measured = float(row["cold_seconds"])
        if (
            measured > REGRESSION_THRESHOLD * reference
            and measured - reference > REGRESSION_FLOOR_SECONDS * max(machine_scale, 1.0)
        ):
            failures.append(
                "%s regressed: %.4fs vs committed %.4fs (scale %.2f, >%.1fx)"
                % (name, measured, reference, machine_scale, REGRESSION_THRESHOLD)
            )
    return failures


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the small profile and gate against committed numbers")
    parser.add_argument("--update", action="store_true",
                        help="run full+smoke profiles and rewrite the 'current' section")
    parser.add_argument("--capture-seed", action="store_true",
                        help="record the 'seed' baseline section (run on seed code)")
    parser.add_argument("--sparse", action="store_true",
                        help="run the 200k x 5k triples-native scenario")
    parser.add_argument("--update-sparse", action="store_true",
                        help="run the sparse scenario and rewrite BENCH_PR2.json")
    parser.add_argument("--sharded", action="store_true",
                        help="run the 200k x 5k sharded-engine scenario")
    parser.add_argument("--update-sharded", action="store_true",
                        help="run the sharded scenario and rewrite BENCH_PR3.json")
    parser.add_argument("--incremental", action="store_true",
                        help="run the 200k x 5k incremental scenario: 1%% "
                             "append, warm-started HnD/Dawid-Skene (PR 5)")
    parser.add_argument("--update-incremental", action="store_true",
                        help="run the incremental scenario and rewrite "
                             "BENCH_PR5.json")
    parser.add_argument("--remote", action="store_true",
                        help="run the 200k x 5k remote-backend scenario: two "
                             "localhost socket workers, incl. a kill-one-"
                             "worker-mid-solve recovery run (PR 6)")
    parser.add_argument("--update-remote", action="store_true",
                        help="run the remote scenario and rewrite "
                             "BENCH_PR6.json")
    parser.add_argument("--speedwar", action="store_true",
                        help="run the PR 7 speed-war scenario: the four "
                             "single-node gaps (sharded/process/remote HnD "
                             "ratios vs fused, O(nnz) GLAD vs the seed "
                             "reference, momentum iterations) gated on "
                             "machine-independent ratios")
    parser.add_argument("--update-speedwar", action="store_true",
                        help="run the speed-war scenario and rewrite "
                             "BENCH_PR7.json")
    parser.add_argument("--backend", default="threads",
                        choices=["threads", "processes"],
                        help="with --sharded/--update-sharded: shard dispatch "
                             "backend (processes = the PR 4 process pool; "
                             "committed as BENCH_PR4.json)")
    parser.add_argument("--calibrate", action="store_true",
                        help="with --smoke: normalize out machine speed by "
                             "re-timing the frozen reference anchor")
    parser.add_argument("--repeats", type=int, default=3, help="repeats per ranker")
    args = parser.parse_args(argv)

    standalone = (
        args.sparse or args.update_sparse or args.sharded or args.update_sharded
        or args.incremental or args.update_incremental
        or args.remote or args.update_remote
        or args.speedwar or args.update_speedwar
    )
    if standalone and (args.smoke or args.update or args.capture_seed):
        parser.error(
            "--sparse/--update-sparse/--sharded/--update-sharded/"
            "--incremental/--update-incremental/--remote/--update-remote/"
            "--speedwar/--update-speedwar run a standalone scenario "
            "and cannot be combined with --smoke/--update/--capture-seed"
        )
    if args.calibrate and not args.smoke:
        parser.error("--calibrate only applies to --smoke")
    if args.backend != "threads" and not (args.sharded or args.update_sharded):
        parser.error("--backend only applies to --sharded/--update-sharded")

    if args.speedwar or args.update_speedwar:
        speedwar_results = _run_speedwar(repeats=args.repeats)
        _print_speedwar(speedwar_results)
        failures = _check_speedwar(speedwar_results)
        if failures:
            for failure in failures:
                print("FAIL:", failure)
            return 1
        if args.update_speedwar:
            payload = {
                "environment": _environment(),
                "protocol": {
                    "description": (
                        "median of N repeats per timed segment; the seed-7 "
                        "sparse crowd is ranked with plain fused HnD (the "
                        "anchor), then over the thread backend (per-shard "
                        "CSR kernels), the process pool and two localhost "
                        "socket workers (both with iteration_batch=%d, "
                        "i.e. %d solver iterations per dispatch on a "
                        "worker-held replica), every score vector asserted "
                        "bit-identical to fused.  Gates are ratios to the "
                        "fresh fused anchor, compared against the ratios "
                        "committed in BENCH_PR3/PR4/PR6 (the 'before' "
                        "numbers), so they hold on hardware of any speed.  "
                        "GLAD runs the O(nnz) M-step against the frozen "
                        "seed-faithful ReferenceGLADRanker at a reduced "
                        "20k x 2k scale (the dense reference needs "
                        "O(m * n) memory per gradient step).  The momentum "
                        "pair (plain vs acceleration='momentum', same seed) "
                        "runs once each at tolerance 1e-8 — tight enough "
                        "that the plain baseline's own remaining error sits "
                        "below the 1e-5 tie bound, so the inversion gap "
                        "measures the acceleration, not the baseline — and "
                        "records the iteration ratio and the gap." % (
                            SPEEDWAR_ITERATION_BATCH,
                            SPEEDWAR_ITERATION_BATCH,
                        )
                    ),
                },
                "speedwar": speedwar_results,
            }
            SPEEDWAR_RESULTS_PATH.write_text(
                json.dumps(payload, indent=2, sort_keys=True,
                           allow_nan=False) + "\n"
            )
            print("wrote", SPEEDWAR_RESULTS_PATH)
        return 0

    if args.remote or args.update_remote:
        remote_results = _run_remote()
        _print_remote(remote_results)
        failures = _check_remote(remote_results)
        if failures:
            for failure in failures:
                print("FAIL:", failure)
            return 1
        if args.update_remote:
            payload = {
                "environment": _environment(),
                "protocol": {
                    "description": (
                        "single run; two real worker subprocesses "
                        "(python -m repro.engine.remote.worker) are spawned "
                        "on localhost ephemeral ports and the seed-7 sparse "
                        "crowd is ranked over "
                        "ExecutionPolicy(backend='remote') at 8 shards with "
                        "HnD-Power (random_state 0), Dawid-Skene and "
                        "MajorityVote; every remote score vector is "
                        "asserted bit-identical to the fused single-process "
                        "ranker.  The timed remote calls include engine "
                        "set-up (connections + shard shipping).  The kill "
                        "run routes worker 1 through a frame-counting "
                        "ChaosProxy that SIGKILLs it after a fixed request "
                        "count mid-HnD-solve; the coordinator reassigns the "
                        "orphaned shards to the survivor and the recovered "
                        "scores must again be bit-identical, with the "
                        "recovery overhead recorded.  Finally a repeated "
                        "MajorityVote query must be served from the rank "
                        "cache without touching the degraded fleet.  Peak "
                        "RSS via getrusage(RUSAGE_SELF).ru_maxrss; workers "
                        "are separate processes so coordinator RSS excludes "
                        "their shard copies."
                    ),
                },
                "remote_engine": remote_results,
            }
            REMOTE_RESULTS_PATH.write_text(
                json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
            )
            print("wrote", REMOTE_RESULTS_PATH)
        return 0

    if args.incremental or args.update_incremental:
        incremental_results = _run_incremental()
        _print_incremental(incremental_results)
        failures = _check_incremental(incremental_results)
        if failures:
            for failure in failures:
                print("FAIL:", failure)
            return 1
        if args.update_incremental:
            payload = {
                "environment": _environment(),
                "protocol": {
                    "description": (
                        "single run; a planted-truth crowd (per-item true "
                        "option, per-user ability in [0.4, 0.95], seed 7) "
                        "is split 99%/1%; the base 99% is ranked cold "
                        "through a CrowdSession (capturing solver state in "
                        "the rank cache), the 1% is appended, and the "
                        "re-rank is warm-started from the cached state vs "
                        "a fresh cold solve of the merged matrix.  Gates: "
                        "warm iterations strictly below cold, and the "
                        "warm-vs-cold ranking inversion gap (largest "
                        "cold-score gap over oppositely-ordered user "
                        "pairs) below the per-method tie threshold — "
                        "rankings identical up to users the solver itself "
                        "cannot separate.  HnD runs at tolerance 1e-8 with "
                        "random_state 0; Dawid-Skene at its defaults.  "
                        "Peak RSS via getrusage(RUSAGE_SELF).ru_maxrss."
                    ),
                },
                "incremental": incremental_results,
            }
            INCREMENTAL_RESULTS_PATH.write_text(
                json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
            )
            print("wrote", INCREMENTAL_RESULTS_PATH)
        return 0

    if args.sharded or args.update_sharded:
        sharded_results = _run_sharded(backend=args.backend)
        _print_sharded(sharded_results)
        if sharded_results["cache_speedup"] < CACHE_SPEEDUP_FLOOR:
            print(
                "FAIL: rank-cache warm-hit speedup %.0fx is below the "
                "required %.0fx" % (
                    sharded_results["cache_speedup"], CACHE_SPEEDUP_FLOOR,
                )
            )
            return 1
        if args.update_sharded:
            backend_note = (
                "dispatched over the PR 4 ProcessPoolExecutor backend "
                "(worker-resident shard slices, shared-memory vectors, "
                "via repro.api.rank with ExecutionPolicy)"
                if args.backend == "processes"
                else "dispatched over the in-process thread backend"
            )
            payload = {
                "environment": _environment(),
                "protocol": {
                    "description": (
                        "single run; the PR 2 crowd (unique flat keys, seed "
                        "7) is saved to NPZ, streamed back through the "
                        "chunked out-of-core readers, split into user-range "
                        "shards, and ranked with the shard-parallel kernels "
                        "%s (scores asserted bit-identical to the "
                        "single-process rankers at full scale); the rank "
                        "cache is timed cold (miss) vs warm (hit) on "
                        "repeated rank() of unchanged data; peak RSS via "
                        "getrusage(RUSAGE_SELF).ru_maxrss" % backend_note
                    ),
                },
                "sharded_engine": sharded_results,
            }
            target = (
                PROCESS_RESULTS_PATH if args.backend == "processes"
                else SHARDED_RESULTS_PATH
            )
            target.write_text(
                json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
            )
            print("wrote", target)
        return 0

    if args.sparse or args.update_sparse:
        sparse_results = _run_sparse()
        _print_sparse(sparse_results)
        if args.update_sparse:
            payload = {
                "environment": _environment(),
                "protocol": {
                    "description": (
                        "single run; triples generated deterministically "
                        "(unique flat keys, seed 7), ingested via "
                        "ResponseMatrix.from_triples; peak RSS via "
                        "getrusage(RUSAGE_SELF).ru_maxrss; the dense (m, n) "
                        "choice matrix is never allocated"
                    ),
                },
                "large_sparse": sparse_results,
            }
            SPARSE_RESULTS_PATH.write_text(
                json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
            )
            print("wrote", SPARSE_RESULTS_PATH)
        return 0

    payload = _load()
    payload.setdefault("protocol", {
        "model": "grm",
        "num_options": 3,
        "random_state": 7,
        "description": (
            "median of N repeats; cold = fresh ResponseMatrix per call "
            "(construction + derived-form builds included), warm = one matrix "
            "instance reused across calls"
        ),
    })
    payload["protocol"]["num_repeats"] = args.repeats

    if args.capture_seed:
        payload["environment_seed"] = _environment()
        payload["seed"] = {
            "full": _run(smoke=False, num_repeats=args.repeats),
            "smoke": _run(smoke=True, num_repeats=args.repeats),
        }
        _save(payload)
        _print_table("seed / full profile", payload["seed"]["full"])
        _print_table("seed / smoke profile", payload["seed"]["smoke"])
        return 0

    if args.update:
        payload["environment"] = _environment()
        current = {
            "full": _run(smoke=False, num_repeats=args.repeats),
            "smoke": _run(smoke=True, num_repeats=args.repeats),
        }
        payload["current"] = current
        payload["calibration"] = _time_calibration_anchor(args.repeats)
        seed = payload.get("seed", {})
        payload["speedup_vs_seed"] = {
            profile: {
                name: round(
                    float(seed[profile][name]["cold_seconds"])
                    / max(float(row["cold_seconds"]), 1e-9),
                    2,
                )
                for name, row in current[profile].items()
                if name in seed.get(profile, {})
            }
            for profile in current
        }
        _save(payload)
        _print_table("current / full profile", current["full"],
                     seed.get("full"))
        _print_table("current / smoke profile", current["smoke"],
                     seed.get("smoke"))
        return 0

    if args.smoke:
        machine_scale = 1.0
        if args.calibrate:
            committed_anchor = payload.get("calibration", {})
            if not committed_anchor:
                print(
                    "FAIL: no committed calibration anchor in %s "
                    "(run --update on a known-good checkout first)" % RESULTS_PATH
                )
                return 1
            fresh_anchor = _time_calibration_anchor(args.repeats)
            machine_scale = float(fresh_anchor["cold_seconds"]) / float(
                committed_anchor["cold_seconds"]
            )
            # Calibration exists so a *slower* runner cannot false-fail;
            # on a faster runner keep the committed reference (scale 1.0)
            # rather than proportionally tightening the gate — measured
            # times shrink with the machine anyway, and an unlucky fast
            # anchor sample must not manufacture regressions.
            machine_scale = max(machine_scale, 1.0)
            print(
                "calibration anchor (%s at %dx%d): %.4fs here vs %.4fs "
                "committed -> machine scale %.2fx"
                % (
                    committed_anchor.get("ranker", "?"),
                    int(committed_anchor["num_users"]),
                    int(committed_anchor["num_items"]),
                    float(fresh_anchor["cold_seconds"]),
                    float(committed_anchor["cold_seconds"]),
                    machine_scale,
                )
            )
        fresh = _run(smoke=True, num_repeats=args.repeats)
        committed = payload.get("current", {}).get("smoke", {})
        _print_table("smoke profile", fresh, payload.get("seed", {}).get("smoke"))
        # A gate with nothing to compare against must fail loudly, not pass
        # vacuously: a deleted baseline file or renamed ranker would
        # otherwise silently disable regression detection.
        if not committed:
            print(
                "FAIL: no committed current.smoke baseline in %s "
                "(run --update on a known-good checkout first)" % RESULTS_PATH
            )
            return 1
        missing = sorted(set(fresh) - set(committed))
        if missing:
            print(
                "FAIL: ranker(s) %s missing from the committed baseline; "
                "rerun --update to re-baseline" % ", ".join(missing)
            )
            return 1
        dropped = sorted(set(committed) - set(fresh))
        if dropped:
            print(
                "FAIL: committed baseline ranker(s) %s no longer measured; "
                "a removed or renamed spec silently shrinks regression "
                "coverage — rerun --update to re-baseline" % ", ".join(dropped)
            )
            return 1
        failures = _check_regression(fresh, committed, machine_scale)
        if failures:
            for failure in failures:
                print("FAIL:", failure)
            return 1
        print(
            "smoke gate passed: no ranker regressed >%.1fx (machine scale %.2f)"
            % (REGRESSION_THRESHOLD, machine_scale)
        )
        return 0

    fresh = _run(smoke=False, num_repeats=args.repeats)
    _print_table("full profile", fresh, payload.get("seed", {}).get("full"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
