"""Perf-regression benchmark harness (PR 1; sparse PR 2; sharded PR 3).

Times every ranker in the library on fixed, deterministic synthetic sizes —
driven through :func:`repro.evaluation.timing.benchmark_rankers` — and keeps
the trajectory file ``benchmarks/BENCH_PR1.json`` that later PRs are
measured against.

Usage::

    python benchmarks/bench_perf.py                 # full profile, print table
    python benchmarks/bench_perf.py --update        # full+smoke+calibration,
                                                    # rewrite "current"
    python benchmarks/bench_perf.py --capture-seed  # record the "seed" baseline
    python benchmarks/bench_perf.py --smoke         # <60 s regression gate:
                                                    # fails (exit 1) when any
                                                    # ranker is >2x slower than
                                                    # the committed numbers
    python benchmarks/bench_perf.py --smoke --calibrate
                                                    # same gate, but machine
                                                    # speed is normalized out
                                                    # (enforceable on shared
                                                    # CI runners)
    python benchmarks/bench_perf.py --sparse        # 200k x 5k triples-native
                                                    # scenario (wall + peak RSS)
    python benchmarks/bench_perf.py --update-sparse # rewrite BENCH_PR2.json
    python benchmarks/bench_perf.py --sharded       # 200k x 5k through the
                                                    # sharded engine + rank
                                                    # cache (PR 3 scenario)
    python benchmarks/bench_perf.py --update-sharded  # rewrite BENCH_PR3.json
    python benchmarks/bench_perf.py --sharded --backend processes
                                                    # same scenario through the
                                                    # PR 4 process pool
    python benchmarks/bench_perf.py --update-sharded --backend processes
                                                    # rewrite BENCH_PR4.json

The PR 1 JSON file holds two sections: ``seed`` (timings captured on the
seed implementation, before the fused-kernel layer of PR 1) and ``current``
(timings of the code as committed), plus the cold-path speedup of current
over seed.  ``--smoke`` compares a fresh run against ``current.smoke`` with
a 2x tolerance and a small absolute floor so sub-millisecond jitter never
trips the gate.

``--calibrate`` makes the smoke gate *self-calibrating*: the committed
numbers are machine-specific, so the gate re-times a frozen reference
workload (the seed-faithful ``ReferenceDawidSkeneRanker`` preserved in
``repro.truth_discovery.reference`` — code that never changes across PRs)
on the current machine, derives the machine-speed ratio against the
committed anchor time, and compares *scaled* ratios instead of absolute
seconds.  That turns the advisory CI step into an enforced gate.

``--sparse`` exercises the PR 2 storage model: a 200k-user x 5k-item crowd
at ~0.1% density (1M answers) is ingested through
``ResponseMatrix.from_triples`` and ranked with HnD-Power and Dawid-Skene.
Peak RSS is recorded alongside wall time; the dense choice matrix this
workload *would* have needed (~8 GB) is reported for contrast — the whole
scenario fits in a few hundred MB because no ``(m, n)`` array ever exists.

``--sharded`` exercises the PR 3 execution engine on the same crowd: the
triples are saved to NPZ and streamed back through the chunked out-of-core
readers into 8 user-range shards, ranked with the shard-parallel HnD-Power /
Dawid-Skene / MajorityVote kernels (asserting bit-identical scores against
the single-process rankers at full scale), and served twice through the
hash-keyed ``RankCache`` to measure the warm-hit speedup (≥100x required).

``--sharded --backend processes`` routes the same scenario through the
PR 4 unified API (``repro.api.rank`` with
``ExecutionPolicy(backend="processes", shards=8)``): shard slices live in
worker processes, hot vectors travel through shared memory, and the scores
are asserted bit-identical to the fused single-process rankers at full
scale.  Committed as ``BENCH_PR4.json``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np
import scipy

from repro.c1p.abh import ABHDirect, ABHPower
from repro.core.hitsndiffs import HNDDeflation, HNDDirect, HNDPower
from repro.core.response import ResponseMatrix
from repro.evaluation.timing import PerfSpec, benchmark_rankers
from repro.truth_discovery.dawid_skene import DawidSkeneRanker
from repro.truth_discovery.glad import GLADRanker
from repro.truth_discovery.hits import HITSRanker
from repro.truth_discovery.investment import InvestmentRanker, PooledInvestmentRanker
from repro.truth_discovery.majority import MajorityVoteRanker
from repro.truth_discovery.truthfinder import TruthFinderRanker

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_PR1.json"
SPARSE_RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_PR2.json"
SHARDED_RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_PR3.json"
PROCESS_RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_PR4.json"

#: Required warm-hit speedup of the rank cache in the sharded scenario.
CACHE_SPEEDUP_FLOOR = 100.0

#: Regression gate: fail when current/committed > threshold and the
#: absolute slowdown exceeds the floor (guards against timer jitter on
#: the fastest rankers).
REGRESSION_THRESHOLD = 2.0
REGRESSION_FLOOR_SECONDS = 0.005


def _profile(smoke: bool) -> List[PerfSpec]:
    """The fixed ranker line-up; smoke sizes finish in well under 60 s."""

    def size(full_m: int, full_n: int, smoke_m: int, smoke_n: int):
        return (smoke_m, smoke_n) if smoke else (full_m, full_n)

    specs = [
        PerfSpec("HnD-Power", HNDPower(random_state=0), *size(5000, 200, 1000, 100)),
        PerfSpec("HnD-Deflation", HNDDeflation(random_state=0), *size(1000, 100, 300, 60)),
        PerfSpec("HnD-Direct", HNDDirect(), *size(1000, 100, 300, 60)),
        PerfSpec("ABH-Power", ABHPower(random_state=0), *size(2000, 200, 500, 100)),
        PerfSpec("ABH-Direct", ABHDirect(), *size(1000, 100, 300, 60)),
        PerfSpec("Dawid-Skene", DawidSkeneRanker(), *size(500, 200, 200, 80)),
        PerfSpec("GLAD", GLADRanker(), *size(500, 200, 150, 60)),
        PerfSpec("HITS", HITSRanker(), *size(5000, 200, 1000, 100)),
        PerfSpec("TruthFinder", TruthFinderRanker(), *size(2000, 200, 500, 100)),
        PerfSpec("Invest", InvestmentRanker(), *size(2000, 200, 500, 100)),
        PerfSpec("PooledInv", PooledInvestmentRanker(), *size(2000, 200, 500, 100)),
        PerfSpec("MajorityVote", MajorityVoteRanker(), *size(5000, 200, 1000, 100)),
    ]
    return specs


def _run(smoke: bool, num_repeats: int) -> Dict[str, Dict[str, object]]:
    records = benchmark_rankers(_profile(smoke), num_repeats=num_repeats)
    return {record.name: record.to_dict() for record in records}


# --------------------------------------------------------------------------- #
# Machine-speed calibration (self-calibrating smoke gate)
# --------------------------------------------------------------------------- #
def _time_calibration_anchor(num_repeats: int) -> Dict[str, object]:
    """Cold-time the frozen seed-faithful reference ranker.

    ``ReferenceDawidSkeneRanker`` is the seed implementation preserved
    verbatim as a test oracle — it never changes across PRs, so its runtime
    on a machine measures *the machine*, not the library.  The smoke gate
    divides fresh timings by (fresh anchor / committed anchor) to compare
    ratios instead of machine-specific absolute seconds.

    The anchor runs at 500x200 — a few hundred milliseconds — so the
    ratio is driven by machine speed, not by millisecond-scale timer
    noise (the smoke workloads themselves are only a few ms each).
    """
    from repro.truth_discovery.reference import ReferenceDawidSkeneRanker

    records = benchmark_rankers(
        [PerfSpec("calibration-anchor", ReferenceDawidSkeneRanker(), 500, 200)],
        num_repeats=num_repeats,
    )
    payload = records[0].to_dict()
    payload["ranker"] = "Dawid-Skene-reference"
    return payload


# --------------------------------------------------------------------------- #
# Large-sparse scenario (PR 2): triples-native ingestion at crowd scale
# --------------------------------------------------------------------------- #
def _peak_rss_mb() -> float:
    """Lifetime peak RSS of this process in MB (ru_maxrss is KB on Linux)."""
    import resource  # Unix-only; imported here so the other modes run anywhere

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes there
        peak /= 1024
    return peak / 1024.0


def _sparse_triples(num_users: int, num_items: int, density: float,
                    num_options: int, seed: int):
    """Deterministic random crowd as canonical (already-sorted) triples."""
    rng = np.random.default_rng(seed)
    target = int(num_users * num_items * density)
    # Oversample flat (user, item) keys, unique them (duplicate free, never
    # anywhere near (m * n) memory), then subsample back to the target
    # *randomly* — a sorted-prefix cut would silently empty the top of the
    # user range.
    keys = np.unique(
        rng.integers(0, num_users * num_items, size=int(target * 1.1), dtype=np.int64)
    )
    if keys.size > target:
        keys = np.sort(rng.choice(keys, size=target, replace=False))
    users = keys // num_items
    items = keys % num_items
    options = rng.integers(0, num_options, size=keys.size)
    return users, items, options


def _run_sparse(num_users: int = 200_000, num_items: int = 5_000,
                density: float = 0.001, num_options: int = 4,
                seed: int = 7) -> Dict[str, object]:
    users, items, options = _sparse_triples(
        num_users, num_items, density, num_options, seed
    )
    nnz = int(users.size)
    results: Dict[str, object] = {
        "num_users": num_users,
        "num_items": num_items,
        "density": density,
        "num_options": num_options,
        "num_answers": nnz,
        "dense_equivalent_mb": round(num_users * num_items * 8 / 1024 / 1024, 1),
        "rss_before_mb": round(_peak_rss_mb(), 1),
    }

    start = time.perf_counter()
    response = ResponseMatrix.from_triples(
        users, items, options,
        shape=(num_users, num_items), num_options=num_options,
    )
    response.compiled  # include the kernel-cache build in ingestion cost
    results["ingest_seconds"] = round(time.perf_counter() - start, 4)

    for name, ranker in (
        ("HnD-Power", HNDPower(random_state=0)),
        ("Dawid-Skene", DawidSkeneRanker()),
    ):
        start = time.perf_counter()
        ranking = ranker.rank(response)
        results["%s_seconds" % name] = round(time.perf_counter() - start, 4)
        iterations = ranking.diagnostics.get("iterations")
        results["%s_iterations" % name] = (
            int(iterations) if iterations is not None else None
        )

    results["peak_rss_mb"] = round(_peak_rss_mb(), 1)
    return results


# --------------------------------------------------------------------------- #
# Sharded-engine scenario (PR 3): out-of-core ingest, shard-parallel ranking,
# and the hash-keyed rank cache, at the same 200k x 5k crowd scale
# --------------------------------------------------------------------------- #
def _run_sharded(num_users: int = 200_000, num_items: int = 5_000,
                 density: float = 0.001, num_options: int = 4,
                 num_shards: int = 8, max_workers: int = 4,
                 chunk_size: int = 262_144, seed: int = 7,
                 backend: str = "threads") -> Dict[str, object]:
    import tempfile

    from repro.api import ExecutionPolicy
    from repro.api import rank as api_rank
    from repro.engine import RankCache, ShardedResponse, load_streaming

    users, items, options = _sparse_triples(
        num_users, num_items, density, num_options, seed
    )
    nnz = int(users.size)
    results: Dict[str, object] = {
        "num_users": num_users,
        "num_items": num_items,
        "density": density,
        "num_options": num_options,
        "num_answers": nnz,
        "num_shards": num_shards,
        "max_workers": max_workers,
        "chunk_size": chunk_size,
        "backend": backend,
        "rss_before_mb": round(_peak_rss_mb(), 1),
    }

    # Out-of-core ingestion: NPZ on disk -> chunked streams -> builder ->
    # canonical matrix -> user-range shards.  The raw input is never held
    # whole; each chunk is bounded by chunk_size rows.
    source = ResponseMatrix.from_triples(
        users, items, options,
        shape=(num_users, num_items), num_options=num_options,
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "crowd.npz"
        source.save(path)
        results["npz_bytes"] = path.stat().st_size
        start = time.perf_counter()
        response = load_streaming(path, chunk_size=chunk_size)
        results["stream_ingest_seconds"] = round(time.perf_counter() - start, 4)
    assert response == source, "streamed reload must reproduce the matrix"
    start = time.perf_counter()
    split_workers = max_workers if backend == "threads" else None
    sharded = ShardedResponse.split(response, num_shards, max_workers=split_workers)
    sharded.columns  # warm the shared kernel state inside the split timing
    results["split_seconds"] = round(time.perf_counter() - start, 4)
    results["shard_answers"] = [int(s.num_answers) for s in sharded.shards]

    # Shard-parallel ranking through the unified API (the pre-split
    # sharding is reused; the policy picks thread vs process dispatch),
    # checked bit-identical against the single-process kernels at full
    # scale (scores, not just rankings).  The timed sharded call includes
    # the backend's own set-up cost (thread/process pool) — that is what a
    # cold serving call pays.
    policy = ExecutionPolicy(backend=backend, shards=num_shards,
                             workers=max_workers)
    single = {
        "HnD-Power": HNDPower(random_state=0),
        "Dawid-Skene": DawidSkeneRanker(),
        "MajorityVote": MajorityVoteRanker(),
    }
    methods = {
        "HnD-Power": ("HnD", {"random_state": 0}),
        "Dawid-Skene": ("Dawid-Skene", {}),
        "MajorityVote": ("MajorityVote", {}),
    }
    for name, (method, params) in methods.items():
        start = time.perf_counter()
        ranking = api_rank(sharded, method, execution=policy, **params)
        results["%s_sharded_seconds" % name] = round(time.perf_counter() - start, 4)
        iterations = ranking.diagnostics.get("iterations")
        results["%s_iterations" % name] = (
            int(iterations) if iterations is not None else None
        )
        start = time.perf_counter()
        reference = single[name].rank(response)
        results["%s_single_seconds" % name] = round(time.perf_counter() - start, 4)
        identical = bool(np.array_equal(ranking.scores, reference.scores))
        results["%s_bit_identical" % name] = identical
        assert identical, "%s sharded scores diverged from single-process" % name

    # Rank cache: the second rank() of unchanged data must be served in
    # O(nnz) hash time, >=100x faster than computing.  The cache key is
    # backend-independent, so the warm hit serves any execution policy.
    cache = RankCache()
    start = time.perf_counter()
    api_rank(sharded, "HnD", execution=policy, cache=cache, random_state=0)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    api_rank(sharded, "HnD", execution=policy, cache=cache, random_state=0)
    warm = time.perf_counter() - start
    results["cache_cold_seconds"] = round(cold, 4)
    results["cache_warm_seconds"] = round(warm, 6)
    results["cache_speedup"] = round(cold / max(warm, 1e-9), 1)
    results["cache_stats"] = cache.stats()

    results["peak_rss_mb"] = round(_peak_rss_mb(), 1)
    return results


def _print_sharded(results: Dict[str, object]) -> None:
    backend = results.get("backend", "threads")
    print("sharded-engine scenario (%s backend)"
          % ("process-pool" if backend == "processes" else "thread"))
    print("  crowd:   %dx%d @ %.2f%% density -> %s answers, %d shards (%s workers)" % (
        results["num_users"], results["num_items"], 100 * float(results["density"]),
        format(results["num_answers"], ","), results["num_shards"],
        results["max_workers"],
    ))
    print("  out-of-core ingest (NPZ stream, %d-row chunks): %.3f s (%.1f MB archive)"
          % (results["chunk_size"], results["stream_ingest_seconds"],
             results["npz_bytes"] / 1e6))
    print("  split into user-range shards:                   %.3f s" % results["split_seconds"])
    for name in ("HnD-Power", "Dawid-Skene", "MajorityVote"):
        print("  %-14s sharded %8.3f s | single %8.3f s | bit-identical: %s" % (
            name,
            results["%s_sharded_seconds" % name],
            results["%s_single_seconds" % name],
            results["%s_bit_identical" % name],
        ))
    print("  rank cache: cold %.3f s -> warm hit %.5f s (%.0fx speedup)" % (
        results["cache_cold_seconds"], results["cache_warm_seconds"],
        results["cache_speedup"],
    ))
    print("  peak RSS: %.0f MB (%.0f MB before ingest)" % (
        results["peak_rss_mb"], results["rss_before_mb"],
    ))
    print()


def _print_sparse(results: Dict[str, object]) -> None:
    print("large-sparse scenario (triples-native ingestion)")
    print("  crowd:         %dx%d @ %.2f%% density -> %s answers" % (
        results["num_users"], results["num_items"],
        100 * float(results["density"]), format(results["num_answers"], ","),
    ))
    print("  dense (m, n) choice matrix would need: %.0f MB (never allocated)"
          % results["dense_equivalent_mb"])
    print("  ingest (from_triples + compile):       %.3f s" % results["ingest_seconds"])
    for name in ("HnD-Power", "Dawid-Skene"):
        print("  %-14s %8.3f s  (%s iterations)" % (
            name, results["%s_seconds" % name], results["%s_iterations" % name],
        ))
    print("  peak RSS: %.0f MB (%.0f MB before ingest)" % (
        results["peak_rss_mb"], results["rss_before_mb"],
    ))
    print()


def _load() -> Dict[str, object]:
    if RESULTS_PATH.exists():
        return json.loads(RESULTS_PATH.read_text())
    return {}


def _save(payload: Dict[str, object]) -> None:
    # allow_nan=False keeps the committed file strict JSON (bare NaN tokens
    # break jq / JSON.parse); non-finite values must be mapped to None first.
    RESULTS_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
    )


def _environment() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
    }


def _print_table(title: str, results: Dict[str, Dict[str, object]],
                 baseline: Dict[str, Dict[str, object]] | None = None) -> None:
    print(title)
    header = "%-14s %10s %10s %10s %8s" % ("ranker", "size", "cold (s)", "warm (s)", "vs seed")
    print(header)
    print("-" * len(header))
    for name, row in results.items():
        speedup = ""
        if baseline and name in baseline:
            ref = float(baseline[name]["cold_seconds"])
            now = float(row["cold_seconds"])
            if now > 0:
                speedup = "%.1fx" % (ref / now)
        print("%-14s %10s %10.4f %10.4f %8s" % (
            name,
            "%dx%d" % (row["num_users"], row["num_items"]),
            row["cold_seconds"],
            row["warm_seconds"],
            speedup,
        ))
    print()


def _check_regression(fresh: Dict[str, Dict[str, object]],
                      committed: Dict[str, Dict[str, object]],
                      machine_scale: float = 1.0) -> List[str]:
    """Compare fresh against committed timings with a 2x tolerance.

    ``machine_scale`` is the calibration ratio (fresh anchor / committed
    anchor): the committed reference is multiplied by it, so the comparison
    is between *ratios to the frozen anchor workload* rather than absolute
    machine-specific seconds.  ``1.0`` preserves the uncalibrated gate.
    """
    failures = []
    for name, row in fresh.items():
        if name not in committed:
            continue
        reference = float(committed[name]["cold_seconds"]) * machine_scale
        measured = float(row["cold_seconds"])
        if (
            measured > REGRESSION_THRESHOLD * reference
            and measured - reference > REGRESSION_FLOOR_SECONDS * max(machine_scale, 1.0)
        ):
            failures.append(
                "%s regressed: %.4fs vs committed %.4fs (scale %.2f, >%.1fx)"
                % (name, measured, reference, machine_scale, REGRESSION_THRESHOLD)
            )
    return failures


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the small profile and gate against committed numbers")
    parser.add_argument("--update", action="store_true",
                        help="run full+smoke profiles and rewrite the 'current' section")
    parser.add_argument("--capture-seed", action="store_true",
                        help="record the 'seed' baseline section (run on seed code)")
    parser.add_argument("--sparse", action="store_true",
                        help="run the 200k x 5k triples-native scenario")
    parser.add_argument("--update-sparse", action="store_true",
                        help="run the sparse scenario and rewrite BENCH_PR2.json")
    parser.add_argument("--sharded", action="store_true",
                        help="run the 200k x 5k sharded-engine scenario")
    parser.add_argument("--update-sharded", action="store_true",
                        help="run the sharded scenario and rewrite BENCH_PR3.json")
    parser.add_argument("--backend", default="threads",
                        choices=["threads", "processes"],
                        help="with --sharded/--update-sharded: shard dispatch "
                             "backend (processes = the PR 4 process pool; "
                             "committed as BENCH_PR4.json)")
    parser.add_argument("--calibrate", action="store_true",
                        help="with --smoke: normalize out machine speed by "
                             "re-timing the frozen reference anchor")
    parser.add_argument("--repeats", type=int, default=3, help="repeats per ranker")
    args = parser.parse_args(argv)

    standalone = (
        args.sparse or args.update_sparse or args.sharded or args.update_sharded
    )
    if standalone and (args.smoke or args.update or args.capture_seed):
        parser.error(
            "--sparse/--update-sparse/--sharded/--update-sharded run a "
            "standalone scenario and cannot be combined with "
            "--smoke/--update/--capture-seed"
        )
    if args.calibrate and not args.smoke:
        parser.error("--calibrate only applies to --smoke")
    if args.backend != "threads" and not (args.sharded or args.update_sharded):
        parser.error("--backend only applies to --sharded/--update-sharded")

    if args.sharded or args.update_sharded:
        sharded_results = _run_sharded(backend=args.backend)
        _print_sharded(sharded_results)
        if sharded_results["cache_speedup"] < CACHE_SPEEDUP_FLOOR:
            print(
                "FAIL: rank-cache warm-hit speedup %.0fx is below the "
                "required %.0fx" % (
                    sharded_results["cache_speedup"], CACHE_SPEEDUP_FLOOR,
                )
            )
            return 1
        if args.update_sharded:
            backend_note = (
                "dispatched over the PR 4 ProcessPoolExecutor backend "
                "(worker-resident shard slices, shared-memory vectors, "
                "via repro.api.rank with ExecutionPolicy)"
                if args.backend == "processes"
                else "dispatched over the in-process thread backend"
            )
            payload = {
                "environment": _environment(),
                "protocol": {
                    "description": (
                        "single run; the PR 2 crowd (unique flat keys, seed "
                        "7) is saved to NPZ, streamed back through the "
                        "chunked out-of-core readers, split into user-range "
                        "shards, and ranked with the shard-parallel kernels "
                        "%s (scores asserted bit-identical to the "
                        "single-process rankers at full scale); the rank "
                        "cache is timed cold (miss) vs warm (hit) on "
                        "repeated rank() of unchanged data; peak RSS via "
                        "getrusage(RUSAGE_SELF).ru_maxrss" % backend_note
                    ),
                },
                "sharded_engine": sharded_results,
            }
            target = (
                PROCESS_RESULTS_PATH if args.backend == "processes"
                else SHARDED_RESULTS_PATH
            )
            target.write_text(
                json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
            )
            print("wrote", target)
        return 0

    if args.sparse or args.update_sparse:
        sparse_results = _run_sparse()
        _print_sparse(sparse_results)
        if args.update_sparse:
            payload = {
                "environment": _environment(),
                "protocol": {
                    "description": (
                        "single run; triples generated deterministically "
                        "(unique flat keys, seed 7), ingested via "
                        "ResponseMatrix.from_triples; peak RSS via "
                        "getrusage(RUSAGE_SELF).ru_maxrss; the dense (m, n) "
                        "choice matrix is never allocated"
                    ),
                },
                "large_sparse": sparse_results,
            }
            SPARSE_RESULTS_PATH.write_text(
                json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
            )
            print("wrote", SPARSE_RESULTS_PATH)
        return 0

    payload = _load()
    payload.setdefault("protocol", {
        "model": "grm",
        "num_options": 3,
        "random_state": 7,
        "description": (
            "median of N repeats; cold = fresh ResponseMatrix per call "
            "(construction + derived-form builds included), warm = one matrix "
            "instance reused across calls"
        ),
    })
    payload["protocol"]["num_repeats"] = args.repeats

    if args.capture_seed:
        payload["environment_seed"] = _environment()
        payload["seed"] = {
            "full": _run(smoke=False, num_repeats=args.repeats),
            "smoke": _run(smoke=True, num_repeats=args.repeats),
        }
        _save(payload)
        _print_table("seed / full profile", payload["seed"]["full"])
        _print_table("seed / smoke profile", payload["seed"]["smoke"])
        return 0

    if args.update:
        payload["environment"] = _environment()
        current = {
            "full": _run(smoke=False, num_repeats=args.repeats),
            "smoke": _run(smoke=True, num_repeats=args.repeats),
        }
        payload["current"] = current
        payload["calibration"] = _time_calibration_anchor(args.repeats)
        seed = payload.get("seed", {})
        payload["speedup_vs_seed"] = {
            profile: {
                name: round(
                    float(seed[profile][name]["cold_seconds"])
                    / max(float(row["cold_seconds"]), 1e-9),
                    2,
                )
                for name, row in current[profile].items()
                if name in seed.get(profile, {})
            }
            for profile in current
        }
        _save(payload)
        _print_table("current / full profile", current["full"],
                     seed.get("full"))
        _print_table("current / smoke profile", current["smoke"],
                     seed.get("smoke"))
        return 0

    if args.smoke:
        machine_scale = 1.0
        if args.calibrate:
            committed_anchor = payload.get("calibration", {})
            if not committed_anchor:
                print(
                    "FAIL: no committed calibration anchor in %s "
                    "(run --update on a known-good checkout first)" % RESULTS_PATH
                )
                return 1
            fresh_anchor = _time_calibration_anchor(args.repeats)
            machine_scale = float(fresh_anchor["cold_seconds"]) / float(
                committed_anchor["cold_seconds"]
            )
            # Calibration exists so a *slower* runner cannot false-fail;
            # on a faster runner keep the committed reference (scale 1.0)
            # rather than proportionally tightening the gate — measured
            # times shrink with the machine anyway, and an unlucky fast
            # anchor sample must not manufacture regressions.
            machine_scale = max(machine_scale, 1.0)
            print(
                "calibration anchor (%s at %dx%d): %.4fs here vs %.4fs "
                "committed -> machine scale %.2fx"
                % (
                    committed_anchor.get("ranker", "?"),
                    int(committed_anchor["num_users"]),
                    int(committed_anchor["num_items"]),
                    float(fresh_anchor["cold_seconds"]),
                    float(committed_anchor["cold_seconds"]),
                    machine_scale,
                )
            )
        fresh = _run(smoke=True, num_repeats=args.repeats)
        committed = payload.get("current", {}).get("smoke", {})
        _print_table("smoke profile", fresh, payload.get("seed", {}).get("smoke"))
        # A gate with nothing to compare against must fail loudly, not pass
        # vacuously: a deleted baseline file or renamed ranker would
        # otherwise silently disable regression detection.
        if not committed:
            print(
                "FAIL: no committed current.smoke baseline in %s "
                "(run --update on a known-good checkout first)" % RESULTS_PATH
            )
            return 1
        missing = sorted(set(fresh) - set(committed))
        if missing:
            print(
                "FAIL: ranker(s) %s missing from the committed baseline; "
                "rerun --update to re-baseline" % ", ".join(missing)
            )
            return 1
        dropped = sorted(set(committed) - set(fresh))
        if dropped:
            print(
                "FAIL: committed baseline ranker(s) %s no longer measured; "
                "a removed or renamed spec silently shrinks regression "
                "coverage — rerun --update to re-baseline" % ", ".join(dropped)
            )
            return 1
        failures = _check_regression(fresh, committed, machine_scale)
        if failures:
            for failure in failures:
                print("FAIL:", failure)
            return 1
        print(
            "smoke gate passed: no ranker regressed >%.1fx (machine scale %.2f)"
            % (REGRESSION_THRESHOLD, machine_scale)
        )
        return 0

    fresh = _run(smoke=False, num_repeats=args.repeats)
    _print_table("full profile", fresh, payload.get("seed", {}).get("full"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
