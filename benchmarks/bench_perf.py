"""Perf-regression benchmark harness (PR 1).

Times every ranker in the library on fixed, deterministic synthetic sizes —
driven through :func:`repro.evaluation.timing.benchmark_rankers` — and keeps
the trajectory file ``benchmarks/BENCH_PR1.json`` that later PRs are
measured against.

Usage::

    python benchmarks/bench_perf.py                 # full profile, print table
    python benchmarks/bench_perf.py --update        # full+smoke, rewrite "current"
    python benchmarks/bench_perf.py --capture-seed  # record the "seed" baseline
    python benchmarks/bench_perf.py --smoke         # <60 s regression gate:
                                                    # fails (exit 1) when any
                                                    # ranker is >2x slower than
                                                    # the committed numbers

The JSON file holds two sections: ``seed`` (timings captured on the seed
implementation, before the fused-kernel layer of PR 1) and ``current``
(timings of the code as committed), plus the cold-path speedup of current
over seed.  ``--smoke`` compares a fresh run against ``current.smoke`` with
a 2x tolerance and a small absolute floor so sub-millisecond jitter never
trips the gate.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np
import scipy

from repro.c1p.abh import ABHDirect, ABHPower
from repro.core.hitsndiffs import HNDDeflation, HNDDirect, HNDPower
from repro.evaluation.timing import PerfSpec, benchmark_rankers
from repro.truth_discovery.dawid_skene import DawidSkeneRanker
from repro.truth_discovery.glad import GLADRanker
from repro.truth_discovery.hits import HITSRanker
from repro.truth_discovery.investment import InvestmentRanker, PooledInvestmentRanker
from repro.truth_discovery.majority import MajorityVoteRanker
from repro.truth_discovery.truthfinder import TruthFinderRanker

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_PR1.json"

#: Regression gate: fail when current/committed > threshold and the
#: absolute slowdown exceeds the floor (guards against timer jitter on
#: the fastest rankers).
REGRESSION_THRESHOLD = 2.0
REGRESSION_FLOOR_SECONDS = 0.005


def _profile(smoke: bool) -> List[PerfSpec]:
    """The fixed ranker line-up; smoke sizes finish in well under 60 s."""

    def size(full_m: int, full_n: int, smoke_m: int, smoke_n: int):
        return (smoke_m, smoke_n) if smoke else (full_m, full_n)

    specs = [
        PerfSpec("HnD-Power", HNDPower(random_state=0), *size(5000, 200, 1000, 100)),
        PerfSpec("HnD-Deflation", HNDDeflation(random_state=0), *size(1000, 100, 300, 60)),
        PerfSpec("HnD-Direct", HNDDirect(), *size(1000, 100, 300, 60)),
        PerfSpec("ABH-Power", ABHPower(random_state=0), *size(2000, 200, 500, 100)),
        PerfSpec("ABH-Direct", ABHDirect(), *size(1000, 100, 300, 60)),
        PerfSpec("Dawid-Skene", DawidSkeneRanker(), *size(500, 200, 200, 80)),
        PerfSpec("GLAD", GLADRanker(), *size(500, 200, 150, 60)),
        PerfSpec("HITS", HITSRanker(), *size(5000, 200, 1000, 100)),
        PerfSpec("TruthFinder", TruthFinderRanker(), *size(2000, 200, 500, 100)),
        PerfSpec("Invest", InvestmentRanker(), *size(2000, 200, 500, 100)),
        PerfSpec("PooledInv", PooledInvestmentRanker(), *size(2000, 200, 500, 100)),
        PerfSpec("MajorityVote", MajorityVoteRanker(), *size(5000, 200, 1000, 100)),
    ]
    return specs


def _run(smoke: bool, num_repeats: int) -> Dict[str, Dict[str, object]]:
    records = benchmark_rankers(_profile(smoke), num_repeats=num_repeats)
    return {record.name: record.to_dict() for record in records}


def _load() -> Dict[str, object]:
    if RESULTS_PATH.exists():
        return json.loads(RESULTS_PATH.read_text())
    return {}


def _save(payload: Dict[str, object]) -> None:
    # allow_nan=False keeps the committed file strict JSON (bare NaN tokens
    # break jq / JSON.parse); non-finite values must be mapped to None first.
    RESULTS_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
    )


def _environment() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
    }


def _print_table(title: str, results: Dict[str, Dict[str, object]],
                 baseline: Dict[str, Dict[str, object]] | None = None) -> None:
    print(title)
    header = "%-14s %10s %10s %10s %8s" % ("ranker", "size", "cold (s)", "warm (s)", "vs seed")
    print(header)
    print("-" * len(header))
    for name, row in results.items():
        speedup = ""
        if baseline and name in baseline:
            ref = float(baseline[name]["cold_seconds"])
            now = float(row["cold_seconds"])
            if now > 0:
                speedup = "%.1fx" % (ref / now)
        print("%-14s %10s %10.4f %10.4f %8s" % (
            name,
            "%dx%d" % (row["num_users"], row["num_items"]),
            row["cold_seconds"],
            row["warm_seconds"],
            speedup,
        ))
    print()


def _check_regression(fresh: Dict[str, Dict[str, object]],
                      committed: Dict[str, Dict[str, object]]) -> List[str]:
    failures = []
    for name, row in fresh.items():
        if name not in committed:
            continue
        reference = float(committed[name]["cold_seconds"])
        measured = float(row["cold_seconds"])
        if (
            measured > REGRESSION_THRESHOLD * reference
            and measured - reference > REGRESSION_FLOOR_SECONDS
        ):
            failures.append(
                "%s regressed: %.4fs vs committed %.4fs (>%.1fx)"
                % (name, measured, reference, REGRESSION_THRESHOLD)
            )
    return failures


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the small profile and gate against committed numbers")
    parser.add_argument("--update", action="store_true",
                        help="run full+smoke profiles and rewrite the 'current' section")
    parser.add_argument("--capture-seed", action="store_true",
                        help="record the 'seed' baseline section (run on seed code)")
    parser.add_argument("--repeats", type=int, default=3, help="repeats per ranker")
    args = parser.parse_args(argv)

    payload = _load()
    payload.setdefault("protocol", {
        "model": "grm",
        "num_options": 3,
        "random_state": 7,
        "description": (
            "median of N repeats; cold = fresh ResponseMatrix per call "
            "(construction + derived-form builds included), warm = one matrix "
            "instance reused across calls"
        ),
    })
    payload["protocol"]["num_repeats"] = args.repeats

    if args.capture_seed:
        payload["environment_seed"] = _environment()
        payload["seed"] = {
            "full": _run(smoke=False, num_repeats=args.repeats),
            "smoke": _run(smoke=True, num_repeats=args.repeats),
        }
        _save(payload)
        _print_table("seed / full profile", payload["seed"]["full"])
        _print_table("seed / smoke profile", payload["seed"]["smoke"])
        return 0

    if args.update:
        payload["environment"] = _environment()
        current = {
            "full": _run(smoke=False, num_repeats=args.repeats),
            "smoke": _run(smoke=True, num_repeats=args.repeats),
        }
        payload["current"] = current
        seed = payload.get("seed", {})
        payload["speedup_vs_seed"] = {
            profile: {
                name: round(
                    float(seed[profile][name]["cold_seconds"])
                    / max(float(row["cold_seconds"]), 1e-9),
                    2,
                )
                for name, row in current[profile].items()
                if name in seed.get(profile, {})
            }
            for profile in current
        }
        _save(payload)
        _print_table("current / full profile", current["full"],
                     seed.get("full"))
        _print_table("current / smoke profile", current["smoke"],
                     seed.get("smoke"))
        return 0

    if args.smoke:
        fresh = _run(smoke=True, num_repeats=args.repeats)
        committed = payload.get("current", {}).get("smoke", {})
        _print_table("smoke profile", fresh, payload.get("seed", {}).get("smoke"))
        # A gate with nothing to compare against must fail loudly, not pass
        # vacuously: a deleted baseline file or renamed ranker would
        # otherwise silently disable regression detection.
        if not committed:
            print(
                "FAIL: no committed current.smoke baseline in %s "
                "(run --update on a known-good checkout first)" % RESULTS_PATH
            )
            return 1
        missing = sorted(set(fresh) - set(committed))
        if missing:
            print(
                "FAIL: ranker(s) %s missing from the committed baseline; "
                "rerun --update to re-baseline" % ", ".join(missing)
            )
            return 1
        dropped = sorted(set(committed) - set(fresh))
        if dropped:
            print(
                "FAIL: committed baseline ranker(s) %s no longer measured; "
                "a removed or renamed spec silently shrinks regression "
                "coverage — rerun --update to re-baseline" % ", ".join(dropped)
            )
            return 1
        failures = _check_regression(fresh, committed)
        if failures:
            for failure in failures:
                print("FAIL:", failure)
            return 1
        print("smoke gate passed: no ranker regressed >%.1fx" % REGRESSION_THRESHOLD)
        return 0

    fresh = _run(smoke=False, num_repeats=args.repeats)
    _print_table("full profile", fresh, payload.get("seed", {}).get("full"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
