"""Perf-regression benchmark harness (PR 1; large-sparse scenario PR 2).

Times every ranker in the library on fixed, deterministic synthetic sizes —
driven through :func:`repro.evaluation.timing.benchmark_rankers` — and keeps
the trajectory file ``benchmarks/BENCH_PR1.json`` that later PRs are
measured against.

Usage::

    python benchmarks/bench_perf.py                 # full profile, print table
    python benchmarks/bench_perf.py --update        # full+smoke, rewrite "current"
    python benchmarks/bench_perf.py --capture-seed  # record the "seed" baseline
    python benchmarks/bench_perf.py --smoke         # <60 s regression gate:
                                                    # fails (exit 1) when any
                                                    # ranker is >2x slower than
                                                    # the committed numbers
    python benchmarks/bench_perf.py --sparse        # 200k x 5k triples-native
                                                    # scenario (wall + peak RSS)
    python benchmarks/bench_perf.py --update-sparse # rewrite BENCH_PR2.json

The PR 1 JSON file holds two sections: ``seed`` (timings captured on the
seed implementation, before the fused-kernel layer of PR 1) and ``current``
(timings of the code as committed), plus the cold-path speedup of current
over seed.  ``--smoke`` compares a fresh run against ``current.smoke`` with
a 2x tolerance and a small absolute floor so sub-millisecond jitter never
trips the gate.

``--sparse`` exercises the PR 2 storage model: a 200k-user x 5k-item crowd
at ~0.1% density (1M answers) is ingested through
``ResponseMatrix.from_triples`` and ranked with HnD-Power and Dawid-Skene.
Peak RSS is recorded alongside wall time; the dense choice matrix this
workload *would* have needed (~8 GB) is reported for contrast — the whole
scenario fits in a few hundred MB because no ``(m, n)`` array ever exists.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np
import scipy

from repro.c1p.abh import ABHDirect, ABHPower
from repro.core.hitsndiffs import HNDDeflation, HNDDirect, HNDPower
from repro.core.response import ResponseMatrix
from repro.evaluation.timing import PerfSpec, benchmark_rankers
from repro.truth_discovery.dawid_skene import DawidSkeneRanker
from repro.truth_discovery.glad import GLADRanker
from repro.truth_discovery.hits import HITSRanker
from repro.truth_discovery.investment import InvestmentRanker, PooledInvestmentRanker
from repro.truth_discovery.majority import MajorityVoteRanker
from repro.truth_discovery.truthfinder import TruthFinderRanker

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_PR1.json"
SPARSE_RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_PR2.json"

#: Regression gate: fail when current/committed > threshold and the
#: absolute slowdown exceeds the floor (guards against timer jitter on
#: the fastest rankers).
REGRESSION_THRESHOLD = 2.0
REGRESSION_FLOOR_SECONDS = 0.005


def _profile(smoke: bool) -> List[PerfSpec]:
    """The fixed ranker line-up; smoke sizes finish in well under 60 s."""

    def size(full_m: int, full_n: int, smoke_m: int, smoke_n: int):
        return (smoke_m, smoke_n) if smoke else (full_m, full_n)

    specs = [
        PerfSpec("HnD-Power", HNDPower(random_state=0), *size(5000, 200, 1000, 100)),
        PerfSpec("HnD-Deflation", HNDDeflation(random_state=0), *size(1000, 100, 300, 60)),
        PerfSpec("HnD-Direct", HNDDirect(), *size(1000, 100, 300, 60)),
        PerfSpec("ABH-Power", ABHPower(random_state=0), *size(2000, 200, 500, 100)),
        PerfSpec("ABH-Direct", ABHDirect(), *size(1000, 100, 300, 60)),
        PerfSpec("Dawid-Skene", DawidSkeneRanker(), *size(500, 200, 200, 80)),
        PerfSpec("GLAD", GLADRanker(), *size(500, 200, 150, 60)),
        PerfSpec("HITS", HITSRanker(), *size(5000, 200, 1000, 100)),
        PerfSpec("TruthFinder", TruthFinderRanker(), *size(2000, 200, 500, 100)),
        PerfSpec("Invest", InvestmentRanker(), *size(2000, 200, 500, 100)),
        PerfSpec("PooledInv", PooledInvestmentRanker(), *size(2000, 200, 500, 100)),
        PerfSpec("MajorityVote", MajorityVoteRanker(), *size(5000, 200, 1000, 100)),
    ]
    return specs


def _run(smoke: bool, num_repeats: int) -> Dict[str, Dict[str, object]]:
    records = benchmark_rankers(_profile(smoke), num_repeats=num_repeats)
    return {record.name: record.to_dict() for record in records}


# --------------------------------------------------------------------------- #
# Large-sparse scenario (PR 2): triples-native ingestion at crowd scale
# --------------------------------------------------------------------------- #
def _peak_rss_mb() -> float:
    """Lifetime peak RSS of this process in MB (ru_maxrss is KB on Linux)."""
    import resource  # Unix-only; imported here so the other modes run anywhere

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes there
        peak /= 1024
    return peak / 1024.0


def _sparse_triples(num_users: int, num_items: int, density: float,
                    num_options: int, seed: int):
    """Deterministic random crowd as canonical (already-sorted) triples."""
    rng = np.random.default_rng(seed)
    target = int(num_users * num_items * density)
    # Oversample flat (user, item) keys, unique them (duplicate free, never
    # anywhere near (m * n) memory), then subsample back to the target
    # *randomly* — a sorted-prefix cut would silently empty the top of the
    # user range.
    keys = np.unique(
        rng.integers(0, num_users * num_items, size=int(target * 1.1), dtype=np.int64)
    )
    if keys.size > target:
        keys = np.sort(rng.choice(keys, size=target, replace=False))
    users = keys // num_items
    items = keys % num_items
    options = rng.integers(0, num_options, size=keys.size)
    return users, items, options


def _run_sparse(num_users: int = 200_000, num_items: int = 5_000,
                density: float = 0.001, num_options: int = 4,
                seed: int = 7) -> Dict[str, object]:
    users, items, options = _sparse_triples(
        num_users, num_items, density, num_options, seed
    )
    nnz = int(users.size)
    results: Dict[str, object] = {
        "num_users": num_users,
        "num_items": num_items,
        "density": density,
        "num_options": num_options,
        "num_answers": nnz,
        "dense_equivalent_mb": round(num_users * num_items * 8 / 1024 / 1024, 1),
        "rss_before_mb": round(_peak_rss_mb(), 1),
    }

    start = time.perf_counter()
    response = ResponseMatrix.from_triples(
        users, items, options,
        shape=(num_users, num_items), num_options=num_options,
    )
    response.compiled  # include the kernel-cache build in ingestion cost
    results["ingest_seconds"] = round(time.perf_counter() - start, 4)

    for name, ranker in (
        ("HnD-Power", HNDPower(random_state=0)),
        ("Dawid-Skene", DawidSkeneRanker()),
    ):
        start = time.perf_counter()
        ranking = ranker.rank(response)
        results["%s_seconds" % name] = round(time.perf_counter() - start, 4)
        iterations = ranking.diagnostics.get("iterations")
        results["%s_iterations" % name] = (
            int(iterations) if iterations is not None else None
        )

    results["peak_rss_mb"] = round(_peak_rss_mb(), 1)
    return results


def _print_sparse(results: Dict[str, object]) -> None:
    print("large-sparse scenario (triples-native ingestion)")
    print("  crowd:         %dx%d @ %.2f%% density -> %s answers" % (
        results["num_users"], results["num_items"],
        100 * float(results["density"]), format(results["num_answers"], ","),
    ))
    print("  dense (m, n) choice matrix would need: %.0f MB (never allocated)"
          % results["dense_equivalent_mb"])
    print("  ingest (from_triples + compile):       %.3f s" % results["ingest_seconds"])
    for name in ("HnD-Power", "Dawid-Skene"):
        print("  %-14s %8.3f s  (%s iterations)" % (
            name, results["%s_seconds" % name], results["%s_iterations" % name],
        ))
    print("  peak RSS: %.0f MB (%.0f MB before ingest)" % (
        results["peak_rss_mb"], results["rss_before_mb"],
    ))
    print()


def _load() -> Dict[str, object]:
    if RESULTS_PATH.exists():
        return json.loads(RESULTS_PATH.read_text())
    return {}


def _save(payload: Dict[str, object]) -> None:
    # allow_nan=False keeps the committed file strict JSON (bare NaN tokens
    # break jq / JSON.parse); non-finite values must be mapped to None first.
    RESULTS_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
    )


def _environment() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
    }


def _print_table(title: str, results: Dict[str, Dict[str, object]],
                 baseline: Dict[str, Dict[str, object]] | None = None) -> None:
    print(title)
    header = "%-14s %10s %10s %10s %8s" % ("ranker", "size", "cold (s)", "warm (s)", "vs seed")
    print(header)
    print("-" * len(header))
    for name, row in results.items():
        speedup = ""
        if baseline and name in baseline:
            ref = float(baseline[name]["cold_seconds"])
            now = float(row["cold_seconds"])
            if now > 0:
                speedup = "%.1fx" % (ref / now)
        print("%-14s %10s %10.4f %10.4f %8s" % (
            name,
            "%dx%d" % (row["num_users"], row["num_items"]),
            row["cold_seconds"],
            row["warm_seconds"],
            speedup,
        ))
    print()


def _check_regression(fresh: Dict[str, Dict[str, object]],
                      committed: Dict[str, Dict[str, object]]) -> List[str]:
    failures = []
    for name, row in fresh.items():
        if name not in committed:
            continue
        reference = float(committed[name]["cold_seconds"])
        measured = float(row["cold_seconds"])
        if (
            measured > REGRESSION_THRESHOLD * reference
            and measured - reference > REGRESSION_FLOOR_SECONDS
        ):
            failures.append(
                "%s regressed: %.4fs vs committed %.4fs (>%.1fx)"
                % (name, measured, reference, REGRESSION_THRESHOLD)
            )
    return failures


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the small profile and gate against committed numbers")
    parser.add_argument("--update", action="store_true",
                        help="run full+smoke profiles and rewrite the 'current' section")
    parser.add_argument("--capture-seed", action="store_true",
                        help="record the 'seed' baseline section (run on seed code)")
    parser.add_argument("--sparse", action="store_true",
                        help="run the 200k x 5k triples-native scenario")
    parser.add_argument("--update-sparse", action="store_true",
                        help="run the sparse scenario and rewrite BENCH_PR2.json")
    parser.add_argument("--repeats", type=int, default=3, help="repeats per ranker")
    args = parser.parse_args(argv)

    if (args.sparse or args.update_sparse) and (
        args.smoke or args.update or args.capture_seed
    ):
        parser.error(
            "--sparse/--update-sparse run a standalone scenario and cannot "
            "be combined with --smoke/--update/--capture-seed"
        )

    if args.sparse or args.update_sparse:
        sparse_results = _run_sparse()
        _print_sparse(sparse_results)
        if args.update_sparse:
            payload = {
                "environment": _environment(),
                "protocol": {
                    "description": (
                        "single run; triples generated deterministically "
                        "(unique flat keys, seed 7), ingested via "
                        "ResponseMatrix.from_triples; peak RSS via "
                        "getrusage(RUSAGE_SELF).ru_maxrss; the dense (m, n) "
                        "choice matrix is never allocated"
                    ),
                },
                "large_sparse": sparse_results,
            }
            SPARSE_RESULTS_PATH.write_text(
                json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
            )
            print("wrote", SPARSE_RESULTS_PATH)
        return 0

    payload = _load()
    payload.setdefault("protocol", {
        "model": "grm",
        "num_options": 3,
        "random_state": 7,
        "description": (
            "median of N repeats; cold = fresh ResponseMatrix per call "
            "(construction + derived-form builds included), warm = one matrix "
            "instance reused across calls"
        ),
    })
    payload["protocol"]["num_repeats"] = args.repeats

    if args.capture_seed:
        payload["environment_seed"] = _environment()
        payload["seed"] = {
            "full": _run(smoke=False, num_repeats=args.repeats),
            "smoke": _run(smoke=True, num_repeats=args.repeats),
        }
        _save(payload)
        _print_table("seed / full profile", payload["seed"]["full"])
        _print_table("seed / smoke profile", payload["seed"]["smoke"])
        return 0

    if args.update:
        payload["environment"] = _environment()
        current = {
            "full": _run(smoke=False, num_repeats=args.repeats),
            "smoke": _run(smoke=True, num_repeats=args.repeats),
        }
        payload["current"] = current
        seed = payload.get("seed", {})
        payload["speedup_vs_seed"] = {
            profile: {
                name: round(
                    float(seed[profile][name]["cold_seconds"])
                    / max(float(row["cold_seconds"]), 1e-9),
                    2,
                )
                for name, row in current[profile].items()
                if name in seed.get(profile, {})
            }
            for profile in current
        }
        _save(payload)
        _print_table("current / full profile", current["full"],
                     seed.get("full"))
        _print_table("current / smoke profile", current["smoke"],
                     seed.get("smoke"))
        return 0

    if args.smoke:
        fresh = _run(smoke=True, num_repeats=args.repeats)
        committed = payload.get("current", {}).get("smoke", {})
        _print_table("smoke profile", fresh, payload.get("seed", {}).get("smoke"))
        # A gate with nothing to compare against must fail loudly, not pass
        # vacuously: a deleted baseline file or renamed ranker would
        # otherwise silently disable regression detection.
        if not committed:
            print(
                "FAIL: no committed current.smoke baseline in %s "
                "(run --update on a known-good checkout first)" % RESULTS_PATH
            )
            return 1
        missing = sorted(set(fresh) - set(committed))
        if missing:
            print(
                "FAIL: ranker(s) %s missing from the committed baseline; "
                "rerun --update to re-baseline" % ", ".join(missing)
            )
            return 1
        dropped = sorted(set(committed) - set(fresh))
        if dropped:
            print(
                "FAIL: committed baseline ranker(s) %s no longer measured; "
                "a removed or renamed spec silently shrinks regression "
                "coverage — rerun --update to re-baseline" % ", ".join(dropped)
            )
            return 1
        failures = _check_regression(fresh, committed)
        if failures:
            for failure in failures:
                print("FAIL:", failure)
            return 1
        print("smoke gate passed: no ranker regressed >%.1fx" % REGRESSION_THRESHOLD)
        return 0

    fresh = _run(smoke=False, num_repeats=args.repeats)
    _print_table("full profile", fresh, payload.get("seed", {}).get("full"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
