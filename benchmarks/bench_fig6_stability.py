"""Figure 6: stability of HND vs ABH as question discrimination varies.

Section IV-D fixes a structured GRM design (100 users, 100 items, equally
spaced abilities/difficulties, common discrimination per item) and varies the
discrimination over {1, 2, 4, 8, 16}.  Three panels:

* 6a — variance of the eigenvector each method ranks by (HnD's is smaller),
* 6b — normalized user displacement across repeated samples (HnD's is lower),
* 6c — accuracy of the user ranking (HnD's is higher).
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.stability import stability_experiment

DISCRIMINATIONS = [1.0, 2.0, 4.0, 8.0, 16.0]
SEED = 99


def test_fig6_stability(benchmark, table_printer):
    result = benchmark.pedantic(
        stability_experiment,
        args=(DISCRIMINATIONS,),
        kwargs={
            "num_users": 100,
            "num_items": 100,
            "num_repeats": 3,
            "random_state": SEED,
        },
        rounds=1,
        iterations=1,
    )
    table_printer(
        "Figure 6: stability of HnD vs ABH",
        ("discrimination", "method", "eigvec variance", "displacement", "accuracy"),
        result.to_rows(),
    )
    # 6a: the eigenvector HnD ranks by has (weakly) smaller variance on average.
    assert np.mean(result.eigenvector_variance["HnD"]) <= np.mean(
        result.eigenvector_variance["ABH"]
    ) + 1e-6
    # 6b/6c: averaged over the sweep, HnD is at least as stable and accurate.
    assert np.mean(result.displacement["HnD"]) <= np.mean(result.displacement["ABH"]) + 0.05
    assert np.mean(result.accuracy["HnD"]) >= np.mean(result.accuracy["ABH"]) - 0.02
    # At high discrimination (near the ideal case) both methods are accurate.
    assert result.accuracy["HnD"][-1] > 0.9
