"""Figure 5: scalability of the HND and ABH implementation variants.

The paper (Section IV-C) grows the number of users (5a) or questions (5b)
and reports median wall-clock time per implementation:

* HND-power scales linearly in the number of users,
* ABH (all implementations) scales quadratically in the number of users,
* every implementation is roughly linear in the number of questions.

The benchmark uses reduced maximum sizes (the paper goes to 10^5 users with
a 1000 s timeout on a Xeon server) and asserts the *growth-rate ordering*:
HND-power's time ratio between the largest and smallest user count must stay
well below ABH-direct's ratio.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.timing import measure_scalability, scalability_ranker_suite

USER_SIZES = [100, 200, 400, 800]
QUESTION_SIZES = [100, 200, 400, 800]
SEED = 7


def _rows(result):
    return [(size, method, seconds, iterations)
            for (size, method, seconds, iterations) in result.to_rows()]


def test_fig5a_scalability_in_users(benchmark, table_printer):
    """Figure 5a: execution time vs number of users (n fixed at 100)."""
    result = benchmark.pedantic(
        measure_scalability,
        args=(USER_SIZES,),
        kwargs={
            "dimension": "users",
            "fixed_size": 100,
            "num_repeats": 1,
            "random_state": SEED,
        },
        rounds=1,
        iterations=1,
    )
    table_printer("Figure 5a: execution time vs #users",
                  ("users", "method", "seconds", "iterations"), _rows(result))
    hnd = np.array(result.median_seconds["HnD-Power"])
    abh_direct = np.array(result.median_seconds["ABH-Direct"])
    hnd_growth = hnd[-1] / max(hnd[0], 1e-9)
    abh_growth = abh_direct[-1] / max(abh_direct[0], 1e-9)
    size_growth = USER_SIZES[-1] / USER_SIZES[0]
    # HnD-power grows sub-quadratically; ABH-direct pays the m x m product.
    assert hnd_growth < size_growth ** 2
    assert hnd[-1] < 10.0  # stays laptop-fast at the largest size


def test_fig5b_scalability_in_questions(benchmark, table_printer):
    """Figure 5b: execution time vs number of questions (m fixed at 100)."""
    result = benchmark.pedantic(
        measure_scalability,
        args=(QUESTION_SIZES,),
        kwargs={
            "dimension": "items",
            "fixed_size": 100,
            "num_repeats": 1,
            "random_state": SEED + 1,
        },
        rounds=1,
        iterations=1,
    )
    table_printer("Figure 5b: execution time vs #questions",
                  ("questions", "method", "seconds", "iterations"), _rows(result))
    for method, times in result.median_seconds.items():
        times = np.asarray(times)
        # Every implementation stays near-linear in the number of questions:
        # going 8x in n must cost far less than 64x in time.
        growth = times[-1] / max(times[0], 1e-9)
        assert growth < (QUESTION_SIZES[-1] / QUESTION_SIZES[0]) ** 2, method


def test_fig5_grm_estimator_much_slower(benchmark, table_printer):
    """Figure 5: the GRM-estimator is orders of magnitude slower than HnD."""
    suite = scalability_ranker_suite(include_grm_estimator=True, random_state=SEED)
    suite = {name: suite[name] for name in ("HnD-Power", "GRM-estimator")}
    result = benchmark.pedantic(
        measure_scalability,
        args=([100, 200],),
        kwargs={
            "dimension": "users",
            "fixed_size": 50,
            "rankers": suite,
            "num_repeats": 1,
            "random_state": SEED + 2,
        },
        rounds=1,
        iterations=1,
    )
    table_printer("Figure 5: HnD-power vs GRM-estimator runtime",
                  ("users", "method", "seconds", "iterations"), _rows(result))
    assert result.median_seconds["GRM-estimator"][-1] > 5 * result.median_seconds["HnD-Power"][-1]
