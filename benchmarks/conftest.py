"""Shared helpers for the benchmark harness.

Every module in this directory regenerates one table or figure of the paper
(one ``bench_figN_*.py`` per figure).  Benchmarks run under
``pytest-benchmark`` (``pytest benchmarks/ --benchmark-only``); in addition
to timing, each test prints the rows/series the corresponding figure reports
so the numbers can be compared against the paper (the appended record lives
in ``benchmarks/results/figures.txt``).

Sizes are scaled down from the paper's server-scale sweeps so the whole
harness finishes on a laptop; the *shape* of each result (who wins, by
roughly what factor, where crossovers happen) is what is being reproduced.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import pytest

#: All tables printed by the harness are also appended here, because pytest
#: captures stdout of passing tests; this file is the durable record of the
#: reproduced figures.
RESULTS_FILE = Path(__file__).parent / "results" / "figures.txt"


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Print a paper-style results table and append it to the results file."""
    formatted = [
        [f"{cell:.4f}" if isinstance(cell, float) else str(cell) for cell in row]
        for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["", f"== {title} =="]
    lines.append("  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)))
    for row in formatted:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    text = "\n".join(lines)
    print(text)
    RESULTS_FILE.parent.mkdir(parents=True, exist_ok=True)
    with RESULTS_FILE.open("a", encoding="utf-8") as handle:
        handle.write(text + "\n")


@pytest.fixture
def table_printer():
    """Fixture exposing :func:`print_table` to benchmark tests."""
    return print_table
