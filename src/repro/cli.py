"""Command-line interface that regenerates the paper's experiments.

Usage::

    python -m repro.cli list
    python -m repro.cli fig4 --model samejima --vary num_items --trials 3
    python -m repro.cli fig5 --dimension users --max-size 2000
    python -m repro.cli fig6
    python -m repro.cli fig7
    python -m repro.cli fig12 --students 100
    python -m repro.cli fig13
    python -m repro.cli rank crowd.npz --method HnD --shards 8 --repeat 3
    python -m repro.cli rank crowd.npz --backend processes --shards 8
    python -m repro.cli rank crowd.npz --backend remote \
        --workers 127.0.0.1:9101,127.0.0.1:9102 --shards 8

Each ``figN`` command prints a plain-text table with the same rows/series
the paper reports; the figure-to-command mapping follows the benchmark
scripts in ``benchmarks/`` (one ``bench_figN_*.py`` per reproduced figure).

``rank`` is the serving entry point: it streams a saved matrix (NPZ or
CSV triples) through the chunked readers and ranks it through
:func:`repro.api.rank` — the method name resolves in the ranker registry
and ``--backend``/``--shards``/``--workers`` populate an
:class:`~repro.api.execution.ExecutionPolicy` (``threads`` dispatches the
shard kernels in-process, ``processes`` over a worker pool, ``remote``
over supervised socket workers; all are bit-identical to the fused
kernels).  Repeated calls are served from the hash-keyed
:class:`~repro.engine.cache.RankCache`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.api import REGISTRY, ExecutionPolicy
from repro.api import rank as api_rank
from repro.datasets import dataset_summary_table, list_datasets, load_dataset
from repro.engine import RankCache, load_streaming
from repro.exceptions import EngineError
from repro.evaluation import (
    accuracy_sweep,
    c1p_dataset_factory,
    default_ranker_suite,
    evaluate_rankers,
    irt_dataset_factory,
    measure_scalability,
    stability_experiment,
)
from repro.irt.simulated import (
    generate_american_experience_dataset,
    generate_halfmoon_dataset,
)
from repro.truth_discovery import TrueAnswerRanker


def _print_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Print a fixed-width table without external dependencies."""
    formatted_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers))
    print(line)
    print("-" * len(line))
    for row in formatted_rows:
        print("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)


# --------------------------------------------------------------------------- #
# Sub-commands
# --------------------------------------------------------------------------- #
def command_list(args: argparse.Namespace) -> int:
    print("Registered datasets (simulated stand-ins, shapes from paper Figure 10):")
    _print_table(("dataset", "users", "questions", "options"), dataset_summary_table())
    return 0


def command_fig4(args: argparse.Namespace) -> int:
    if args.vary == "c1p":
        factory = c1p_dataset_factory(num_users=args.users, num_options=args.options)
        values: List[object] = [int(v) for v in (args.values or [25, 50, 100, 200])]
        parameter = "num_items(C1P)"
    else:
        factory = irt_dataset_factory(
            args.model,
            num_users=args.users,
            num_items=args.items,
            num_options=args.options,
            vary=args.vary,
        )
        defaults = {
            "num_items": [25, 50, 100, 200],
            "num_users": [25, 50, 100, 200],
            "num_options": [2, 3, 4, 5, 6],
            "answer_probability": [0.6, 0.7, 0.8, 0.9, 1.0],
        }
        values = args.values or defaults.get(args.vary, [25, 50, 100, 200])
        if args.vary != "answer_probability":
            # Count-valued parameters arrive as floats from argparse.
            values = [int(v) for v in values]
        parameter = args.vary
    sweep = accuracy_sweep(
        parameter,
        values,
        factory,
        include_cheating=args.cheating,
        num_trials=args.trials,
        random_state=args.seed,
    )
    print(f"Accuracy sweep over {parameter} (model={args.model}, trials={args.trials})")
    _print_table((parameter, "method", "mean accuracy", "std"), sweep.to_rows())
    return 0


def command_fig5(args: argparse.Namespace) -> int:
    sizes = args.values or [50, 100, 200, 400, 800]
    sizes = [size for size in sizes if size <= args.max_size]
    result = measure_scalability(
        sizes,
        dimension=args.dimension,
        fixed_size=args.fixed_size,
        num_repeats=args.repeats,
        timeout_seconds=args.timeout,
        random_state=args.seed,
    )
    print(f"Scalability in the number of {args.dimension} (median of {args.repeats} runs)")
    _print_table((args.dimension, "method", "seconds", "iterations"), result.to_rows())
    return 0


def command_fig6(args: argparse.Namespace) -> int:
    result = stability_experiment(
        args.values or [1.0, 2.0, 4.0, 8.0, 16.0],
        num_users=args.users,
        num_items=args.items,
        num_repeats=args.repeats,
        random_state=args.seed,
    )
    print("Stability of HnD vs ABH across question discriminations")
    _print_table(
        ("discrimination", "method", "eigvec variance", "displacement", "accuracy"),
        result.to_rows(),
    )
    return 0


def command_fig7(args: argparse.Namespace) -> int:
    rows = []
    for name in list_datasets():
        dataset = load_dataset(name)
        reference = TrueAnswerRanker(dataset.correct_options).rank(dataset.response)
        suite = default_ranker_suite(random_state=args.seed)
        result = evaluate_rankers(dataset, suite, reference_abilities=reference.scores)
        for method, accuracy in result.accuracies.items():
            rows.append((name, method, 100.0 * accuracy))
    print("Correlation (x100) of user rankings with the True-answer reference ranking")
    _print_table(("dataset", "method", "accuracy x100"), rows)
    return 0


def command_fig12(args: argparse.Namespace) -> int:
    rows = []
    for run in range(args.runs):
        dataset = generate_american_experience_dataset(
            args.students, random_state=None if args.seed is None else args.seed + run
        )
        suite = default_ranker_suite(
            include_cheating=True,
            correct_options=dataset.correct_options,
            random_state=args.seed,
        )
        result = evaluate_rankers(dataset, suite)
        for method, accuracy in result.accuracies.items():
            rows.append((run, method, 100.0 * accuracy))
    print(f"Simulated American Experience test ({args.students} students, {args.runs} runs)")
    _print_table(("run", "method", "accuracy x100"), rows)
    return 0


def command_fig13(args: argparse.Namespace) -> int:
    rows = []
    for run in range(args.runs):
        dataset = generate_halfmoon_dataset(
            args.users, args.items, random_state=None if args.seed is None else args.seed + run
        )
        suite = default_ranker_suite(
            include_cheating=True,
            correct_options=dataset.correct_options,
            random_state=args.seed,
        )
        result = evaluate_rankers(dataset, suite)
        for method, accuracy in result.accuracies.items():
            rows.append((run, method, 100.0 * accuracy))
    print(f"Simulated half-moon data ({args.users} users x {args.items} items, {args.runs} runs)")
    _print_table(("run", "method", "accuracy x100"), rows)
    return 0


def _append_random_answers(session, count: int, rng: np.random.Generator) -> int:
    """Append ``count`` random conflict-free answers to a CrowdSession.

    Candidate ``(user, item)`` cells are drawn uniformly and filtered
    against the already-answered cells (a repeated cell with a different
    option would be a *conflicting* answer and raise), so the append
    demonstrates warm-started re-convergence on a valid growing crowd.
    """
    matrix = session.matrix
    num_users, num_items = matrix.num_users, matrix.num_items
    users, items, _ = matrix.triples
    taken = users * num_items + items
    fresh = np.array([], dtype=np.int64)
    for _ in range(16):
        candidates = rng.integers(
            0, num_users * num_items, size=2 * count + 16, dtype=np.int64
        )
        # Accumulate survivors across attempts: on dense crowds any single
        # draw may yield only a handful of free cells.
        fresh = np.union1d(fresh, np.setdiff1d(candidates, taken))
        if fresh.size >= count:
            break
    fresh = rng.permutation(fresh)[:count]
    if fresh.size == 0:
        return 0
    # Draw each option below its own item's option count — items may have
    # heterogeneous counts, and an out-of-range option would be rejected at
    # the next materialization.
    items = fresh % num_items
    options = rng.integers(0, np.asarray(matrix.num_options)[items])
    session.add_answers(fresh // num_items, items, options)
    return int(fresh.size)


def command_rank(args: argparse.Namespace) -> int:
    import time

    from repro.api import CrowdSession
    from repro.api.execution import warm_start_fingerprint

    # Everything resolves through repro.api: the registry supplies the
    # method (with a did-you-mean hint on typos), the ExecutionPolicy
    # separates it from how it runs ("auto" resolution included — the CLI
    # does not re-implement it).  All validation runs before the input is
    # loaded, so a bad invocation fails fast.
    try:
        spec = REGISTRY.get(args.method)
    except KeyError as error:
        print("error:", error.args[0], file=sys.stderr)
        return 2
    if spec.supervised:
        print(
            "error: method %r is a supervised (cheating) baseline and "
            "needs ground truth; serving methods: %s"
            % (spec.name, ", ".join(sorted(REGISTRY.names(supervised=False)))),
            file=sys.stderr,
        )
        return 2
    params = {}
    if args.random_state is not None:
        # Parse and target-check the flag whenever it is given: a typo'd
        # value or a method that takes no random_state must not be
        # silently dropped.
        if not spec.takes("random_state"):
            print(
                "error: method %r takes no random_state parameter; "
                "--random-state has no effect on it" % spec.name,
                file=sys.stderr,
            )
            return 2
        if args.random_state.lower() in ("none", "null"):
            params["random_state"] = None
        else:
            try:
                params["random_state"] = int(args.random_state)
            except ValueError:
                print(
                    "error: --random-state takes an integer seed or 'none', "
                    "got %r" % args.random_state,
                    file=sys.stderr,
                )
                return 2
    elif spec.takes("random_state"):
        params["random_state"] = args.seed
    if args.acceleration is not None:
        # Same contract as --random-state: an accelerator flag aimed at a
        # method without the parameter is a user error, not a no-op.
        if not spec.takes("acceleration"):
            print(
                "error: method %r takes no acceleration parameter; "
                "--acceleration has no effect on it" % spec.name,
                file=sys.stderr,
            )
            return 2
        params["acceleration"] = (
            None if args.acceleration == "none" else args.acceleration
        )
    if args.iteration_batch < 1:
        print(
            "error: --iteration-batch must be >= 1, got %d"
            % args.iteration_batch,
            file=sys.stderr,
        )
        return 2
    if args.iteration_batch > 1 and not spec.takes("acceleration"):
        # Batching amortizes per-iteration dispatch round-trips; only the
        # power-iteration methods (HnD) have an iteration loop to batch.
        print(
            "error: method %r has no batched-iteration path; "
            "--iteration-batch only applies to power-iteration methods"
            % spec.name,
            file=sys.stderr,
        )
        return 2
    if args.warm_start:
        # Fail fast, before the input loads, with the library's own
        # eligibility rules (one shared source of truth and error prose).
        try:
            warm_start_fingerprint(args.method, params)
        except ValueError as error:
            print("error:", error, file=sys.stderr)
            return 2
    # --workers doubles as a count (threads/processes) and a host:port
    # list (remote); anything containing ':' or ',' is an address list.
    worker_count = None
    remote_workers = None
    if args.workers is not None:
        if ":" in args.workers or "," in args.workers:
            remote_workers = [part.strip() for part in args.workers.split(",")
                              if part.strip()]
        else:
            try:
                worker_count = int(args.workers)
            except ValueError:
                print(
                    "error: --workers takes a count or a comma-separated "
                    "host:port list, got %r" % args.workers,
                    file=sys.stderr,
                )
                return 2
    store = None
    if args.store is not None:
        from repro.store import SnapshotStore

        store = SnapshotStore(args.store)
    cache = RankCache(maxsize=args.cache_size, store=store)
    try:
        policy = ExecutionPolicy(
            backend=args.backend,
            shards=args.shards,
            workers=worker_count,
            remote_workers=remote_workers,
            iteration_batch=args.iteration_batch,
            cache=cache,
        )
    except ValueError as error:
        # e.g. an explicit --backend fused combined with --shards > 1, or
        # --backend remote without worker addresses: surface the conflict
        # instead of silently dropping the flag.
        print("error:", error, file=sys.stderr)
        return 2

    start = time.perf_counter()
    response = load_streaming(args.input, chunk_size=args.chunk_size)
    load_seconds = time.perf_counter() - start
    print(
        "loaded %s: %d users x %d items, %s answers (%.3f s, %d-row chunks)"
        % (
            args.input,
            response.num_users,
            response.num_items,
            format(response.num_answers, ","),
            load_seconds,
            args.chunk_size,
        )
    )
    if policy.resolved_backend == "remote":
        worker_desc = ",".join(
            "%s:%d" % address for address in policy.remote_workers
        )
    else:
        worker_desc = policy.workers
    print(
        "method %s via backend %s (%d shard(s), workers=%s%s)"
        % (spec.name, policy.resolved_backend, policy.shards, worker_desc,
           ", warm-started" if args.warm_start else "")
    )

    # Incremental serving runs through a CrowdSession: --append grows the
    # crowd between calls and --warm-start resumes each solve from the
    # cached solver state instead of recomputing cold.
    session = None
    if args.warm_start or args.append:
        session = CrowdSession.from_matrix(response, execution=policy,
                                           cache=cache)
        rng = np.random.default_rng(args.seed)

    ranking = None
    try:
        for call in range(max(args.repeat, 1)):
            if session is not None and call and args.append:
                appended = _append_random_answers(session, args.append, rng)
                print("appended %d answers (crowd now %s answers)"
                      % (appended, format(session.num_answers, ",")))
            before = cache.stats()
            start = time.perf_counter()
            if session is not None:
                ranking = session.rank(args.method,
                                       warm_start=args.warm_start, **params)
            else:
                ranking = api_rank(response, args.method, execution=policy,
                                   **params)
            elapsed = time.perf_counter() - start
            after = cache.stats()
            if after["hits"] > before["hits"]:
                served = "cache hit"
            elif after["disk_hits"] > before["disk_hits"]:
                served = "snapshot hit"
            else:
                served = "computed"
            detail = ""
            if served == "computed":
                iterations = ranking.diagnostics.get("iterations")
                warm_mode = ranking.diagnostics.get("warm_start")
                if iterations is not None:
                    detail = ", %s iterations" % iterations
                if warm_mode is not None and args.warm_start:
                    detail += ", warm_start=%s" % warm_mode
            print("rank() call %d: %.4f s (%s%s)"
                  % (call + 1, elapsed, served, detail))
    except EngineError as error:
        # An execution failure (remote workers lost with local fallback
        # disabled, a dead process pool): typed, actionable, no traceback.
        print("error:", error, file=sys.stderr)
        return 3
    except ValueError as error:
        # e.g. a sharded backend for a method without shard kernels
        # (GLAD --shards 4): a clean error, not a traceback.
        print("error:", error, file=sys.stderr)
        return 2
    print("cache stats:", cache.stats())
    if store is not None:
        # Drain the write-behind queue so the next invocation (or a
        # `store ls`) sees everything this run computed.
        store.close()
        print("store stats:", {
            key: value for key, value in store.stats().items()
            if key in ("snapshots", "bytes", "writes", "hits", "misses")
        })

    top = ranking.top_users(args.top)
    rows = [
        (int(rank + 1), int(user), float(ranking.scores[user]))
        for rank, user in enumerate(top)
    ]
    print("top %d users by %s score:" % (len(rows), ranking.method))
    _print_table(("rank", "user", "score"), rows)
    return 0


def command_serve(args: argparse.Namespace) -> int:
    """Host named crowds behind the ``repro.serve`` front end.

    All validation happens before the socket binds, so a bad invocation
    exits 2 with prose instead of a traceback; once bound, a single
    ``READY host=... port=...`` line goes to stdout (the remote worker's
    convention — harnesses and CI parse it to learn the ephemeral port).
    """
    import asyncio

    from repro.serve import CrowdServer, ServeConfig

    if args.shards < 1:
        print("error: --shards must be >= 1, got %d" % args.shards,
              file=sys.stderr)
        return 2
    if args.cache_size is not None and args.cache_size < 1:
        print("error: --cache-size must be >= 1, got %d" % args.cache_size,
              file=sys.stderr)
        return 2
    if args.burst is not None and args.burst < 1:
        print("error: --burst must be >= 1 token, got %s" % args.burst,
              file=sys.stderr)
        return 2
    if args.max_sessions < 1:
        print("error: --max-sessions must be >= 1, got %d" % args.max_sessions,
              file=sys.stderr)
        return 2
    try:
        policy = ExecutionPolicy(backend=args.backend, shards=args.shards)
    except ValueError as error:
        print("error:", error, file=sys.stderr)
        return 2
    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            max_queue=args.max_queue,
            solver_threads=args.solver_threads,
            rate=args.rate,
            burst=args.burst,
            max_pending_answers=args.max_pending_answers,
            max_sessions=args.max_sessions,
            execution=policy,
            cache_size=args.cache_size,
            store_dir=args.store,
        )
    except ValueError as error:
        print("error:", error, file=sys.stderr)
        return 2

    async def _run() -> None:
        server = CrowdServer(config=config)
        await server.start()
        print("READY host=%s port=%d" % (server.host, server.port),
              flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.aclose()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    return 0


def _parse_scales(text: str) -> List[tuple]:
    scales = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        users_text, _, items_text = chunk.partition("x")
        if not items_text:
            raise ValueError(
                "scale %r is not of the form MxN (e.g. 240x60)" % chunk
            )
        scales.append((int(users_text), int(items_text)))
    if not scales:
        raise ValueError("--scales needs at least one MxN entry")
    return scales


def command_screen(args: argparse.Namespace) -> int:
    """Mass-screen registry methods across stress scenarios, resumably.

    Every cell of the ``scenario x scale x method`` grid checkpoints to
    its own artifact under ``--out`` the moment it finishes, so a killed
    sweep rerun with the same arguments resumes — recomputing only the
    missing cells and reproducing the finished ones byte-for-byte.  With
    ``--baseline`` the run is gated against committed per-cell accuracy
    floors (exit 1 on any breach); ``--update-screening`` refreezes the
    floors from this run instead.
    """
    from repro.scenarios import SCENARIOS
    from repro.screening import (
        GATE_METRIC,
        ScreeningPlan,
        check_baseline,
        load_baseline,
        run_screening,
        write_baseline,
    )

    def _split(text: str) -> tuple:
        return tuple(chunk.strip() for chunk in text.split(",") if chunk.strip())

    try:
        scenarios = _split(args.scenarios) or SCENARIOS.names()
        plan = ScreeningPlan(
            scenarios=scenarios,
            methods=_split(args.methods),
            scales=tuple(_parse_scales(args.scales)),
            trials=args.trials,
            seed=args.seed,
        )
    except (KeyError, ValueError) as error:
        # KeyError carries the registry's did-you-mean hint in its args.
        message = error.args[0] if error.args else error
        print("error:", message, file=sys.stderr)
        return 2
    if args.update_screening and not args.baseline:
        print("error: --update-screening needs --baseline PATH to write to",
              file=sys.stderr)
        return 2

    def _progress(cell_id: str, state: str) -> None:
        marker = "resumed " if state == "resumed" else "computed"
        print("[%s] %s" % (marker, cell_id), flush=True)

    result = run_screening(plan, args.out, progress=_progress)
    print("%d cells: %d computed, %d resumed -> %s"
          % (len(result.cells), len(result.computed), len(result.resumed),
             args.out))

    rows = []
    for cell_id in sorted(result.cells):
        payload = result.cells[cell_id]
        rows.append((
            payload["scenario"],
            "%dx%d" % (payload["num_users"], payload["num_items"]),
            payload["method"],
            payload["metrics"]["spearman"],
            payload["metrics"]["kendall"],
            payload["metrics"]["pairwise"],
            payload["metrics"]["top_quarter_precision"],
        ))
    _print_table(
        ("scenario", "scale", "method", "spearman", "kendall", "pairwise",
         "top25%"),
        rows,
    )

    if not args.baseline:
        return 0
    if args.update_screening:
        payload = write_baseline(result, plan, args.baseline,
                                 floor_margin=args.floor_margin)
        print("froze %d %s floors (margin %.3f) -> %s"
              % (len(payload["floors"]), payload["metric"],
                 args.floor_margin, args.baseline))
        return 0
    try:
        baseline = load_baseline(args.baseline)
        violations = check_baseline(result, baseline)
    except (OSError, ValueError) as error:
        print("error:", error, file=sys.stderr)
        return 2
    if violations:
        print("accuracy floor violations (%s):" % GATE_METRIC, file=sys.stderr)
        for violation in violations:
            print("  " + violation, file=sys.stderr)
        return 1
    shared = len(set(result.cells) & set(baseline["floors"]))
    print("accuracy floors hold: %d/%d gated cells at or above baseline"
          % (shared, shared))
    return 0


# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the experiments of the HITSnDIFFs paper.",
    )
    parser.add_argument("--seed", type=int, default=7, help="random seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered datasets").set_defaults(
        func=command_list
    )

    fig4 = subparsers.add_parser("fig4", help="accuracy sweeps (Figures 4 and 9)")
    fig4.add_argument("--model", default="samejima", choices=["grm", "bock", "samejima"])
    fig4.add_argument(
        "--vary",
        default="num_items",
        choices=["num_items", "num_users", "num_options", "answer_probability", "c1p"],
    )
    fig4.add_argument("--users", type=int, default=100)
    fig4.add_argument("--items", type=int, default=100)
    fig4.add_argument("--options", type=int, default=3)
    fig4.add_argument("--trials", type=int, default=3)
    fig4.add_argument("--cheating", action="store_true", help="include cheating baselines")
    fig4.add_argument("--values", type=float, nargs="*", default=None)
    fig4.set_defaults(func=command_fig4)

    fig5 = subparsers.add_parser("fig5", help="scalability experiments (Figure 5)")
    fig5.add_argument("--dimension", default="users", choices=["users", "items"])
    fig5.add_argument("--fixed-size", type=int, default=100)
    fig5.add_argument("--max-size", type=int, default=2000)
    fig5.add_argument("--repeats", type=int, default=3)
    fig5.add_argument("--timeout", type=float, default=60.0)
    fig5.add_argument("--values", type=int, nargs="*", default=None)
    fig5.set_defaults(func=command_fig5)

    fig6 = subparsers.add_parser("fig6", help="stability experiments (Figure 6)")
    fig6.add_argument("--users", type=int, default=100)
    fig6.add_argument("--items", type=int, default=100)
    fig6.add_argument("--repeats", type=int, default=3)
    fig6.add_argument("--values", type=float, nargs="*", default=None)
    fig6.set_defaults(func=command_fig6)

    fig7 = subparsers.add_parser("fig7", help="real-dataset experiments (Figures 7 and 11)")
    fig7.set_defaults(func=command_fig7)

    fig12 = subparsers.add_parser("fig12", help="American Experience simulation (Figure 12)")
    fig12.add_argument("--students", type=int, default=100)
    fig12.add_argument("--runs", type=int, default=3)
    fig12.set_defaults(func=command_fig12)

    fig13 = subparsers.add_parser("fig13", help="half-moon simulation (Figure 13)")
    fig13.add_argument("--users", type=int, default=100)
    fig13.add_argument("--items", type=int, default=100)
    fig13.add_argument("--runs", type=int, default=3)
    fig13.set_defaults(func=command_fig13)

    rank = subparsers.add_parser(
        "rank", help="rank users of a saved matrix (sharded engine + rank cache)"
    )
    rank.add_argument("input", help="saved ResponseMatrix (.npz or .csv triples)")
    rank.add_argument(
        "--method",
        default="HnD",
        help="ranking method, resolved through the repro.api registry "
             "(unknown names exit 2 with a did-you-mean hint); one of: %s"
             % ", ".join(sorted(REGISTRY.names(supervised=False))),
    )
    rank.add_argument(
        "--backend",
        default="auto",
        choices=["auto", "fused", "threads", "processes", "remote"],
        help="execution backend (auto = threads when --shards > 1, else "
             "fused single-process kernels); all backends are bit-identical",
    )
    rank.add_argument("--shards", type=int, default=1,
                      help="user-range shards (1 = single-process kernels)")
    rank.add_argument("--workers", default=None,
                      help="shard-dispatch workers: a count (threads for "
                           "--backend threads, processes for --backend "
                           "processes), or a comma-separated host:port list "
                           "for --backend remote (e.g. "
                           "--workers 127.0.0.1:9101,127.0.0.1:9102)")
    rank.add_argument("--repeat", type=int, default=2,
                      help="rank() calls to issue (later calls hit the cache)")
    rank.add_argument("--warm-start", action="store_true",
                      help="serve through a CrowdSession with warm-started "
                           "solvers: after an append, the solve resumes from "
                           "the cached solver state instead of recomputing "
                           "cold (requires a warm-startable method and a "
                           "deterministic configuration; exits 2 otherwise)")
    rank.add_argument("--append", type=int, default=0, metavar="COUNT",
                      help="append COUNT random conflict-free answers before "
                           "each rank() call after the first — pair with "
                           "--warm-start to watch incremental re-convergence")
    rank.add_argument("--random-state", default=None, metavar="SEED",
                      help="override the method's random_state: an integer "
                           "seed or 'none' (nondeterministic; incompatible "
                           "with --warm-start and bypasses the cache); "
                           "defaults to the global --seed")
    rank.add_argument("--iteration-batch", type=int, default=1,
                      metavar="STEPS",
                      help="solver iterations executed per dispatch on the "
                           "processes/remote backends (amortizes the "
                           "round-trip; bit-identical at any batch size); "
                           "only power-iteration methods accept > 1, and "
                           "the fused/threads backends reject it (exit 2)")
    rank.add_argument("--acceleration", default=None,
                      choices=["momentum", "none"],
                      help="power-iteration acceleration for methods that "
                           "take it (HnD): 'momentum' cuts iterations ~30%% "
                           "and falls back to the plain solve if it blows "
                           "up; exits 2 for methods without the parameter")
    rank.add_argument("--top", type=int, default=10,
                      help="how many top-ranked users to print")
    rank.add_argument("--chunk-size", type=int, default=65536,
                      help="rows per streamed ingestion chunk")
    rank.add_argument("--cache-size", type=int, default=16,
                      help="rank-cache capacity (LRU entries)")
    rank.add_argument("--store", default=None, metavar="DIR",
                      help="durable snapshot store directory: computed "
                           "rankings persist there and later invocations on "
                           "unchanged data are served as ~ms snapshot hits "
                           "(bit-identical scores) instead of re-solving")
    rank.set_defaults(func=command_rank)

    serve = subparsers.add_parser(
        "serve",
        help="host named crowds over TCP (the repro.serve front end)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 picks an ephemeral port; the bound "
                            "port is printed on the READY line)")
    serve.add_argument("--backend", default="auto",
                       choices=["auto", "fused", "threads", "processes"],
                       help="default execution backend for hosted crowds "
                            "(remote workers are not routable from inside "
                            "the server; run them behind the rank command)")
    serve.add_argument("--shards", type=int, default=1,
                       help="user-range shards for the default backend")
    serve.add_argument("--max-queue", type=int, default=32,
                       help="solves admitted at once; past it, rank requests "
                            "get a typed 'overloaded' rejection (never a "
                            "silent queue)")
    serve.add_argument("--solver-threads", type=int, default=4,
                       help="worker threads executing solves off the event "
                            "loop")
    serve.add_argument("--rate", type=float, default=0.0,
                       help="per-connection rate limit in requests/s "
                            "(0 disables; excess requests get a typed "
                            "'rate_limited' rejection with retry_after)")
    serve.add_argument("--burst", type=float, default=None,
                       help="token-bucket burst capacity (defaults to one "
                            "second of --rate)")
    serve.add_argument("--max-sessions", type=int, default=64,
                       help="resident-crowd LRU bound (creating past it "
                            "evicts the least recently used crowd)")
    serve.add_argument("--max-pending-answers", type=int, default=1_000_000,
                       help="per-crowd bound on buffered (unflushed) answers")
    serve.add_argument("--cache-size", type=int, default=None,
                       help="per-crowd rank-cache capacity (LRU entries)")
    serve.add_argument("--store", default=None, metavar="DIR",
                       help="durable store directory: crowds and rankings "
                            "persist there, and a restarted server "
                            "re-registers its crowds and serves the first "
                            "rank warm (see the README's durable-state "
                            "walkthrough)")
    serve.set_defaults(func=command_serve)

    screen = subparsers.add_parser(
        "screen",
        help="mass-screen ranking methods across stress scenarios "
             "(resumable; checkpoints one artifact per cell)",
    )
    screen.add_argument("--out", default="benchmarks/screening", metavar="DIR",
                        help="output directory; per-cell artifacts land in "
                             "DIR/cells and a rerun with the same arguments "
                             "resumes from them")
    screen.add_argument("--scenarios", default="",
                        help="comma-separated scenario names (default: every "
                             "registered scenario; see repro.scenarios)")
    screen.add_argument("--methods",
                        default="MajorityVote,HnD,HITS,Invest,Dawid-Skene",
                        help="comma-separated ranker registry names "
                             "(supervised methods are rejected)")
    screen.add_argument("--scales", default="240x60",
                        help="comma-separated crowd sizes as MxN user/item "
                             "counts, e.g. 240x60,1200x150")
    screen.add_argument("--trials", type=int, default=1,
                        help="independently seeded crowds per cell "
                             "(metrics are averaged)")
    screen.add_argument("--baseline", default=None, metavar="PATH",
                        help="gate the run against this floors file "
                             "(exit 1 on any breach); cells absent from "
                             "the baseline are reported but not gated")
    screen.add_argument("--update-screening", action="store_true",
                        help="refreeze the --baseline floors from this "
                             "run instead of gating against them")
    screen.add_argument("--floor-margin", type=float, default=0.05,
                        help="slack subtracted from observed accuracy when "
                             "freezing floors with --update-screening")
    screen.set_defaults(func=command_screen)

    from repro.store.cli import register_store_parser

    register_store_parser(subparsers)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-experiments`` / ``python -m repro.cli``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
