"""The store's index file: eviction metadata, recoverable from the data.

``index.json`` is how the store answers "what do I hold, how big is it,
what was used when" without decoding every record — the TTL and LRU
eviction policies read it, ``store ls``/``stats`` print it, and CI uploads
it as an artifact.  It is deliberately **derived state**: every fact in it
can be rebuilt by scanning the record files themselves, so a torn or
corrupt index (a crash between the data rename and the index rewrite is
expected, not exceptional) costs one rebuild scan, never data.

Writes go through the same atomic temp-then-:func:`os.replace` discipline
as the records, so a reader never observes a half-written index.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import Dict, Optional

logger = logging.getLogger("repro.store")

INDEX_VERSION = 1


class StoreIndex:
    """In-memory image of ``index.json``; the store mutates and saves it.

    ``snapshots`` maps record key -> ``{content_hash, fingerprint, method,
    bytes, created, used}``; ``crowds`` maps crowd name -> ``{file,
    content_hash, bytes, saved, num_users, num_answers}``.
    """

    def __init__(
        self,
        snapshots: Optional[Dict[str, Dict[str, object]]] = None,
        crowds: Optional[Dict[str, Dict[str, object]]] = None,
    ) -> None:
        self.snapshots = dict(snapshots or {})
        self.crowds = dict(crowds or {})

    @classmethod
    def load(cls, path: Path) -> Optional["StoreIndex"]:
        """Parse ``index.json``, or ``None`` when it needs a rebuild.

        Missing, unparseable, wrong-versioned, or structurally wrong all
        answer ``None`` — the caller rebuilds from the record files, which
        are the source of truth.
        """
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as err:
            logger.warning("store index %s unreadable (%s); rebuilding",
                           path, err)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("v") != INDEX_VERSION
            or not isinstance(payload.get("snapshots"), dict)
            or not isinstance(payload.get("crowds"), dict)
        ):
            logger.warning("store index %s malformed; rebuilding", path)
            return None
        return cls(payload["snapshots"], payload["crowds"])

    def save(self, path: Path) -> None:
        """Atomically rewrite ``index.json`` (temp + :func:`os.replace`)."""
        payload = {
            "v": INDEX_VERSION,
            "snapshots": self.snapshots,
            "crowds": self.crowds,
        }
        tmp = path.parent / (".tmp-index-%d" % os.getpid())
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
        os.replace(tmp, path)

    def total_bytes(self) -> int:
        return sum(int(entry.get("bytes", 0)) for entry in self.snapshots.values())
