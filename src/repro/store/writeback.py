"""Write-behind execution: persist off the solve's critical path.

Snapshot and crowd writes are durability, not correctness — the in-memory
answer is already correct, and making the caller wait on ``fsync``-class
I/O would put the disk on the serving latency path.  :class:`WriteBehind`
is the single background worker both :class:`~repro.engine.cache.RankCache`
and :class:`~repro.api.session.CrowdSession` hand their persistence jobs
to: FIFO (a crowd save enqueued before its snapshot lands first), lazy
(no thread until the first job), and failure-isolated (a failing write is
logged and counted; it can cost durability, never a request).

``flush()`` is the test-and-shutdown barrier: it enqueues a marker and
waits for it, so everything submitted before the call has run.
"""

from __future__ import annotations

import logging
import queue
import threading
from typing import Callable, Optional

logger = logging.getLogger("repro.store")

_STOP = object()


class WriteBehind:
    """A lazily-started single worker thread draining a FIFO job queue."""

    def __init__(self, name: str = "repro-store-writeback") -> None:
        self._name = name
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._closed = False
        self.submitted = 0
        self.failures = 0

    def submit(self, job: Callable[[], object]) -> bool:
        """Enqueue ``job``; returns ``False`` after :meth:`close`."""
        with self._lock:
            if self._closed:
                return False
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name=self._name, daemon=True
                )
                self._thread.start()
            self.submitted += 1
        self._queue.put(job)
        return True

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Block until every job submitted before this call has run."""
        with self._lock:
            # After close() the queue is already drained and the worker is
            # gone — a marker would wait forever.  Flush-after-close is a
            # satisfied barrier, not an error (aclose paths may run twice).
            if self._thread is None or self._closed:
                return True
        marker = threading.Event()
        self._queue.put(marker.set)
        return marker.wait(timeout)

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain outstanding jobs, then stop the worker (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
        if thread is None:
            return
        self._queue.put(_STOP)
        thread.join(timeout)

    def _run(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP:
                return
            try:
                job()
            except Exception:
                self.failures += 1
                logger.warning("write-behind job failed", exc_info=True)
