"""Implementations of the ``repro.cli store`` maintenance subcommands.

Registered by :mod:`repro.cli`; the logic lives here so the operator
surface evolves with the store format.  Every subcommand opens the store
read-mostly (``ls``/``stats`` never touch record files; ``verify``
decodes everything; ``gc`` is the only one that deletes) and exits 0 on
success, 1 when ``verify`` found corruption, 2 on a bad invocation —
the same exit-code discipline as the ``rank``/``serve`` commands.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from repro.store.snapshot import SnapshotStore


def _open_store(args: argparse.Namespace) -> Optional[SnapshotStore]:
    root = Path(args.store_dir)
    if not root.exists():
        print("error: store directory %s does not exist" % root,
              file=sys.stderr)
        return None
    # Maintenance opens with no bounds: inspecting a store must never
    # itself evict from it.
    return SnapshotStore(root, max_bytes=None, max_records=None)


def _format_age(seconds: float) -> str:
    if seconds < 120:
        return "%.0fs" % seconds
    if seconds < 7200:
        return "%.0fm" % (seconds / 60)
    if seconds < 172800:
        return "%.1fh" % (seconds / 3600)
    return "%.1fd" % (seconds / 86400)


def command_store_ls(args: argparse.Namespace) -> int:
    import time

    store = _open_store(args)
    if store is None:
        return 2
    listing = store.ls()
    now = time.time()
    print("snapshots (%d):" % len(listing["snapshots"]))
    for entry in listing["snapshots"]:
        print("  %s  %-14s %9s B  used %s ago" % (
            entry["key"][:24], entry.get("method", "?"),
            format(int(entry.get("bytes", 0)), ","),
            _format_age(max(0.0, now - float(entry.get("used", now)))),
        ))
    print("crowds (%d):" % len(listing["crowds"]))
    for entry in listing["crowds"]:
        print("  %-24s %9s answers  %9s B  saved %s ago" % (
            entry["name"],
            format(int(entry.get("num_answers", 0)), ","),
            format(int(entry.get("bytes", 0)), ","),
            _format_age(max(0.0, now - float(entry.get("saved", now)))),
        ))
    return 0


def command_store_stats(args: argparse.Namespace) -> int:
    store = _open_store(args)
    if store is None:
        return 2
    for key, value in store.stats().items():
        print("%-16s %s" % (key, value))
    return 0


def command_store_gc(args: argparse.Namespace) -> int:
    if args.ttl is not None and args.ttl <= 0:
        print("error: --ttl must be > 0 seconds", file=sys.stderr)
        return 2
    if args.max_bytes is not None and args.max_bytes < 1:
        print("error: --max-bytes must be >= 1", file=sys.stderr)
        return 2
    if args.max_records is not None and args.max_records < 1:
        print("error: --max-records must be >= 1", file=sys.stderr)
        return 2
    store = _open_store(args)
    if store is None:
        return 2
    report = store.gc(ttl=args.ttl, max_bytes=args.max_bytes,
                      max_records=args.max_records)
    print("gc: expired %d, evicted %d; %d snapshot(s), %s B remain" % (
        report["expired"], report["evicted"], report["remaining"],
        format(report["bytes"], ","),
    ))
    return 0


def command_store_verify(args: argparse.Namespace) -> int:
    store = _open_store(args)
    if store is None:
        return 2
    report = store.verify()
    bad = 0
    for entry in report:
        if entry["status"] == "ok":
            print("ok       %s" % entry["file"])
        else:
            bad += 1
            print("CORRUPT  %s (%s)" % (entry["file"], entry.get("error")))
    print("verified %d file(s), %d corrupt" % (len(report), bad))
    return 1 if bad else 0


def register_store_parser(subparsers) -> None:
    """Attach the ``store`` subcommand tree to the main CLI parser."""
    store = subparsers.add_parser(
        "store",
        help="inspect and maintain a durable snapshot store directory",
    )
    nested = store.add_subparsers(dest="store_command", required=True)

    ls = nested.add_parser("ls", help="list stored snapshots and crowds")
    ls.add_argument("store_dir", help="store directory (as given to --store)")
    ls.set_defaults(func=command_store_ls)

    stats = nested.add_parser("stats", help="store counters and sizes")
    stats.add_argument("store_dir")
    stats.set_defaults(func=command_store_stats)

    gc = nested.add_parser(
        "gc", help="apply TTL/size bounds now (deletes expired + LRU excess)"
    )
    gc.add_argument("store_dir")
    gc.add_argument("--ttl", type=float, default=None, metavar="SECONDS",
                    help="expire snapshots older than SECONDS")
    gc.add_argument("--max-bytes", type=int, default=None, metavar="N",
                    help="LRU-evict snapshots past N total bytes")
    gc.add_argument("--max-records", type=int, default=None, metavar="N",
                    help="LRU-evict snapshots past N records")
    gc.set_defaults(func=command_store_gc)

    verify = nested.add_parser(
        "verify",
        help="decode every record; exit 1 if any fails validation",
    )
    verify.add_argument("store_dir")
    verify.set_defaults(func=command_store_verify)
