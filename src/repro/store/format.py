"""Snapshot record format: schema-versioned, checksummed, pickle-free.

One snapshot file holds one ranking result — scores, the producing
:class:`~repro.core.solver_state.SolverState`, and enough identity to
validate it on the way back in.  The layout follows the remote wire
protocol's discipline (``engine/remote/protocol.py``): a fixed prefix, a
whole-payload checksum, a JSON header describing raw array buffers, and
**nothing pickled** — a corrupted or adversarial file can at worst produce
a typed :class:`~repro.exceptions.SnapshotError`, never code execution and
never a silently wrong array.

File layout (all integers little-endian)::

    MAGIC (4)  b"RSN1"
    schema  u32          format version; unknown values fail typed
    digest  (16)         BLAKE2b-16 of the payload (bit flips fail typed)
    length  u64          payload byte count (truncation fails typed)
    payload              header_len u32 | header JSON | array buffers

The header records the snapshot's identity — the producing matrix's
``content_hash``, the :func:`fingerprint_digest` of the ranker
fingerprint, and the lineage hashes — so a record renamed onto the wrong
key (a *foreign* record) is detected by content, not trusted by filename.

The schema version is *before* the checksum deliberately: a reader must be
able to say "written by a newer repro" without knowing how the newer
format computes its digest.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.ranking import AbilityRanking
from repro.core.solver_state import SolverState
from repro.exceptions import SnapshotError

MAGIC = b"RSN1"
SCHEMA_VERSION = 1
DIGEST_SIZE = 16
#: MAGIC + schema + digest + payload length.
PREFIX_SIZE = len(MAGIC) + 4 + DIGEST_SIZE + 8
#: Snapshots hold score vectors and solver iterates — far below this; a
#: larger declared length is corruption, not data.
MAX_PAYLOAD = 2 << 30

_PREFIX = struct.Struct("<4sI%dsQ" % DIGEST_SIZE)

# Diagnostics values that survive the JSON round trip faithfully.
_JSON_SCALARS = (bool, int, float, str, type(None))


def _payload_digest(payload: bytes) -> bytes:
    return hashlib.blake2b(payload, digest_size=DIGEST_SIZE).digest()


# --------------------------------------------------------------------------- #
# Fingerprint digest
# --------------------------------------------------------------------------- #
def fingerprint_digest(fingerprint: Tuple) -> str:
    """Stable hex digest of a ranker fingerprint, for disk keys.

    :func:`~repro.engine.cache.ranker_fingerprint` returns a nested tuple
    of primitives — hashable in-process, but ``hash()`` is salted per
    process.  This walks the same structure through a canonical, type-
    tagged, length-prefixed encoding into BLAKE2b-16, so equal
    fingerprints digest equal across processes and machines (the same
    property :meth:`ResponseMatrix.content_hash` gives the data half of
    the key).
    """
    digest = hashlib.blake2b(digest_size=DIGEST_SIZE)
    _feed_token(digest, fingerprint)
    return digest.hexdigest()


def _feed_token(digest, value: object) -> None:
    if value is None:
        digest.update(b"N")
    elif isinstance(value, bool):
        digest.update(b"B1" if value else b"B0")
    elif isinstance(value, int):
        data = str(value).encode("ascii")
        digest.update(b"I%d:" % len(data))
        digest.update(data)
    elif isinstance(value, float):
        digest.update(b"F")
        digest.update(struct.pack("<d", value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        digest.update(b"S%d:" % len(data))
        digest.update(data)
    elif isinstance(value, bytes):
        digest.update(b"Y%d:" % len(value))
        digest.update(value)
    elif isinstance(value, tuple):
        digest.update(b"T%d:" % len(value))
        for item in value:
            _feed_token(digest, item)
    else:
        # ranker_fingerprint only emits the shapes above; anything else
        # means the fingerprint contract changed under us.
        raise SnapshotError(
            "cannot digest fingerprint token of type %s"
            % type(value).__name__
        )


def snapshot_key(content_hash: str, fingerprint: Tuple) -> str:
    """The store key for a ``(matrix content hash, fingerprint)`` pair."""
    return "%s-%s" % (content_hash, fingerprint_digest(fingerprint))


# --------------------------------------------------------------------------- #
# Records
# --------------------------------------------------------------------------- #
@dataclass
class SnapshotRecord:
    """One decoded snapshot: the ranking plus its recorded identity."""

    content_hash: str
    fingerprint: str  # fingerprint_digest hex
    method: str
    scores: np.ndarray
    state: Optional[SolverState] = None
    lineage: Tuple[str, ...] = ()
    created: float = 0.0
    diagnostics: Dict[str, object] = field(default_factory=dict)

    def to_ranking(self) -> AbilityRanking:
        """Reconstruct the stored :class:`AbilityRanking`.

        Scores are the exact stored float64 bytes — a snapshot hit is
        bit-identical to the ranking that produced it.  The diagnostics
        gain ``snapshot_hit=True`` so callers (and the restart-warm
        benchmark) can tell a disk hit from a fresh solve.
        """
        diagnostics = dict(self.diagnostics)
        diagnostics["snapshot_hit"] = True
        return AbilityRanking(
            scores=self.scores,
            method=self.method,
            diagnostics=diagnostics,
            state=self.state,
        )


def _clean_diagnostics(diagnostics: Dict[str, object]) -> Dict[str, object]:
    """The JSON-faithful subset of a ranking's diagnostics."""
    cleaned: Dict[str, object] = {}
    for key, value in diagnostics.items():
        if isinstance(value, np.generic):
            value = value.item()
        if isinstance(value, _JSON_SCALARS):
            cleaned[str(key)] = value
    return cleaned


def encode_snapshot(
    ranking: AbilityRanking,
    *,
    content_hash: str,
    fingerprint: Tuple,
    lineage: Sequence[str] = (),
    created: float = 0.0,
) -> bytes:
    """Serialize one ranking into the snapshot file format."""
    arrays: Dict[str, np.ndarray] = {
        "scores": np.ascontiguousarray(ranking.scores, dtype=np.float64)
    }
    state = getattr(ranking, "state", None)
    state_meta = None
    if state is not None:
        state_meta = {
            "method": state.method,
            "iterations": int(state.iterations),
            "residual": float(state.residual),
            "vectors": sorted(state.vectors),
        }
        for name in state_meta["vectors"]:
            arrays["state.%s" % name] = np.ascontiguousarray(
                state.vectors[name], dtype=np.float64
            )
    descriptors = [
        [name, array.dtype.str, list(array.shape)]
        for name, array in arrays.items()
    ]
    header = {
        "kind": "snapshot",
        "method": ranking.method,
        "content_hash": content_hash,
        "fingerprint": fingerprint_digest(fingerprint),
        "lineage": sorted(set(lineage) | {content_hash}),
        "created": float(created),
        "diagnostics": _clean_diagnostics(ranking.diagnostics),
        "state": state_meta,
        "arrays": descriptors,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    chunks = [struct.pack("<I", len(header_bytes)), header_bytes]
    chunks.extend(array.tobytes() for array in arrays.values())
    payload = b"".join(chunks)
    prefix = _PREFIX.pack(
        MAGIC, SCHEMA_VERSION, _payload_digest(payload), len(payload)
    )
    return prefix + payload


def decode_snapshot(data: bytes, *, path: object = None) -> SnapshotRecord:
    """Parse + validate snapshot bytes; any defect is a :class:`SnapshotError`.

    The validation order gives each corruption class its own message:
    zero-length/short prefix, bad magic, unknown schema version, declared
    length vs. actual bytes (truncation), checksum (bit flips), then the
    header and array structure.
    """
    if len(data) < PREFIX_SIZE:
        raise SnapshotError(
            "snapshot file is %d bytes, shorter than the %d-byte prefix"
            % (len(data), PREFIX_SIZE),
            path=path,
        )
    magic, schema, digest, length = _PREFIX.unpack_from(data)
    if magic != MAGIC:
        raise SnapshotError(
            "bad snapshot magic %r (expected %r)" % (magic, MAGIC), path=path
        )
    if schema != SCHEMA_VERSION:
        raise SnapshotError(
            "unknown snapshot schema version %d (this build reads %d)"
            % (schema, SCHEMA_VERSION),
            path=path,
        )
    if length > MAX_PAYLOAD:
        raise SnapshotError(
            "declared payload of %d bytes exceeds the %d-byte cap"
            % (length, MAX_PAYLOAD),
            path=path,
        )
    payload = data[PREFIX_SIZE:]
    if len(payload) != length:
        raise SnapshotError(
            "truncated snapshot: payload is %d bytes, header declares %d"
            % (len(payload), length),
            path=path,
        )
    if _payload_digest(payload) != digest:
        raise SnapshotError("snapshot checksum mismatch", path=path)
    try:
        (header_len,) = struct.unpack_from("<I", payload)
        header = json.loads(payload[4:4 + header_len].decode("utf-8"))
    except (struct.error, UnicodeDecodeError, json.JSONDecodeError) as err:
        raise SnapshotError(
            "malformed snapshot header: %s" % err, path=path
        ) from err
    if not isinstance(header, dict) or header.get("kind") != "snapshot":
        raise SnapshotError("snapshot header is not a snapshot", path=path)

    arrays: Dict[str, np.ndarray] = {}
    offset = 4 + header_len
    try:
        descriptors = [
            (str(name), str(dtype), tuple(int(d) for d in shape))
            for name, dtype, shape in header["arrays"]
        ]
        content_hash = str(header["content_hash"])
        fingerprint = str(header["fingerprint"])
        method = str(header["method"])
        lineage = tuple(str(h) for h in header.get("lineage", ()))
        created = float(header.get("created", 0.0))
        diagnostics = dict(header.get("diagnostics") or {})
        state_meta = header.get("state")
    except (KeyError, TypeError, ValueError) as err:
        raise SnapshotError(
            "malformed snapshot header fields: %s" % err, path=path
        ) from err
    for name, dtype_str, shape in descriptors:
        try:
            dtype = np.dtype(dtype_str)
        except TypeError as err:
            raise SnapshotError(
                "array %r has invalid dtype %r" % (name, dtype_str), path=path
            ) from err
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        nbytes = count * dtype.itemsize
        if offset + nbytes > len(payload):
            raise SnapshotError(
                "array %r extends past the payload (corrupt descriptor)"
                % name,
                path=path,
            )
        arrays[name] = np.frombuffer(
            payload, dtype=dtype, count=count, offset=offset
        ).reshape(shape).copy()
        offset += nbytes
    if offset != len(payload):
        raise SnapshotError(
            "%d trailing bytes after the last array" % (len(payload) - offset),
            path=path,
        )
    if "scores" not in arrays:
        raise SnapshotError("snapshot carries no scores array", path=path)

    state = None
    if state_meta is not None:
        try:
            vectors = {
                str(name): arrays["state.%s" % name]
                for name in state_meta["vectors"]
            }
            state = SolverState(
                method=str(state_meta["method"]),
                vectors=vectors,
                iterations=int(state_meta["iterations"]),
                residual=float(state_meta["residual"]),
            )
        except (KeyError, TypeError, ValueError) as err:
            raise SnapshotError(
                "malformed solver state: %s" % err, path=path
            ) from err
    return SnapshotRecord(
        content_hash=content_hash,
        fingerprint=fingerprint,
        method=method,
        scores=arrays["scores"],
        state=state,
        lineage=lineage,
        created=created,
        diagnostics=diagnostics,
    )
