"""``SnapshotStore``: the disk tier behind caches, sessions, and servers.

A store is one directory::

    <root>/
      index.json          eviction metadata (derived, rebuildable)
      snapshots/          <content_hash>-<fingerprint_digest>.snap records
      crowds/             <slug>.npz crowd triples + <slug>.json sidecars

Records are content-addressed: the key is ``(matrix content hash, ranker
fingerprint digest)``, the same pair the in-memory
:class:`~repro.engine.cache.RankCache` keys on, so "is this exact answer
already on disk" is one ``O(nnz)`` hash plus a file read — and a hit
returns the **exact stored scores** (bit-identity is untouched by the
durable tier).

Durability discipline, in one sentence each:

* **Atomic writes** — every file (record, crowd NPZ, sidecar, index) is
  written to a ``.tmp-*`` name in its final directory and
  :func:`os.replace`'d into place, so a reader sees the old state or the
  new state, never a torn file; a kill mid-write leaves only a temp file,
  reaped on the next open.
* **Checksums** — records carry a BLAKE2b payload digest (see
  :mod:`repro.store.format`); crowd NPZs are validated by re-hashing the
  loaded matrix against the sidecar's recorded content hash.
* **Typed, contained failure** — every load-path defect (truncated,
  bit-flipped, zero-length, unknown schema version, foreign record)
  becomes a :class:`~repro.exceptions.SnapshotError` *internally*, is
  logged and counted, removes the bad file, and surfaces to the caller as
  a plain miss: the stack above falls back cold, never hangs, never
  serves a wrong answer.
* **Bounded** — ``gc()`` (and every write) enforces a TTL and a
  size/count LRU bound over the snapshot records via the index file.

The store is thread-safe behind one lock but **single-writer by design**:
one serving process owns a store directory at a time (the temp-file
reaping on open assumes no concurrent writer), matching how
``repro.cli serve --store`` deploys it.
"""

from __future__ import annotations

import hashlib
import logging
import os
import re
import threading
import time
from pathlib import Path
from typing import AbstractSet, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.ranking import AbilityRanking
from repro.core.response import ResponseMatrix
from repro.core.solver_state import SolverState
from repro.exceptions import SnapshotError
from repro.store import format as record_format
from repro.store.format import SnapshotRecord, fingerprint_digest
from repro.store.index import StoreIndex
from repro.store.writeback import WriteBehind

logger = logging.getLogger("repro.store")

SNAPSHOT_SUFFIX = ".snap"
_TMP_PREFIX = ".tmp-"

#: Default LRU bound on the snapshot records (crowd NPZs are explicit
#: state — created by name, removed by ``drop`` — and are not evicted).
DEFAULT_MAX_BYTES = 2 << 30


def _crowd_slug(name: str) -> str:
    """Filesystem-safe, collision-free file stem for a crowd name."""
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", name)[:48].strip("._") or "crowd"
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).hexdigest()
    return "%s-%s" % (safe, digest)


class SnapshotStore:
    """Content-addressed snapshot + crowd persistence over one directory.

    Parameters
    ----------
    root:
        Store directory; created (with parents) if absent.
    max_bytes:
        LRU bound on total snapshot-record bytes (``None`` = unbounded;
        default 2 GiB).  Enforced on every write and by :meth:`gc`.
    max_records:
        LRU bound on the snapshot-record count (``None`` = unbounded).
    ttl:
        Seconds after which a record *expires* (eligible for removal by
        :meth:`gc` and skipped by lookups); ``None`` disables expiry.
    clock:
        Time source (injectable for tests); defaults to :func:`time.time`.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        max_bytes: Optional[int] = DEFAULT_MAX_BYTES,
        max_records: Optional[int] = None,
        ttl: Optional[float] = None,
        clock=time.time,
    ) -> None:
        if max_bytes is not None and int(max_bytes) < 1:
            raise ValueError("max_bytes must be >= 1 or None, got %r"
                             % (max_bytes,))
        if max_records is not None and int(max_records) < 1:
            raise ValueError("max_records must be >= 1 or None, got %r"
                             % (max_records,))
        if ttl is not None and float(ttl) <= 0:
            raise ValueError("ttl must be > 0 seconds or None, got %r"
                             % (ttl,))
        self.root = Path(root)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.max_records = None if max_records is None else int(max_records)
        self.ttl = None if ttl is None else float(ttl)
        self._clock = clock
        self._snapshots_dir = self.root / "snapshots"
        self._crowds_dir = self.root / "crowds"
        self._index_path = self.root / "index.json"
        self._lock = threading.RLock()
        self._writeback = WriteBehind()
        self._tmp_counter = 0
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.evictions = 0
        self.expirations = 0
        self.writes = 0
        self.crowd_saves = 0
        self.crowd_loads = 0

        self._snapshots_dir.mkdir(parents=True, exist_ok=True)
        self._crowds_dir.mkdir(parents=True, exist_ok=True)
        reaped = self._reap_tmp_files()
        if reaped:
            logger.info("reaped %d interrupted temp file(s) under %s",
                        reaped, self.root)
        index = StoreIndex.load(self._index_path)
        self._index = index if index is not None else self._rebuild_index()

    # ------------------------------------------------------------------ #
    # Directory plumbing
    # ------------------------------------------------------------------ #
    def _reap_tmp_files(self) -> int:
        """Remove leftovers of interrupted writes (single-writer contract)."""
        reaped = 0
        for directory in (self.root, self._snapshots_dir, self._crowds_dir):
            for leftover in directory.glob(_TMP_PREFIX + "*"):
                try:
                    leftover.unlink()
                    reaped += 1
                except OSError:  # pragma: no cover - racing cleanup
                    pass
        return reaped

    def _tmp_name(self, directory: Path, suffix: str = "") -> Path:
        with self._lock:
            self._tmp_counter += 1
            counter = self._tmp_counter
        return directory / ("%s%d-%d%s" % (_TMP_PREFIX, os.getpid(), counter,
                                           suffix))

    def _atomic_write(self, path: Path, data: bytes) -> None:
        """Write-to-temp, flush to disk, then :func:`os.replace` into place."""
        tmp = self._tmp_name(path.parent)
        with tmp.open("wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def _snapshot_path(self, key: str) -> Path:
        return self._snapshots_dir / (key + SNAPSHOT_SUFFIX)

    def _rebuild_index(self) -> StoreIndex:
        """Re-derive ``index.json`` by scanning the record files.

        Unreadable records found during the scan are quarantined (deleted
        and counted) — the rebuild leaves a store whose every entry loads.
        """
        index = StoreIndex()
        for path in sorted(self._snapshots_dir.glob("*" + SNAPSHOT_SUFFIX)):
            try:
                record = record_format.decode_snapshot(
                    path.read_bytes(), path=path
                )
            except (SnapshotError, OSError) as err:
                self.corrupt += 1
                logger.warning("dropping unreadable snapshot %s: %s",
                               path, err)
                path.unlink(missing_ok=True)
                continue
            key = "%s-%s" % (record.content_hash, record.fingerprint)
            index.snapshots[key] = {
                "content_hash": record.content_hash,
                "fingerprint": record.fingerprint,
                "method": record.method,
                "bytes": path.stat().st_size,
                "created": record.created,
                "used": record.created,
            }
        for sidecar in sorted(self._crowds_dir.glob("*.json")):
            entry = self._read_sidecar(sidecar)
            if entry is None:
                continue
            npz = self._crowds_dir / str(entry["file"])
            if not npz.exists():
                continue
            index.crowds[str(entry.pop("name"))] = entry
        index.save(self._index_path)
        return index

    @staticmethod
    def _read_sidecar(path: Path) -> Optional[Dict[str, object]]:
        import json

        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(entry, dict) or "name" not in entry \
                or "file" not in entry:
            return None
        return entry

    # ------------------------------------------------------------------ #
    # Snapshot records
    # ------------------------------------------------------------------ #
    def put_snapshot(
        self,
        ranking: AbilityRanking,
        *,
        content_hash: str,
        fingerprint: Optional[Tuple],
        lineage: Sequence[str] = (),
    ) -> Optional[str]:
        """Persist one ranking; returns its key (``None`` if uncacheable).

        Serialization happens outside the store lock; the write is atomic;
        the LRU/TTL bounds are enforced before the index is rewritten, so
        a store never grows past its configured size by more than the one
        record being admitted.
        """
        if fingerprint is None:
            return None
        now = float(self._clock())
        data = record_format.encode_snapshot(
            ranking,
            content_hash=content_hash,
            fingerprint=fingerprint,
            lineage=lineage,
            created=now,
        )
        key = "%s-%s" % (content_hash, fingerprint_digest(fingerprint))
        with self._lock:
            self._atomic_write(self._snapshot_path(key), data)
            self._index.snapshots[key] = {
                "content_hash": content_hash,
                "fingerprint": fingerprint_digest(fingerprint),
                "method": ranking.method,
                "bytes": len(data),
                "created": now,
                "used": now,
            }
            self.writes += 1
            self._enforce_bounds_locked(now, protect=key)
            self._index.save(self._index_path)
        return key

    def get_snapshot(
        self, content_hash: str, fingerprint: Optional[Tuple]
    ) -> Optional[SnapshotRecord]:
        """The stored record for the exact key, or ``None`` (fall back cold).

        Every defect — missing file, truncation, bit flips, an unknown
        schema version, a record whose *recorded* identity does not match
        the requested key (foreign/tampered file) — is logged, counted,
        quarantined, and reported as a miss.  A hit refreshes the
        record's LRU recency.
        """
        if fingerprint is None:
            return None
        key = "%s-%s" % (content_hash, fingerprint_digest(fingerprint))
        record = self._load_record(key)
        if record is None:
            return None
        if record.content_hash != content_hash:
            # The file decodes but records a different identity: foreign.
            self._quarantine(key, "records content hash %s under key %s"
                             % (record.content_hash, key))
            return None
        now = float(self._clock())
        with self._lock:
            self.hits += 1
            entry = self._index.snapshots.get(key)
            if entry is not None:
                entry["used"] = now
                self._index.save(self._index_path)
        return record

    def _load_record(self, key: str) -> Optional[SnapshotRecord]:
        path = self._snapshot_path(key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
                if self._index.snapshots.pop(key, None) is not None:
                    # gc was interrupted between unlink and index rewrite.
                    self._index.save(self._index_path)
            return None
        except OSError as err:
            self._quarantine(key, "unreadable: %s" % err)
            return None
        if self.ttl is not None:
            entry = self._index.snapshots.get(key)
            created = float(entry["created"]) if entry else None
            if created is not None \
                    and float(self._clock()) - created > self.ttl:
                with self._lock:
                    self.misses += 1
                return None
        try:
            return record_format.decode_snapshot(data, path=path)
        except SnapshotError as err:
            self._quarantine(key, str(err))
            return None

    def _quarantine(self, key: str, reason: str) -> None:
        """Drop a record that failed validation; the caller reports a miss."""
        logger.warning("snapshot %s failed validation (%s); falling back "
                       "cold", key, reason)
        with self._lock:
            self.corrupt += 1
            self.misses += 1
            self._snapshot_path(key).unlink(missing_ok=True)
            if self._index.snapshots.pop(key, None) is not None:
                self._index.save(self._index_path)

    def latest_state(
        self,
        fingerprint: Optional[Tuple],
        *,
        hashes: Optional[AbstractSet[str]] = None,
    ) -> Optional[SolverState]:
        """The newest stored solver state under ``fingerprint``.

        The disk half of :meth:`RankCache.latest_state
        <repro.engine.cache.RankCache.latest_state>`: same lineage
        restriction (``hashes`` limits candidates to content hashes the
        calling session itself ranked — a foreign crowd's converged state
        must never seed a warm start), same newest-first preference.
        Candidates that fail validation fall through to older ones.
        """
        if fingerprint is None:
            return None
        digest = fingerprint_digest(fingerprint)
        with self._lock:
            candidates = sorted(
                (
                    (float(entry.get("used", 0.0)), key, entry["content_hash"])
                    for key, entry in self._index.snapshots.items()
                    if entry.get("fingerprint") == digest
                ),
                reverse=True,
            )
        for _, key, content_hash in candidates:
            if hashes is not None and content_hash not in hashes:
                continue
            record = self._load_record(key)
            if record is None or record.content_hash != content_hash:
                continue
            if record.state is not None:
                return record.state
        return None

    # ------------------------------------------------------------------ #
    # Crowd persistence (explicit named state, not evicted)
    # ------------------------------------------------------------------ #
    def save_crowd(self, name: str, matrix: ResponseMatrix) -> None:
        """Persist a crowd's triples via the canonical NPZ format.

        The NPZ is :meth:`ResponseMatrix.save` written to a temp name and
        renamed; the JSON sidecar (name, content hash, sizes) lands after
        it, also atomically, and is what :meth:`load_crowd` validates the
        reloaded matrix against.
        """
        import json

        slug = _crowd_slug(name)
        npz_path = self._crowds_dir / (slug + ".npz")
        tmp = self._tmp_name(self._crowds_dir, suffix=".npz")
        matrix.save(tmp)
        entry = {
            "name": name,
            "file": npz_path.name,
            "content_hash": matrix.content_hash(),
            "bytes": tmp.stat().st_size,
            "num_users": matrix.num_users,
            "num_answers": matrix.num_answers,
            "saved": float(self._clock()),
        }
        with self._lock:
            os.replace(tmp, npz_path)
            self._atomic_write(
                self._crowds_dir / (slug + ".json"),
                json.dumps(entry, sort_keys=True).encode("utf-8"),
            )
            self._index.crowds[name] = {
                key: value for key, value in entry.items() if key != "name"
            }
            self.crowd_saves += 1
            self._index.save(self._index_path)

    def load_crowd(self, name: str) -> Optional[ResponseMatrix]:
        """Reload a persisted crowd, or ``None`` (absent or corrupt).

        The reloaded matrix must re-hash to the sidecar's recorded content
        hash — a torn or bit-flipped NPZ that still happens to parse is
        rejected rather than served as a silently different crowd.
        """
        slug = _crowd_slug(name)
        npz_path = self._crowds_dir / (slug + ".npz")
        sidecar = self._read_sidecar(self._crowds_dir / (slug + ".json"))
        if not npz_path.exists():
            return None
        try:
            matrix = ResponseMatrix.load(npz_path)
        except Exception as err:
            logger.warning("persisted crowd %r failed to load (%s); "
                           "treating as absent", name, err)
            with self._lock:
                self.corrupt += 1
            return None
        if sidecar is not None:
            recorded = str(sidecar.get("content_hash", ""))
            if recorded and matrix.content_hash() != recorded:
                logger.warning(
                    "persisted crowd %r hashes to %s but its sidecar "
                    "records %s; treating as corrupt",
                    name, matrix.content_hash(), recorded,
                )
                with self._lock:
                    self.corrupt += 1
                return None
        with self._lock:
            self.crowd_loads += 1
        return matrix

    def crowd_names(self) -> Tuple[str, ...]:
        """Names of persisted crowds, most recently saved first."""
        with self._lock:
            entries = sorted(
                self._index.crowds.items(),
                key=lambda item: float(item[1].get("saved", 0.0)),
                reverse=True,
            )
            return tuple(name for name, _ in entries)

    def drop_crowd(self, name: str) -> bool:
        """Remove a crowd's durable state (NPZ + sidecar + index entry).

        This is the recovery path for a poisoned crowd — ``drop`` then
        re-create must not resurrect the bad data — so it is part of the
        manager's ``drop`` contract, not an optional cleanup.
        """
        slug = _crowd_slug(name)
        with self._lock:
            existed = self._index.crowds.pop(name, None) is not None
            for suffix in (".npz", ".json"):
                path = self._crowds_dir / (slug + suffix)
                if path.exists():
                    existed = True
                    path.unlink(missing_ok=True)
            if existed:
                self._index.save(self._index_path)
            return existed

    # ------------------------------------------------------------------ #
    # Eviction + maintenance
    # ------------------------------------------------------------------ #
    def _enforce_bounds_locked(
        self, now: float, protect: Optional[str] = None
    ) -> Dict[str, int]:
        """TTL expiry + LRU eviction over the snapshot records.

        Files are unlinked before the index rewrite: a kill in between
        leaves a dangling index entry, which reads as a miss and is
        dropped lazily — never the reverse (an unindexed live file is
        found again by a rebuild; an indexed ghost must not be).
        """
        removed = {"expired": 0, "evicted": 0}
        snapshots = self._index.snapshots
        if self.ttl is not None:
            for key in [
                key for key, entry in snapshots.items()
                if now - float(entry.get("created", now)) > self.ttl
            ]:
                self._snapshot_path(key).unlink(missing_ok=True)
                del snapshots[key]
                removed["expired"] += 1
                self.expirations += 1
        if self.max_bytes is not None or self.max_records is not None:
            by_recency = sorted(
                snapshots, key=lambda key: float(snapshots[key].get("used", 0.0))
            )
            for key in by_recency:
                over_bytes = (
                    self.max_bytes is not None
                    and self._index.total_bytes() > self.max_bytes
                )
                over_count = (
                    self.max_records is not None
                    and len(snapshots) > self.max_records
                )
                if not (over_bytes or over_count):
                    break
                if key == protect:
                    # Never evict the record being admitted: put() just
                    # wrote it and is about to return its key.  A later
                    # write or gc() pass (no protect) can still shed it.
                    continue
                self._snapshot_path(key).unlink(missing_ok=True)
                del snapshots[key]
                removed["evicted"] += 1
                self.evictions += 1
        return removed

    def gc(
        self,
        *,
        ttl: Optional[float] = None,
        max_bytes: Optional[int] = None,
        max_records: Optional[int] = None,
    ) -> Dict[str, int]:
        """Apply the TTL/size bounds now; returns what was removed.

        Explicit arguments override the store's configured policy for
        this pass only (the ``store gc`` CLI uses this).
        """
        with self._lock:
            old = (self.ttl, self.max_bytes, self.max_records)
            if ttl is not None:
                self.ttl = float(ttl)
            if max_bytes is not None:
                self.max_bytes = int(max_bytes)
            if max_records is not None:
                self.max_records = int(max_records)
            try:
                removed = self._enforce_bounds_locked(float(self._clock()))
            finally:
                self.ttl, self.max_bytes, self.max_records = old
            removed["remaining"] = len(self._index.snapshots)
            removed["bytes"] = self._index.total_bytes()
            self._index.save(self._index_path)
            return removed

    def verify(self) -> List[Dict[str, object]]:
        """Decode every record + crowd fully; report per-file status.

        The maintenance surface behind ``repro.cli store verify``: unlike
        the lookup paths (which silently fall back cold), this *reports*
        corruption — and removes nothing, so an operator can inspect a
        bad file before the next lookup quarantines it.
        """
        report: List[Dict[str, object]] = []
        for path in sorted(self._snapshots_dir.glob("*" + SNAPSHOT_SUFFIX)):
            entry: Dict[str, object] = {
                "file": str(path.relative_to(self.root)), "kind": "snapshot",
            }
            try:
                record = record_format.decode_snapshot(
                    path.read_bytes(), path=path
                )
                expected = "%s-%s" % (record.content_hash, record.fingerprint)
                if path.name != expected + SNAPSHOT_SUFFIX:
                    raise SnapshotError(
                        "file name does not match the recorded identity %s"
                        % expected, path=path,
                    )
                entry["status"] = "ok"
                entry["method"] = record.method
            except (SnapshotError, OSError) as err:
                entry["status"] = "corrupt"
                entry["error"] = str(err)
            report.append(entry)
        with self._lock:
            names = list(self._index.crowds)
        for name in names:
            slug = _crowd_slug(name)
            entry = {"file": "crowds/%s.npz" % slug, "kind": "crowd",
                     "crowd": name}
            matrix = self.load_crowd(name)
            if matrix is None:
                entry["status"] = "corrupt"
                entry["error"] = "crowd failed to load or re-hash"
            else:
                entry["status"] = "ok"
            report.append(entry)
        return report

    def ls(self) -> Dict[str, List[Dict[str, object]]]:
        """Index contents for the ``store ls`` CLI (no file decoding)."""
        with self._lock:
            snapshots = [
                dict(entry, key=key)
                for key, entry in sorted(
                    self._index.snapshots.items(),
                    key=lambda item: float(item[1].get("used", 0.0)),
                    reverse=True,
                )
            ]
            crowds = [
                dict(entry, name=name)
                for name, entry in sorted(self._index.crowds.items())
            ]
        return {"snapshots": snapshots, "crowds": crowds}

    # ------------------------------------------------------------------ #
    # Write-behind + lifecycle
    # ------------------------------------------------------------------ #
    def defer(self, job) -> bool:
        """Run ``job`` on the write-behind thread (FIFO, failure-isolated)."""
        return self._writeback.submit(job)

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Barrier: wait until every deferred write so far has run."""
        return self._writeback.flush(timeout)

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain deferred writes and stop the write-behind thread."""
        self._writeback.close(timeout)

    def stats(self) -> Dict[str, object]:
        """Counters + sizes (the ``store stats`` CLI and server payload)."""
        with self._lock:
            return {
                "root": str(self.root),
                "snapshots": len(self._index.snapshots),
                "crowds": len(self._index.crowds),
                "bytes": self._index.total_bytes(),
                "max_bytes": self.max_bytes,
                "max_records": self.max_records,
                "ttl": self.ttl,
                "hits": self.hits,
                "misses": self.misses,
                "corrupt": self.corrupt,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "writes": self.writes,
                "crowd_saves": self.crowd_saves,
                "crowd_loads": self.crowd_loads,
                "write_failures": self._writeback.failures,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SnapshotStore(root=%r, snapshots=%d, crowds=%d)" % (
            str(self.root), len(self._index.snapshots),
            len(self._index.crowds),
        )
