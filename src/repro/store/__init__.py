"""Durable state tier: content-addressed snapshots that survive restarts.

The serving stack's most expensive artifacts — converged solver iterates,
ranked scores, and the crowds themselves — used to live only in process
memory.  :class:`SnapshotStore` is the disk tier beneath them:

* :class:`~repro.engine.cache.RankCache` built with ``store=`` promotes
  disk hits into its in-memory LRU and writes new entries back behind the
  solve (see :mod:`repro.store.writeback`);
* :class:`~repro.api.session.CrowdSession` persists its triples through
  the canonical NPZ format, so a crowd restores after a restart with its
  warm-start lineage seeded;
* :class:`~repro.api.manager.SessionManager` / ``repro.cli serve --store``
  re-register persisted crowds on startup and serve the first rank warm
  (a ~ms snapshot hit on unchanged data, the PR 5 warm-start path after
  an append).

Integrity discipline: atomic temp-then-rename writes, per-record BLAKE2b
checksums with a schema version (:mod:`repro.store.format`), a
rebuildable index file driving TTL + size-bounded LRU eviction
(:mod:`repro.store.index`), and a load path where every defect becomes a
logged, counted, *contained* :class:`~repro.exceptions.SnapshotError` —
the stack above falls back cold, never hangs, never serves a wrong
answer.
"""

from repro.store.format import (
    SCHEMA_VERSION,
    SnapshotRecord,
    decode_snapshot,
    encode_snapshot,
    fingerprint_digest,
    snapshot_key,
)
from repro.store.index import StoreIndex
from repro.store.snapshot import DEFAULT_MAX_BYTES, SnapshotStore
from repro.store.writeback import WriteBehind

__all__ = [
    "DEFAULT_MAX_BYTES",
    "SCHEMA_VERSION",
    "SnapshotRecord",
    "SnapshotStore",
    "StoreIndex",
    "WriteBehind",
    "decode_snapshot",
    "encode_snapshot",
    "fingerprint_digest",
    "snapshot_key",
]
