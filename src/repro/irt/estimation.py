"""Graded Response Model parameter estimation (the "GRM-estimator" baseline).

The paper's second cheating baseline fits a GRM to the responses with the
GIRTH package and ranks users by the estimated abilities; it is "cheating"
because it must be told the correctness order of each item's options.  GIRTH
is not available offline, so this module implements the same statistical
procedure from scratch:

* **marginal maximum likelihood (MML)** estimation of the item parameters via
  an EM algorithm with a fixed quadrature grid over the latent ability, and
* **expected a-posteriori (EAP)** ability estimates for every user given the
  fitted item parameters.

The estimator works on *graded* responses: option indices must already be
ordered by correctness (0 = worst, k-1 = best), exactly the information the
cheating baseline is granted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np
from scipy import optimize

from repro.core.response import NO_ANSWER, ResponseMatrix
from repro.exceptions import EstimationError
from repro.irt.dichotomous import sigmoid

RandomState = Optional[Union[int, np.random.Generator]]


@dataclass
class GRMEstimate:
    """Result of fitting a Graded Response Model.

    Attributes
    ----------
    abilities:
        EAP ability estimate per user (length ``m``).
    discrimination:
        Estimated ``a_i`` per item (length ``n``).
    thresholds:
        Estimated ordered thresholds per item, shape ``(n, k-1)``.
    log_likelihood:
        Final marginal log-likelihood of the data.
    iterations:
        Number of EM iterations performed.
    converged:
        Whether the EM loop met its tolerance before exhausting the budget.
    """

    abilities: np.ndarray
    discrimination: np.ndarray
    thresholds: np.ndarray
    log_likelihood: float
    iterations: int
    converged: bool


class GRMEstimator:
    """MML-EM estimator for the homogeneous Graded Response Model.

    Parameters
    ----------
    num_quadrature:
        Number of equally spaced quadrature points over ``quadrature_range``.
    quadrature_range:
        Latent-ability grid limits.  A standard-normal prior restricted to
        this grid is used both in the E-step and for the EAP estimates.
    max_iterations, tolerance:
        EM stopping rule on the change in marginal log-likelihood.
    """

    def __init__(
        self,
        *,
        num_quadrature: int = 31,
        quadrature_range: Tuple[float, float] = (-4.0, 4.0),
        max_iterations: int = 25,
        tolerance: float = 1e-3,
    ) -> None:
        if num_quadrature < 3:
            raise ValueError("need at least 3 quadrature points")
        self.num_quadrature = num_quadrature
        self.quadrature_range = quadrature_range
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    # ------------------------------------------------------------------ #
    def _grid(self) -> Tuple[np.ndarray, np.ndarray]:
        low, high = self.quadrature_range
        points = np.linspace(low, high, self.num_quadrature)
        weights = np.exp(-0.5 * points**2)
        weights = weights / weights.sum()
        return points, weights

    @staticmethod
    def _category_probabilities(
        points: np.ndarray, discrimination: float, thresholds: np.ndarray
    ) -> np.ndarray:
        """Probability of each category at each quadrature point, shape (Q, k)."""
        cumulative = sigmoid(discrimination * (points[:, np.newaxis] - thresholds[np.newaxis, :]))
        ones = np.ones((points.size, 1))
        zeros = np.zeros((points.size, 1))
        cumulative = np.concatenate([ones, cumulative, zeros], axis=1)
        probabilities = cumulative[:, :-1] - cumulative[:, 1:]
        return np.clip(probabilities, 1e-10, 1.0)

    def _item_negative_log_likelihood(
        self,
        raw_parameters: np.ndarray,
        points: np.ndarray,
        expected_counts: np.ndarray,
    ) -> float:
        """Expected negative log-likelihood of one item given E-step counts.

        ``raw_parameters`` packs ``log(a)`` followed by the first threshold
        and the logs of the positive threshold gaps, which keeps the
        thresholds ordered without explicit constraints.
        """
        log_a = raw_parameters[0]
        first = raw_parameters[1]
        gaps = np.exp(raw_parameters[2:])
        thresholds = first + np.concatenate([[0.0], np.cumsum(gaps)])
        a = float(np.exp(log_a))
        probabilities = self._category_probabilities(points, a, thresholds)
        return float(-(expected_counts * np.log(probabilities)).sum())

    @staticmethod
    def _pack(discrimination: float, thresholds: np.ndarray) -> np.ndarray:
        gaps = np.diff(thresholds)
        gaps = np.maximum(gaps, 1e-3)
        return np.concatenate(
            [[np.log(max(discrimination, 1e-3))], [thresholds[0]], np.log(gaps)]
        )

    @staticmethod
    def _unpack(raw_parameters: np.ndarray) -> Tuple[float, np.ndarray]:
        a = float(np.exp(raw_parameters[0]))
        first = raw_parameters[1]
        gaps = np.exp(raw_parameters[2:])
        thresholds = first + np.concatenate([[0.0], np.cumsum(gaps)])
        return a, thresholds

    # ------------------------------------------------------------------ #
    def fit(self, graded_responses: Union[np.ndarray, ResponseMatrix]) -> GRMEstimate:
        """Fit the GRM and return parameter and ability estimates.

        Parameters
        ----------
        graded_responses:
            ``(m x n)`` integer matrix of graded responses in
            ``{0, ..., k_i - 1}`` (-1 for missing), or a
            :class:`ResponseMatrix` whose option indices are already ordered
            by correctness.
        """
        if isinstance(graded_responses, ResponseMatrix):
            # Triples-native path: slice the answers item-major straight off
            # the compiled kernel cache; no dense (m, n) choices view is
            # ever materialized.
            num_users = graded_responses.num_users
            num_items = graded_responses.num_items
            num_options = graded_responses.num_options
            compiled = graded_responses.compiled
            order = compiled.item_order
            item_users = compiled.user_index[order]
            item_grades = compiled.option_index[order]
            item_ptr = compiled.item_ptr
        else:
            responses = np.asarray(graded_responses, dtype=int)
            if responses.ndim != 2:
                raise EstimationError("graded responses must be a 2-D integer matrix")
            num_options = np.maximum(responses.max(axis=0) + 1, 2)
            num_users, num_items = responses.shape
            mask_t = (responses != NO_ANSWER).T
            # nonzero on the transposed mask is item-major with users
            # ascending inside each item — same gather order as above.
            _, item_users = np.nonzero(mask_t)
            item_grades = responses.T[mask_t]
            item_ptr = np.concatenate(
                [[0], np.cumsum(mask_t.sum(axis=1))]
            )
        if num_users < 2 or num_items < 1:
            raise EstimationError("need at least 2 users and 1 item to fit a GRM")

        points, prior = self._grid()

        # Initial parameters: unit discrimination, equally spaced thresholds.
        discrimination = np.ones(num_items)
        max_categories = int(num_options.max())
        thresholds = [
            np.linspace(-1.0, 1.0, max(int(num_options[i]) - 1, 1)) for i in range(num_items)
        ]

        previous_ll = -np.inf
        iterations = 0
        converged = False
        posterior = np.tile(prior, (num_users, 1))
        for iterations in range(1, self.max_iterations + 1):
            # E-step: posterior over the quadrature grid per user.
            log_posterior = np.tile(np.log(prior)[np.newaxis, :], (num_users, 1))
            for i in range(num_items):
                probs = self._category_probabilities(points, discrimination[i], thresholds[i])
                answers = slice(item_ptr[i], item_ptr[i + 1])
                if item_ptr[i] == item_ptr[i + 1]:
                    continue
                log_posterior[item_users[answers]] += np.log(
                    probs[:, item_grades[answers]]
                ).T
            log_marginal = np.logaddexp.reduce(log_posterior, axis=1)
            log_likelihood = float(log_marginal.sum())
            posterior = np.exp(log_posterior - log_marginal[:, np.newaxis])

            if abs(log_likelihood - previous_ll) < self.tolerance:
                converged = True
                break
            previous_ll = log_likelihood

            # M-step: per-item expected category counts over the grid, then
            # maximize each item's expected log-likelihood.
            for i in range(num_items):
                k_i = int(num_options[i])
                if item_ptr[i] == item_ptr[i + 1]:
                    continue
                answers = slice(item_ptr[i], item_ptr[i + 1])
                users_i = item_users[answers]
                grades_i = item_grades[answers]
                expected_counts = np.zeros((points.size, k_i))
                for category in range(k_i):
                    users_in_category = users_i[grades_i == category]
                    if users_in_category.size:
                        expected_counts[:, category] = posterior[users_in_category].sum(axis=0)
                initial = self._pack(discrimination[i], thresholds[i])
                result = optimize.minimize(
                    self._item_negative_log_likelihood,
                    initial,
                    args=(points, expected_counts),
                    method="L-BFGS-B",
                    options={"maxiter": 50},
                )
                a_i, b_i = self._unpack(result.x)
                discrimination[i] = min(a_i, 50.0)
                thresholds[i] = b_i

        abilities = posterior @ points
        threshold_matrix = np.full((num_items, max_categories - 1), np.nan)
        for i in range(num_items):
            threshold_matrix[i, : thresholds[i].size] = thresholds[i]
        return GRMEstimate(
            abilities=np.asarray(abilities, dtype=float),
            discrimination=discrimination,
            thresholds=threshold_matrix,
            log_likelihood=previous_ll if not converged else log_likelihood,
            iterations=iterations,
            converged=converged,
        )


def _grade_ranks(option_order: np.ndarray, num_items: int) -> np.ndarray:
    """Invert the per-item option order into a ``(n, k)`` rank lookup table."""
    option_order = np.asarray(option_order, dtype=int)
    if option_order.ndim != 2 or option_order.shape[0] != num_items:
        raise ValueError("option_order must have one row per item")
    k = option_order.shape[1]
    ranks = np.empty_like(option_order)
    np.put_along_axis(
        ranks,
        option_order,
        np.broadcast_to(np.arange(k), option_order.shape),
        axis=1,
    )
    return ranks


def grade_responses(response: ResponseMatrix, option_order: np.ndarray) -> np.ndarray:
    """Convert raw choices into a dense graded-score matrix.

    ``option_order[i]`` lists item ``i``'s option indices from worst to best;
    the graded score of a choice is its position in that list.  This is the
    ground-truth information the GRM-estimator baseline is allowed to use.

    The output is an explicitly dense ``(m, n)`` array (``O(m*n)`` memory);
    use :func:`grade_response_matrix` to stay on the triples at scale.
    """
    ranks = _grade_ranks(option_order, response.num_items)
    users, items, options = response.triples
    graded = np.full((response.num_users, response.num_items), NO_ANSWER, dtype=int)
    graded[users, items] = ranks[items, options]
    return graded


def grade_response_matrix(
    response: ResponseMatrix, option_order: np.ndarray
) -> ResponseMatrix:
    """Triples-native :func:`grade_responses`: regrade without densifying.

    Returns a new :class:`ResponseMatrix` whose option indices are the
    correctness ranks, built as an ``O(nnz)`` gather over the answer
    triples — the path :class:`~repro.truth_discovery.cheating.GRMEstimatorRanker`
    uses so that supervised grading never allocates ``(m, n)`` state.
    """
    ranks = _grade_ranks(option_order, response.num_items)
    users, items, options = response.triples
    # num_options is inferred from the observed grades (max + 1 per item,
    # floor 2) — the same per-item category counts the dense-array fit path
    # inferred, and necessary because an item's graded ranks may exceed its
    # own option count when option_order rows span the global k_max.
    return ResponseMatrix.from_triples(
        users,
        items,
        ranks[items, options],
        shape=(response.num_users, response.num_items),
    )
