"""Item Response Theory substrate.

Implements the dichotomous and polytomous IRT models of Section II-D /
Appendix C, the synthetic data generators used throughout the paper's
experiments, the GRM parameter estimator (replacing the GIRTH package), and
the realistic simulations of Appendix D-C.
"""

from repro.irt.dichotomous import (
    DichotomousItemBank,
    DichotomousModel,
    GLADModel,
    OnePLModel,
    ThreePLModel,
    TwoPLModel,
    sigmoid,
)
from repro.irt.polytomous import (
    BockModel,
    GradedResponseModel,
    PolytomousModel,
    SamejimaModel,
    softmax,
)
from repro.irt.generators import (
    DEFAULT_ABILITY_RANGE,
    DEFAULT_DIFFICULTY_RANGE,
    DEFAULT_DISCRIMINATION_RANGE,
    MODEL_NAMES,
    SyntheticDataset,
    build_model,
    generate_c1p_dataset,
    generate_dataset,
    make_bock_model,
    make_grm_model,
    make_samejima_model,
    sample_abilities,
)
from repro.irt.estimation import (
    GRMEstimate,
    GRMEstimator,
    grade_response_matrix,
    grade_responses,
)
from repro.irt.simulated import (
    AMERICAN_EXPERIENCE_NUM_ITEMS,
    AMERICAN_EXPERIENCE_NUM_STUDENTS,
    american_experience_item_bank,
    generate_american_experience_dataset,
    generate_halfmoon_dataset,
    halfmoon_item_parameters,
)

__all__ = [
    "DichotomousItemBank",
    "DichotomousModel",
    "OnePLModel",
    "TwoPLModel",
    "GLADModel",
    "ThreePLModel",
    "sigmoid",
    "softmax",
    "PolytomousModel",
    "GradedResponseModel",
    "BockModel",
    "SamejimaModel",
    "SyntheticDataset",
    "MODEL_NAMES",
    "DEFAULT_ABILITY_RANGE",
    "DEFAULT_DIFFICULTY_RANGE",
    "DEFAULT_DISCRIMINATION_RANGE",
    "sample_abilities",
    "build_model",
    "make_grm_model",
    "make_bock_model",
    "make_samejima_model",
    "generate_dataset",
    "generate_c1p_dataset",
    "GRMEstimator",
    "GRMEstimate",
    "grade_responses",
    "grade_response_matrix",
    "american_experience_item_bank",
    "generate_american_experience_dataset",
    "generate_halfmoon_dataset",
    "halfmoon_item_parameters",
    "AMERICAN_EXPERIENCE_NUM_ITEMS",
    "AMERICAN_EXPERIENCE_NUM_STUDENTS",
]
