"""Realistic simulated datasets (Appendix D-C of the paper).

Two simulations back the paper's "realistic" accuracy experiments:

* **American Experience test** (Figure 12): 40 binary 3PL items whose
  parameters follow the estimates DeMars (2010) reports for the American
  Experience test, answered by either a class-sized cohort (100 students)
  or the original cohort size (2692 students) with ``theta ~ N(0, 1)``.
  The exact per-item table is not reproduced in the paper, so the items are
  drawn from the published summary ranges (the substituted parameter ranges
  are documented on the generator functions below).

* **Half-moon data** (Figure 13): items whose (log discrimination,
  difficulty) pairs follow the half-moon pattern observed by Vania et al.
  (2021) across NLP benchmarks — discriminative items are either easy or
  hard — with guessing ``c ~ U[0, 0.5]`` and ``theta ~ N(0, 1)``.

Both produce binary correct/incorrect data; to feed the polytomous ranking
pipeline each binary item is exposed as a 2-option MCQ (option 1 = correct).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.core.response import ResponseMatrix
from repro.irt.dichotomous import ThreePLModel
from repro.irt.generators import SyntheticDataset

RandomState = Optional[Union[int, np.random.Generator]]

#: Number of items in the American Experience test (DeMars 2010).
AMERICAN_EXPERIENCE_NUM_ITEMS = 40
#: Cohort size of the original American Experience administration.
AMERICAN_EXPERIENCE_NUM_STUDENTS = 2692


def american_experience_item_bank(
    random_state: RandomState = None,
) -> ThreePLModel:
    """Return a 3PL item bank mimicking the American Experience test.

    Item parameters are drawn once from the published summary ranges:
    discrimination ``a`` log-normal around 1 (clipped to [0.4, 2.5]),
    difficulty ``b ~ N(0, 1)`` (clipped to [-2.5, 2.5]) and guessing
    ``c ~ U[0.1, 0.3]`` — the typical range for 4-option MCQs.
    """
    rng = np.random.default_rng(random_state)
    discrimination = np.clip(
        rng.lognormal(mean=0.0, sigma=0.35, size=AMERICAN_EXPERIENCE_NUM_ITEMS), 0.4, 2.5
    )
    difficulty = np.clip(
        rng.normal(0.0, 1.0, size=AMERICAN_EXPERIENCE_NUM_ITEMS), -2.5, 2.5
    )
    guessing = rng.uniform(0.1, 0.3, size=AMERICAN_EXPERIENCE_NUM_ITEMS)
    return ThreePLModel(difficulty=difficulty, discrimination=discrimination, guessing=guessing)


def generate_american_experience_dataset(
    num_students: int = 100,
    *,
    random_state: RandomState = None,
) -> SyntheticDataset:
    """Simulate an American Experience test administration.

    Parameters
    ----------
    num_students:
        100 for the "class-sized" variant, 2692 for the original cohort.
    """
    rng = np.random.default_rng(random_state)
    model = american_experience_item_bank(random_state=rng)
    abilities = rng.normal(0.0, 1.0, size=num_students)
    correctness = model.sample(abilities, random_state=rng)
    response = ResponseMatrix(correctness, num_options=2)
    return SyntheticDataset(
        response=response,
        abilities=abilities,
        correct_options=np.ones(model.num_items, dtype=int),
        model_name="american_experience_3pl",
        metadata={
            "discrimination": model.items.discrimination,
            "difficulty": model.items.difficulty,
            "guessing": model.items.guessing,
        },
    )


def halfmoon_item_parameters(
    num_items: int,
    *,
    random_state: RandomState = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample (discrimination, difficulty, guessing) with the half-moon shape.

    The half-moon pattern of Vania et al. (2021): plotting log-discrimination
    against difficulty, discriminative items cluster at the two ends of the
    difficulty axis (easy or hard) while mid-difficulty items have low
    discrimination.  We parameterize the moon by an angle ``t ~ U[0, pi]``:
    ``b = 2.5 cos(t) + noise`` and ``log a = 0.3 - 0.9 sin(t) + noise``, so
    that the most discriminative items sit at the extreme difficulties.
    """
    rng = np.random.default_rng(random_state)
    angle = rng.uniform(0.0, np.pi, size=num_items)
    difficulty = 2.5 * np.cos(angle) + rng.normal(0.0, 0.25, size=num_items)
    log_discrimination = 0.3 - 0.9 * np.sin(angle) + rng.normal(0.0, 0.15, size=num_items)
    discrimination = np.exp(log_discrimination)
    guessing = rng.uniform(0.0, 0.5, size=num_items)
    return discrimination, difficulty, guessing


def generate_halfmoon_dataset(
    num_users: int = 100,
    num_items: int = 100,
    *,
    random_state: RandomState = None,
) -> SyntheticDataset:
    """Simulate the half-moon benchmark of Figure 13."""
    rng = np.random.default_rng(random_state)
    discrimination, difficulty, guessing = halfmoon_item_parameters(
        num_items, random_state=rng
    )
    model = ThreePLModel(
        difficulty=difficulty, discrimination=discrimination, guessing=guessing
    )
    abilities = rng.normal(0.0, 1.0, size=num_users)
    correctness = model.sample(abilities, random_state=rng)
    response = ResponseMatrix(correctness, num_options=2)
    return SyntheticDataset(
        response=response,
        abilities=abilities,
        correct_options=np.ones(num_items, dtype=int),
        model_name="halfmoon_3pl",
        metadata={
            "discrimination": discrimination,
            "difficulty": difficulty,
            "guessing": guessing,
        },
    )
