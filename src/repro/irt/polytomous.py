"""Polytomous (multinomial) Item Response Theory models.

The paper's synthetic data are generated from three polytomous models
(Section II-D and Appendix C-B):

* **Graded Response Model (GRM)** [Samejima 1997]: one discrimination ``a_i``
  per item and ordered difficulty thresholds ``b_{i,1} < ... < b_{i,k-1}``.
  The probability of picking option ``h`` is the difference of two 2PL
  cumulative curves.  In the limit ``a -> infinity`` the response function
  becomes a difference of Heaviside steps, i.e. exactly the consistent (C1P)
  case.
* **Bock's nominal category model** [Bock 1972]: multinomial logistic
  regression with a slope ``alpha_{ih}`` and intercept ``beta_{ih}`` per
  option.
* **Samejima's multiple-choice model** [Samejima 1979]: Bock plus a latent
  "don't know" option 0; low-ability users spread its mass uniformly over
  the ``k`` real options, modelling random guessing.

Each model exposes:

* ``option_probabilities(theta)`` — a ``(num_users, n, k)`` tensor of choice
  probabilities,
* ``correct_options`` — the ground-truth best option per item,
* ``sample(theta)`` — a raw ``(num_users, n)`` choice matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.irt.dichotomous import sigmoid


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    logits = np.asarray(logits, dtype=float)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class PolytomousModel:
    """Common interface of the polytomous IRT models."""

    #: Human-readable model name used in experiment tables.
    name: str = "polytomous"

    @property
    def num_items(self) -> int:
        raise NotImplementedError

    @property
    def num_categories(self) -> int:
        raise NotImplementedError

    @property
    def correct_options(self) -> np.ndarray:
        """Ground-truth best option per item (length ``n``)."""
        raise NotImplementedError

    def option_probabilities(self, abilities: Union[float, np.ndarray]) -> np.ndarray:
        """Choice probabilities, shape ``(num_users, num_items, num_categories)``."""
        raise NotImplementedError

    def sample(
        self,
        abilities: np.ndarray,
        random_state: Optional[Union[int, np.random.Generator]] = None,
    ) -> np.ndarray:
        """Draw a raw choice matrix of shape ``(num_users, num_items)``."""
        rng = np.random.default_rng(random_state)
        probabilities = self.option_probabilities(abilities)
        num_users, num_items, num_categories = probabilities.shape
        cumulative = np.cumsum(probabilities, axis=2)
        # Guard against tiny numerical drift so the final bin always closes.
        cumulative[:, :, -1] = 1.0
        draws = rng.random((num_users, num_items, 1))
        return (draws > cumulative).sum(axis=2).astype(int)


@dataclass(frozen=True)
class GradedResponseModel(PolytomousModel):
    """Samejima's Graded Response Model (homogeneous case).

    Parameters
    ----------
    discrimination:
        ``a_i`` per item, shape ``(n,)``.
    thresholds:
        Ordered difficulty thresholds ``b_{i,h}``, shape ``(n, k-1)``; row
        ``i`` must be strictly increasing.  Option ``k-1`` (the last one) is
        the hardest to reach and is therefore the *correct* option: users
        with ability above every threshold pick it.
    """

    discrimination: np.ndarray
    thresholds: np.ndarray

    name = "grm"

    def __post_init__(self) -> None:
        discrimination = np.atleast_1d(np.asarray(self.discrimination, dtype=float))
        thresholds = np.atleast_2d(np.asarray(self.thresholds, dtype=float))
        if thresholds.shape[0] != discrimination.size:
            raise ValueError("thresholds must have one row per item")
        if thresholds.shape[1] < 1:
            raise ValueError("GRM needs at least 2 categories (1 threshold)")
        if np.any(np.diff(thresholds, axis=1) <= 0):
            raise ValueError("GRM thresholds must be strictly increasing per item")
        object.__setattr__(self, "discrimination", discrimination)
        object.__setattr__(self, "thresholds", thresholds)

    @property
    def num_items(self) -> int:
        return int(self.discrimination.size)

    @property
    def num_categories(self) -> int:
        return int(self.thresholds.shape[1] + 1)

    @property
    def correct_options(self) -> np.ndarray:
        return np.full(self.num_items, self.num_categories - 1, dtype=int)

    def cumulative_probabilities(self, abilities: Union[float, np.ndarray]) -> np.ndarray:
        """``P*_{ih}(theta)``: probability of reaching at least category ``h``.

        Shape ``(num_users, n, k+1)`` with ``P*_{i0} = 1`` and ``P*_{ik} = 0``.
        """
        theta = np.atleast_1d(np.asarray(abilities, dtype=float))
        a = self.discrimination[np.newaxis, :, np.newaxis]
        b = self.thresholds[np.newaxis, :, :]
        inner = sigmoid(a * (theta[:, np.newaxis, np.newaxis] - b))
        num_users = theta.size
        ones = np.ones((num_users, self.num_items, 1))
        zeros = np.zeros((num_users, self.num_items, 1))
        return np.concatenate([ones, inner, zeros], axis=2)

    def option_probabilities(self, abilities: Union[float, np.ndarray]) -> np.ndarray:
        cumulative = self.cumulative_probabilities(abilities)
        probabilities = cumulative[:, :, :-1] - cumulative[:, :, 1:]
        return np.clip(probabilities, 0.0, 1.0)


@dataclass(frozen=True)
class BockModel(PolytomousModel):
    """Bock's nominal category model (multinomial logistic regression).

    Parameters
    ----------
    slopes:
        ``alpha_{ih}`` per (item, option), shape ``(n, k)``.  The option with
        the largest slope is the correct one.
    intercepts:
        ``beta_{ih}`` per (item, option), shape ``(n, k)``.
    """

    slopes: np.ndarray
    intercepts: np.ndarray

    name = "bock"

    def __post_init__(self) -> None:
        slopes = np.atleast_2d(np.asarray(self.slopes, dtype=float))
        intercepts = np.atleast_2d(np.asarray(self.intercepts, dtype=float))
        if slopes.shape != intercepts.shape:
            raise ValueError("slopes and intercepts must share a shape")
        if slopes.shape[1] < 2:
            raise ValueError("Bock model needs at least 2 options")
        object.__setattr__(self, "slopes", slopes)
        object.__setattr__(self, "intercepts", intercepts)

    @property
    def num_items(self) -> int:
        return int(self.slopes.shape[0])

    @property
    def num_categories(self) -> int:
        return int(self.slopes.shape[1])

    @property
    def correct_options(self) -> np.ndarray:
        return np.argmax(self.slopes, axis=1).astype(int)

    def option_probabilities(self, abilities: Union[float, np.ndarray]) -> np.ndarray:
        theta = np.atleast_1d(np.asarray(abilities, dtype=float))
        logits = (
            self.slopes[np.newaxis, :, :] * theta[:, np.newaxis, np.newaxis]
            + self.intercepts[np.newaxis, :, :]
        )
        return softmax(logits, axis=2)


@dataclass(frozen=True)
class SamejimaModel(PolytomousModel):
    """Samejima's multiple-choice model with a latent "don't know" option.

    Parameters
    ----------
    slopes, intercepts:
        ``alpha_{ih}``/``beta_{ih}`` for options ``h = 0..k`` where option 0
        is the latent "don't know" category; shape ``(n, k+1)``.  The mass of
        the latent option is redistributed uniformly over the ``k`` visible
        options, modelling random guessing.
    """

    slopes: np.ndarray
    intercepts: np.ndarray

    name = "samejima"

    def __post_init__(self) -> None:
        slopes = np.atleast_2d(np.asarray(self.slopes, dtype=float))
        intercepts = np.atleast_2d(np.asarray(self.intercepts, dtype=float))
        if slopes.shape != intercepts.shape:
            raise ValueError("slopes and intercepts must share a shape")
        if slopes.shape[1] < 3:
            raise ValueError(
                "Samejima model needs the latent option plus at least 2 visible options"
            )
        object.__setattr__(self, "slopes", slopes)
        object.__setattr__(self, "intercepts", intercepts)

    @property
    def num_items(self) -> int:
        return int(self.slopes.shape[0])

    @property
    def num_categories(self) -> int:
        # Visible options only (the latent "don't know" is never observed).
        return int(self.slopes.shape[1] - 1)

    @property
    def correct_options(self) -> np.ndarray:
        return (np.argmax(self.slopes[:, 1:], axis=1)).astype(int)

    def option_probabilities(self, abilities: Union[float, np.ndarray]) -> np.ndarray:
        theta = np.atleast_1d(np.asarray(abilities, dtype=float))
        logits = (
            self.slopes[np.newaxis, :, :] * theta[:, np.newaxis, np.newaxis]
            + self.intercepts[np.newaxis, :, :]
        )
        full = softmax(logits, axis=2)
        dont_know = full[:, :, :1]
        visible = full[:, :, 1:]
        k = self.num_categories
        return visible + dont_know / k
