"""Synthetic response-data generators based on the IRT models.

Section IV-A of the paper generates all accuracy experiments from the three
polytomous models (GRM, Bock, Samejima) with the default parameter ranges

* user ability ``theta ~ U[0, 1]``,
* item difficulty ``b ~ U[-0.5, 0.5]`` (shifted for the difficulty sweep),
* item discrimination ``a ~ U[0, 10]``,

plus an ideal **C1P generator** (the ``a -> infinity`` limit of GRM) used in
Figure 4h.  Appendix D-D documents the Bock/GRM discrimination calibration
(`a_GRM ~ U[0, 2 a_max/(k+1)]` so average discriminations match), which is
reproduced here.

Every generator returns a :class:`SyntheticDataset` bundling the
:class:`~repro.core.response.ResponseMatrix`, the ground-truth abilities,
the correct options, and the generating model, which the evaluation harness
consumes directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core.response import NO_ANSWER, ResponseMatrix
from repro.irt.polytomous import (
    BockModel,
    GradedResponseModel,
    PolytomousModel,
    SamejimaModel,
)

RandomState = Optional[Union[int, np.random.Generator]]

#: Default parameter ranges from Section IV-A of the paper.
DEFAULT_ABILITY_RANGE: Tuple[float, float] = (0.0, 1.0)
DEFAULT_DIFFICULTY_RANGE: Tuple[float, float] = (-0.5, 0.5)
DEFAULT_DISCRIMINATION_RANGE: Tuple[float, float] = (0.0, 10.0)

#: Model names accepted by :func:`generate_dataset`.
MODEL_NAMES = ("grm", "bock", "samejima")


@dataclass
class SyntheticDataset:
    """A generated ability-discovery instance with full ground truth.

    Attributes
    ----------
    response:
        The observed :class:`ResponseMatrix`.
    abilities:
        Ground-truth user abilities ``theta`` (length ``m``).
    correct_options:
        Ground-truth best option per item (length ``n``).
    model_name:
        Which generative model produced the data ("grm", "bock", "samejima",
        "c1p", "3pl", ...).
    metadata:
        Free-form extra information (parameter ranges, model objects, ...).
    """

    response: ResponseMatrix
    abilities: np.ndarray
    correct_options: np.ndarray
    model_name: str
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def num_users(self) -> int:
        return self.response.num_users

    @property
    def num_items(self) -> int:
        return self.response.num_items

    @property
    def true_ranking(self) -> np.ndarray:
        """User indices sorted by increasing ground-truth ability."""
        return np.argsort(self.abilities, kind="stable")


# --------------------------------------------------------------------------- #
# Parameter samplers
# --------------------------------------------------------------------------- #
def sample_abilities(
    num_users: int,
    ability_range: Tuple[float, float] = DEFAULT_ABILITY_RANGE,
    random_state: RandomState = None,
) -> np.ndarray:
    """Draw user abilities uniformly from ``ability_range``."""
    rng = np.random.default_rng(random_state)
    low, high = ability_range
    return rng.uniform(low, high, size=num_users)


def make_grm_model(
    num_items: int,
    num_options: int,
    *,
    difficulty_range: Tuple[float, float] = DEFAULT_DIFFICULTY_RANGE,
    discrimination_range: Tuple[float, float] = DEFAULT_DISCRIMINATION_RANGE,
    calibrate_to_bock: bool = True,
    random_state: RandomState = None,
) -> GradedResponseModel:
    """Sample a random Graded Response Model.

    Thresholds for each item are drawn from ``difficulty_range`` and sorted
    (strictly increasing with a tiny jitter to break ties).  When
    ``calibrate_to_bock`` is set, the discrimination is drawn from
    ``U[0, 2 a_max / (k + 1)]`` so the average discrimination matches the
    Bock generator with the same nominal range (Appendix D-D).
    """
    if num_options < 2:
        raise ValueError("GRM needs at least 2 options")
    rng = np.random.default_rng(random_state)
    low, high = difficulty_range
    thresholds = np.sort(rng.uniform(low, high, size=(num_items, num_options - 1)), axis=1)
    # Enforce strict ordering; equal draws are measure-zero but possible.
    epsilon = 1e-9 * np.arange(num_options - 1)
    thresholds = thresholds + epsilon[np.newaxis, :]
    a_low, a_high = discrimination_range
    if calibrate_to_bock:
        a_high = 2.0 * a_high / (num_options + 1)
        a_low = 2.0 * a_low / (num_options + 1)
    discrimination = rng.uniform(a_low, a_high, size=num_items)
    return GradedResponseModel(discrimination=discrimination, thresholds=thresholds)


def make_bock_model(
    num_items: int,
    num_options: int,
    *,
    difficulty_range: Tuple[float, float] = DEFAULT_DIFFICULTY_RANGE,
    discrimination_range: Tuple[float, float] = DEFAULT_DISCRIMINATION_RANGE,
    random_state: RandomState = None,
) -> BockModel:
    """Sample a random Bock nominal-category model.

    The parameterization follows the GRM/Bock correspondence of Appendix C-B
    and Figure 8a: option ``h`` of item ``i`` has slope ``h * a_i`` (so the
    correct option has the largest slope) and intercept
    ``-a_i * (b_1 + ... + b_h)`` for ordered thresholds
    ``b_1 < ... < b_{k-1}`` drawn from ``difficulty_range``.  With this
    choice the crossover between adjacent options ``h-1`` and ``h`` happens
    exactly at ability ``b_h``, matching a GRM with the same thresholds
    (e.g. GRM ``a=8, b=(-0.2, 0.2)`` corresponds to Bock
    ``alpha=(0, 8, 16), beta=(0, 1.6, 0)``).  The per-option base
    discrimination ``a_i`` is drawn from ``U[discrimination_range] * 2/(k+1)``
    so the *average* slope matches the nominal range (Appendix D-D).
    """
    if num_options < 2:
        raise ValueError("Bock model needs at least 2 options")
    rng = np.random.default_rng(random_state)
    a_low, a_high = discrimination_range
    scale = 2.0 / (num_options + 1)
    base = rng.uniform(a_low * scale, a_high * scale, size=num_items)
    multipliers = np.arange(num_options, dtype=float)
    slopes = base[:, np.newaxis] * multipliers[np.newaxis, :]
    low, high = difficulty_range
    thresholds = np.sort(rng.uniform(low, high, size=(num_items, num_options - 1)), axis=1)
    cumulative = np.cumsum(thresholds, axis=1)
    intercepts = np.concatenate(
        [np.zeros((num_items, 1)), -base[:, np.newaxis] * cumulative], axis=1
    )
    return BockModel(slopes=slopes, intercepts=intercepts)


def make_samejima_model(
    num_items: int,
    num_options: int,
    *,
    difficulty_range: Tuple[float, float] = DEFAULT_DIFFICULTY_RANGE,
    discrimination_range: Tuple[float, float] = DEFAULT_DISCRIMINATION_RANGE,
    random_state: RandomState = None,
) -> SamejimaModel:
    """Sample a random Samejima multiple-choice model.

    The visible options follow the Bock/GRM correspondence (see
    :func:`make_bock_model`) with slopes ``(h+1) * a_i`` for
    ``h = 0 .. k-1`` and crossovers at ordered thresholds
    ``b_0 < b_1 < ... < b_{k-1}`` drawn from ``difficulty_range``.  The
    latent "don't know" option has slope 0 and intercept 0, so it dominates
    for abilities below the lowest threshold ``b_0`` — users who are not
    even able to identify the worst-fitting option guess uniformly at
    random, which is exactly the random-guessing behaviour Samejima's model
    adds on top of Bock.
    """
    if num_options < 2:
        raise ValueError("Samejima model needs at least 2 visible options")
    rng = np.random.default_rng(random_state)
    a_low, a_high = discrimination_range
    scale = 2.0 / (num_options + 1)
    base = rng.uniform(a_low * scale, a_high * scale, size=num_items)
    low, high = difficulty_range
    # One threshold per visible option: the lowest is the "start guessing"
    # boundary between the latent option and the worst visible option.
    thresholds = np.sort(rng.uniform(low, high, size=(num_items, num_options)), axis=1)
    multipliers = np.arange(1, num_options + 1, dtype=float)
    visible_slopes = base[:, np.newaxis] * multipliers[np.newaxis, :]
    visible_intercepts = -base[:, np.newaxis] * np.cumsum(thresholds, axis=1)
    latent_slope = np.zeros((num_items, 1))
    latent_intercept = np.zeros((num_items, 1))
    slopes = np.concatenate([latent_slope, visible_slopes], axis=1)
    intercepts = np.concatenate([latent_intercept, visible_intercepts], axis=1)
    return SamejimaModel(slopes=slopes, intercepts=intercepts)


# --------------------------------------------------------------------------- #
# Dataset generation
# --------------------------------------------------------------------------- #
def _apply_missingness(
    choices: np.ndarray,
    answer_probability: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Mask each (user, item) cell independently with probability ``1 - p``."""
    if not 0 < answer_probability <= 1:
        raise ValueError("answer_probability must be in (0, 1]")
    if answer_probability >= 1.0:
        return choices
    mask = rng.random(choices.shape) < answer_probability
    masked = np.where(mask, choices, NO_ANSWER)
    # Guarantee that every user answers at least one item and every item is
    # answered by at least one user so the bipartite graph stays usable.
    for j in range(masked.shape[0]):
        if np.all(masked[j] == NO_ANSWER):
            i = int(rng.integers(masked.shape[1]))
            masked[j, i] = choices[j, i]
    for i in range(masked.shape[1]):
        if np.all(masked[:, i] == NO_ANSWER):
            j = int(rng.integers(masked.shape[0]))
            masked[j, i] = choices[j, i]
    return masked


def build_model(
    model_name: str,
    num_items: int,
    num_options: int,
    *,
    difficulty_range: Tuple[float, float] = DEFAULT_DIFFICULTY_RANGE,
    discrimination_range: Tuple[float, float] = DEFAULT_DISCRIMINATION_RANGE,
    random_state: RandomState = None,
) -> PolytomousModel:
    """Instantiate a random polytomous model by name ("grm", "bock", "samejima")."""
    name = model_name.lower()
    if name == "grm":
        return make_grm_model(
            num_items,
            num_options,
            difficulty_range=difficulty_range,
            discrimination_range=discrimination_range,
            random_state=random_state,
        )
    if name == "bock":
        return make_bock_model(
            num_items,
            num_options,
            difficulty_range=difficulty_range,
            discrimination_range=discrimination_range,
            random_state=random_state,
        )
    if name == "samejima":
        return make_samejima_model(
            num_items,
            num_options,
            difficulty_range=difficulty_range,
            discrimination_range=discrimination_range,
            random_state=random_state,
        )
    raise ValueError("unknown model %r; expected one of %s" % (model_name, (MODEL_NAMES,)))


def generate_dataset(
    model_name: str,
    num_users: int,
    num_items: int,
    num_options: int = 3,
    *,
    ability_range: Tuple[float, float] = DEFAULT_ABILITY_RANGE,
    difficulty_range: Tuple[float, float] = DEFAULT_DIFFICULTY_RANGE,
    discrimination_range: Tuple[float, float] = DEFAULT_DISCRIMINATION_RANGE,
    answer_probability: float = 1.0,
    random_state: RandomState = None,
) -> SyntheticDataset:
    """Generate a full synthetic ability-discovery instance.

    This is the workhorse behind the Figure 4 / Figure 9 experiments: pick a
    polytomous model, sample abilities and item parameters from the given
    ranges, sample responses, optionally drop answers with probability
    ``1 - answer_probability`` (Figure 4g), and return everything with
    ground truth attached.
    """
    rng = np.random.default_rng(random_state)
    model = build_model(
        model_name,
        num_items,
        num_options,
        difficulty_range=difficulty_range,
        discrimination_range=discrimination_range,
        random_state=rng,
    )
    abilities = sample_abilities(num_users, ability_range, random_state=rng)
    choices = model.sample(abilities, random_state=rng)
    choices = _apply_missingness(choices, answer_probability, rng)
    response = ResponseMatrix(choices, num_options=num_options)
    return SyntheticDataset(
        response=response,
        abilities=abilities,
        correct_options=model.correct_options,
        model_name=model.name,
        metadata={
            "ability_range": ability_range,
            "difficulty_range": difficulty_range,
            "discrimination_range": discrimination_range,
            "answer_probability": answer_probability,
            "model": model,
        },
    )


def generate_c1p_dataset(
    num_users: int,
    num_items: int,
    num_options: int = 3,
    *,
    random_state: RandomState = None,
) -> SyntheticDataset:
    """Generate an ideal consistent-response (C1P) instance.

    The paper (Section IV-B item 6 and Appendix D-D) uses a GRM instance in
    the ``a -> infinity`` limit: both abilities and thresholds lie in
    ``[0, 1]`` and a user with ability between thresholds ``b_h`` and
    ``b_{h+1}`` deterministically picks option ``h``.  To break the
    left/right symmetry of a perfectly even design, 10% of the users are
    drawn from ``[0, 0.5]`` and 90% from ``[0.5, 1]``.
    """
    rng = np.random.default_rng(random_state)
    num_low = max(1, int(round(0.1 * num_users)))
    num_high = num_users - num_low
    abilities = np.concatenate(
        [rng.uniform(0.0, 0.5, size=num_low), rng.uniform(0.5, 1.0, size=num_high)]
    )
    rng.shuffle(abilities)
    thresholds = np.sort(rng.uniform(0.0, 1.0, size=(num_items, num_options - 1)), axis=1)
    # Deterministic Heaviside responses: count how many thresholds the
    # ability exceeds.
    choices = (abilities[:, np.newaxis, np.newaxis] > thresholds[np.newaxis, :, :]).sum(axis=2)
    response = ResponseMatrix(choices.astype(int), num_options=num_options)
    return SyntheticDataset(
        response=response,
        abilities=abilities,
        correct_options=np.full(num_items, num_options - 1, dtype=int),
        model_name="c1p",
        metadata={"thresholds": thresholds},
    )
