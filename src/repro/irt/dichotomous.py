"""Dichotomous (binary) Item Response Theory models.

Appendix C-A of the paper describes four binary models, all variations of
the logistic response function ``sigma(x) = 1 / (1 + exp(-x))``:

* **1PL / Rasch**: one difficulty parameter ``b`` per item.
* **2PL**: adds a discrimination parameter ``a`` per item.
* **GLAD**: the crowdsourcing special case of 2PL with all ``b = 0``.
* **3PL**: adds a guessing parameter ``c`` per item (lower asymptote).

Each model exposes the probability of a correct answer ``P_i(theta)`` and a
sampler that draws binary response matrices, which the American-Experience
simulation (Figure 12) uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


@dataclass(frozen=True)
class DichotomousItemBank:
    """Item parameters for a bank of binary items.

    Attributes
    ----------
    difficulty:
        ``b_i`` per item, shape ``(n,)``.
    discrimination:
        ``a_i`` per item, shape ``(n,)``.  All ones for the 1PL model.
    guessing:
        ``c_i`` per item, shape ``(n,)``.  All zeros for 1PL/2PL/GLAD.
    """

    difficulty: np.ndarray
    discrimination: np.ndarray
    guessing: np.ndarray

    def __post_init__(self) -> None:
        difficulty = np.atleast_1d(np.asarray(self.difficulty, dtype=float))
        discrimination = np.atleast_1d(np.asarray(self.discrimination, dtype=float))
        guessing = np.atleast_1d(np.asarray(self.guessing, dtype=float))
        if not (difficulty.shape == discrimination.shape == guessing.shape):
            raise ValueError("difficulty, discrimination and guessing must share a shape")
        if np.any(guessing < 0) or np.any(guessing >= 1):
            raise ValueError("guessing parameters must lie in [0, 1)")
        object.__setattr__(self, "difficulty", difficulty)
        object.__setattr__(self, "discrimination", discrimination)
        object.__setattr__(self, "guessing", guessing)

    @property
    def num_items(self) -> int:
        return int(self.difficulty.size)


class DichotomousModel:
    """Base class for binary IRT models over a :class:`DichotomousItemBank`."""

    def __init__(self, items: DichotomousItemBank) -> None:
        self.items = items

    @property
    def num_items(self) -> int:
        return self.items.num_items

    def probability(self, abilities: Union[float, np.ndarray]) -> np.ndarray:
        """Probability of a correct answer, shape ``(num_users, num_items)``.

        ``P_i(theta) = c_i + (1 - c_i) * sigma(a_i (theta - b_i))`` — the 3PL
        response function, which specializes to all the other binary models.
        """
        theta = np.atleast_1d(np.asarray(abilities, dtype=float))[:, np.newaxis]
        a = self.items.discrimination[np.newaxis, :]
        b = self.items.difficulty[np.newaxis, :]
        c = self.items.guessing[np.newaxis, :]
        return c + (1.0 - c) * sigmoid(a * (theta - b))

    def sample(
        self,
        abilities: np.ndarray,
        random_state: Optional[Union[int, np.random.Generator]] = None,
    ) -> np.ndarray:
        """Sample a binary ``(num_users, num_items)`` correctness matrix."""
        rng = np.random.default_rng(random_state)
        probabilities = self.probability(abilities)
        return (rng.random(probabilities.shape) < probabilities).astype(int)


class OnePLModel(DichotomousModel):
    """Rasch / 1PL model: ``P_i(theta) = sigma(theta - b_i)``."""

    def __init__(self, difficulty: np.ndarray) -> None:
        difficulty = np.atleast_1d(np.asarray(difficulty, dtype=float))
        super().__init__(
            DichotomousItemBank(
                difficulty=difficulty,
                discrimination=np.ones_like(difficulty),
                guessing=np.zeros_like(difficulty),
            )
        )


class TwoPLModel(DichotomousModel):
    """2PL model: ``P_i(theta) = sigma(a_i (theta - b_i))``."""

    def __init__(self, difficulty: np.ndarray, discrimination: np.ndarray) -> None:
        difficulty = np.atleast_1d(np.asarray(difficulty, dtype=float))
        discrimination = np.atleast_1d(np.asarray(discrimination, dtype=float))
        super().__init__(
            DichotomousItemBank(
                difficulty=difficulty,
                discrimination=discrimination,
                guessing=np.zeros_like(difficulty),
            )
        )


class GLADModel(DichotomousModel):
    """GLAD model: 2PL with every difficulty tied to zero.

    A user of ability 0 answers every item correctly with probability 1/2.
    """

    def __init__(self, discrimination: np.ndarray) -> None:
        discrimination = np.atleast_1d(np.asarray(discrimination, dtype=float))
        super().__init__(
            DichotomousItemBank(
                difficulty=np.zeros_like(discrimination),
                discrimination=discrimination,
                guessing=np.zeros_like(discrimination),
            )
        )


class ThreePLModel(DichotomousModel):
    """3PL model: adds a random-guessing lower asymptote ``c_i``."""

    def __init__(
        self,
        difficulty: np.ndarray,
        discrimination: np.ndarray,
        guessing: np.ndarray,
    ) -> None:
        super().__init__(
            DichotomousItemBank(
                difficulty=np.atleast_1d(np.asarray(difficulty, dtype=float)),
                discrimination=np.atleast_1d(np.asarray(discrimination, dtype=float)),
                guessing=np.atleast_1d(np.asarray(guessing, dtype=float)),
            )
        )
