"""Solver state for warm-started (incremental) rank updates.

The iterative methods in this library — HnD's power iteration, the
Dawid–Skene EM loop, and the HITS-family trust iterations — are fixed-point
solvers: the answer is the fixed point, and the iterate they carry between
steps (a score vector, a truth-posterior table) is *state* that any nearby
crowd can reuse.  After an ``add_answers`` batch the previous solution is an
excellent initial iterate: the solver re-converges in the handful of
iterations the perturbation actually needs instead of paying a full cold
solve (see ``benchmarks/BENCH_PR5.json`` for the committed numbers at the
200k x 5k scale).

:class:`SolverState` is the uniform container those methods capture into and
restore from.  A warm start never changes *what* is computed — it is only a
different initial iterate, so the backends' bit-identity guarantee is
preserved: given the same state, the fused, thread, and process backends
walk the same trajectory bit for bit.  What a warm start *does* relax is
history-independence: a warm-started solve stops at a point within the
method's convergence tolerance of the cold solution, not bitwise at it,
which is why warm starting is opt-in
(:meth:`repro.api.session.CrowdSession.rank` with ``warm_start=True``).

Adaptation rules (append-only sessions only ever *grow*):

* per-user vectors pad new trailing users with the method's cold initial
  value;
* per-item tables pad new trailing items with the cold initial rows;
* anything else — a different method name, a shrunk axis, a changed class
  count, non-finite entries — is *incompatible* and the caller falls back
  to a cold start (reported in the ranking diagnostics as
  ``warm_start="incompatible-cold"``).

The residual blow-up guard lives with the solvers: each convergence loop
aborts on a non-finite residual, and the warm-capable rankers rerun cold
whenever a warm attempt fails to converge (``warm_start="fallback-cold"``),
so an adversarial or stale state can cost time but never corrupt a result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np


@dataclass
class SolverState:
    """Captured iteration state of one converged (or stopped) solver run.

    Attributes
    ----------
    method:
        Registry name of the method that produced the state; a state is
        only ever restored into the same method.
    vectors:
        The solver-specific iterate arrays, e.g. ``{"diff_vector": ...}``
        for HnD-Power or ``{"posteriors": ...}`` for Dawid–Skene.  Stored
        as copies — a state is immutable once captured.
    iterations:
        Iterations the producing run performed.
    residual:
        The producing run's final convergence residual.
    """

    method: str
    vectors: Dict[str, np.ndarray] = field(default_factory=dict)
    iterations: int = 0
    residual: float = float("inf")

    def __post_init__(self) -> None:
        self.vectors = {
            name: np.array(value, dtype=float, copy=True)
            for name, value in self.vectors.items()
        }

    def vector(self, name: str) -> Optional[np.ndarray]:
        return self.vectors.get(name)


def warm_vector(
    state: Optional[SolverState],
    method: str,
    name: str,
    size: int,
    fill,
) -> Optional[np.ndarray]:
    """Adapt a stored 1-D iterate to ``size`` entries, or ``None``.

    ``fill`` supplies the cold initial value for appended trailing entries:
    a scalar, or a length-``size`` array of cold initial values (the stored
    prefix overwrites its head).  Returns ``None`` — *incompatible*, use a
    cold start — when the state is missing, captured by another method, or
    larger than ``size`` (axes only grow in append-only sessions).
    Non-finite entries pass through deliberately: the solvers' residual
    blow-up guard handles them (one aborted iteration, then a cold rerun).
    """
    if state is None or state.method != method:
        return None
    stored = state.vector(name)
    if stored is None:
        return None
    stored = np.asarray(stored, dtype=float).ravel()
    if stored.size > size or stored.size == 0:
        return None
    out = np.empty(size, dtype=float)
    if np.ndim(fill) == 0:
        out.fill(float(fill))
    else:
        np.copyto(out, np.asarray(fill, dtype=float))
    out[:stored.size] = stored
    return out


def warm_table(
    state: Optional[SolverState],
    method: str,
    name: str,
    cold: np.ndarray,
) -> Optional[np.ndarray]:
    """Adapt a stored 2-D iterate onto the cold initial table, or ``None``.

    The stored rows overwrite the head of a copy of ``cold`` (appended
    items keep their cold initial rows).  The column count must match
    exactly — a changed class count invalidates the state — and the stored
    rows must fit; otherwise returns ``None``.  Non-finite entries pass
    through for the solvers' blow-up guard to catch.
    """
    if state is None or state.method != method:
        return None
    stored = state.vector(name)
    if stored is None:
        return None
    stored = np.asarray(stored, dtype=float)
    if stored.ndim != 2 or stored.shape[1] != cold.shape[1]:
        return None
    if stored.shape[0] > cold.shape[0] or stored.shape[0] == 0:
        return None
    out = np.array(cold, dtype=float, copy=True)
    out[:stored.shape[0]] = stored
    return out
