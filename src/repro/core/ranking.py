"""Ranking result objects and the common ranker interface.

Every ability-discovery method in this library — HND variants, ABH variants,
and the truth-discovery baselines — implements the :class:`AbilityRanker`
interface: it consumes a :class:`~repro.core.response.ResponseMatrix` and
returns an :class:`AbilityRanking` with per-user scores, the induced order,
and method-specific diagnostics (iterations, convergence, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.response import ResponseMatrix
from repro.core.solver_state import SolverState


@dataclass
class AbilityRanking:
    """The outcome of ranking users by ability.

    Attributes
    ----------
    scores:
        Per-user ability score (length ``m``); higher means more able.
        Scores are only meaningful up to monotone transformations — the
        object of interest is the induced ranking.
    method:
        Name of the method that produced the ranking.
    diagnostics:
        Method-specific extras (iterations, convergence flags, eigenvector
        variance, orientation-entropy values, ...).
    state:
        The :class:`~repro.core.solver_state.SolverState` the solver ended
        in, for methods that support warm-started re-ranking (``None``
        otherwise).  The rank cache stores it alongside the scores so an
        appended crowd can re-converge from it instead of solving cold.
    """

    scores: np.ndarray
    method: str
    diagnostics: Dict[str, object] = field(default_factory=dict)
    state: Optional[SolverState] = None

    def __post_init__(self) -> None:
        self.scores = np.asarray(self.scores, dtype=float).ravel()

    @property
    def num_users(self) -> int:
        return int(self.scores.size)

    @property
    def order(self) -> np.ndarray:
        """User indices sorted from lowest to highest score (stable)."""
        return np.argsort(self.scores, kind="stable")

    @property
    def ranks(self) -> np.ndarray:
        """Rank of each user (0 = lowest score), with ties averaged.

        Average ranks make downstream Spearman correlations well defined in
        the presence of ties, matching :func:`scipy.stats.spearmanr`.
        """
        scores = self.scores
        order = np.argsort(scores, kind="stable")
        ranks = np.empty(scores.size, dtype=float)
        ranks[order] = np.arange(scores.size, dtype=float)
        # Average ranks over groups of tied scores.
        unique, inverse, counts = np.unique(scores, return_inverse=True, return_counts=True)
        if unique.size != scores.size:
            sums = np.zeros(unique.size)
            np.add.at(sums, inverse, ranks)
            ranks = sums[inverse] / counts[inverse]
        return ranks

    def top_users(self, count: int) -> np.ndarray:
        """Indices of the ``count`` highest-scoring users, best first."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return self.order[::-1][:count]

    def bottom_users(self, count: int) -> np.ndarray:
        """Indices of the ``count`` lowest-scoring users, worst first."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return self.order[:count]

    def reversed(self) -> "AbilityRanking":
        """The same ranking with the orientation flipped (scores negated)."""
        return AbilityRanking(
            scores=-self.scores,
            method=self.method,
            diagnostics={**self.diagnostics, "reversed": True},
        )


class AbilityRanker:
    """Abstract base class of all ranking methods.

    Subclasses implement :meth:`rank`; the class-level :attr:`name` is used
    in experiment tables and plots.
    """

    #: Short method name used in result tables (e.g. "HnD", "ABH", "HITS").
    name: str = "ranker"

    def rank(self, response: ResponseMatrix) -> AbilityRanking:
        """Rank the users of ``response`` by ability."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class SupervisedAbilityRanker(AbilityRanker):
    """Base class for "cheating" baselines that need ground-truth information.

    The paper's True-answer and GRM-estimator baselines receive the correct
    option (or the correctness order of options) for every item — knowledge
    an unsupervised ability-discovery method does not have.
    """

    def rank(self, response: ResponseMatrix) -> AbilityRanking:
        raise NotImplementedError


def ranking_from_scores(scores: np.ndarray, method: str,
                        diagnostics: Optional[Dict[str, object]] = None) -> AbilityRanking:
    """Convenience constructor used by the ranker implementations."""
    return AbilityRanking(scores=np.asarray(scores, dtype=float), method=method,
                          diagnostics=diagnostics or {})
