"""Decile-entropy symmetry breaking (Section III-D of the paper).

Any C1P-style ordering method only determines the user order up to reversal.
The paper breaks the symmetry with an observation borrowed from the
"experts agree" principle: high-ability users converge on the correct
option, so the *top* decile of the true ordering has lower average
per-item choice entropy than the *bottom* decile (who guess more randomly).

Given candidate scores, :func:`orient_scores` computes the average entropy
of the items' option distributions restricted to the top and bottom deciles
and flips the scores when the supposedly-best users look noisier than the
supposedly-worst ones.  HND and ABH both use this heuristic in the paper's
experiments.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.response import ResponseMatrix


def decile_entropies(
    response: ResponseMatrix,
    scores: np.ndarray,
    *,
    decile: float = 0.1,
) -> Tuple[float, float]:
    """Average choice entropy of the bottom and top score deciles.

    Parameters
    ----------
    response:
        The observed responses.
    scores:
        Candidate ability scores (orientation unknown).
    decile:
        Fraction of users in each extreme group (default 10%, at least one
        user per group).

    Returns
    -------
    (bottom_entropy, top_entropy)
    """
    scores = np.asarray(scores, dtype=float).ravel()
    if scores.size != response.num_users:
        raise ValueError(
            "scores length %d does not match number of users %d"
            % (scores.size, response.num_users)
        )
    if not 0 < decile <= 0.5:
        raise ValueError("decile must be in (0, 0.5]")
    group_size = max(1, int(round(decile * scores.size)))
    order = np.argsort(scores, kind="stable")
    bottom_users = order[:group_size]
    top_users = order[-group_size:]
    bottom_entropy = response.choice_entropy(bottom_users)
    top_entropy = response.choice_entropy(top_users)
    return bottom_entropy, top_entropy


def orient_scores(
    response: ResponseMatrix,
    scores: np.ndarray,
    *,
    decile: float = 0.1,
) -> Tuple[np.ndarray, dict]:
    """Return scores oriented so that higher score means higher ability.

    The orientation whose top decile has the *lower* entropy is kept.
    Returns the (possibly negated) scores and a diagnostics dictionary with
    the two entropies and whether a flip happened.
    """
    scores = np.asarray(scores, dtype=float).ravel()
    bottom_entropy, top_entropy = decile_entropies(response, scores, decile=decile)
    flipped = top_entropy > bottom_entropy
    oriented = -scores if flipped else scores.copy()
    diagnostics = {
        "symmetry_bottom_entropy": float(bottom_entropy),
        "symmetry_top_entropy": float(top_entropy),
        "symmetry_flipped": bool(flipped),
    }
    return oriented, diagnostics
