"""Response-matrix data structure for heterogeneous multiclass classification.

The paper represents user answers in two equivalent forms (Figure 1b):

* the raw ``(m x n)`` *choice matrix* ``C'`` where entry ``(j, i)`` is the
  index of the option user ``j`` picked for item ``i`` (or "no answer"), and
* the one-hot ``(m x kn)`` *binary response matrix* ``C`` with a column per
  (item, option) pair.

:class:`ResponseMatrix` stores the raw form, validates it, and lazily
derives the binary form (sparse), its row/column normalizations, and the
user-similarity products required by the ranking algorithms.  All spectral
methods in :mod:`repro.core` and :mod:`repro.c1p` and all baselines in
:mod:`repro.truth_discovery` consume this class.

Performance model
-----------------
Because each user picks *at most one* option per item, every derived form
is a function of the flat nonzero triples ``(user, item, option)``.  The
:class:`CompiledResponse` cache (:attr:`ResponseMatrix.compiled`) builds
those index arrays, the per-user/per-column counts, and the binary CSR
matrix **once per matrix** in ``O(nnz)`` — with no Python loops, no
``.tolist()`` round-trips, and no sparse-sparse normalization products:

* the binary CSR is assembled directly from ``(data, indices, indptr)``
  (``numpy.nonzero`` yields row-major order, which *is* canonical CSR);
* its transpose is a free ``csc_matrix`` view over the same three arrays;
* ``C_row`` / ``C_col`` reuse the binary matrix's index structure and only
  swap the data vector, so normalization costs ``O(nnz)`` array writes
  instead of a ``diags() @ matrix`` sparse product.

All rankers consume these caches, so repeated ``rank()`` calls on the same
matrix never rebuild derived state (the hot path of a ranking service).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import DisconnectedGraphError, InvalidResponseMatrixError

#: Sentinel used in the raw choice matrix for "user did not answer this item".
NO_ANSWER = -1


class CompiledResponse:
    """Flat ``O(nnz)`` kernel representation of a :class:`ResponseMatrix`.

    Built once per matrix (see :attr:`ResponseMatrix.compiled`) and shared
    by every ranker.  Holds the binary CSR matrix, its zero-copy transpose,
    the per-user/per-column counts with their (zero-safe) inverses, and —
    lazily — the flat ``(user, item, option)`` triple arrays that the
    vectorized EM baselines scatter/gather over.

    Attributes
    ----------
    binary:
        The one-hot ``(m x K)`` response matrix ``C`` in CSR form,
        ``K = sum_i k_i``.
    binary_t:
        ``C^T`` as a ``(K x m)`` CSC matrix sharing ``binary``'s data and
        index arrays (CSR of ``A`` and CSC of ``A^T`` have identical
        memory layouts, so the transpose costs nothing).
    answers_per_user, answers_per_item, column_counts:
        Nonzero counts per user row, item, and binary column.
    inv_answers_per_user, inv_column_counts:
        Elementwise inverses with ``1/0 -> 0`` — exactly the diagonal
        scalings of the paper's ``C_row`` and ``C_col`` normalizations.
    column_item:
        Item index of every binary column (length ``K``).
    """

    __slots__ = (
        "num_users",
        "num_items",
        "num_columns",
        "column_offsets",
        "binary",
        "binary_t",
        "answers_per_user",
        "answers_per_item",
        "column_counts",
        "inv_answers_per_user",
        "inv_column_counts",
        "column_item",
        "_user_index",
        "_item_index",
        "_option_index",
    )

    def __init__(self, choices: np.ndarray, column_offsets: np.ndarray) -> None:
        num_users, num_items = choices.shape
        num_columns = int(column_offsets[-1])
        self.num_users = num_users
        self.num_items = num_items
        self.num_columns = num_columns
        self.column_offsets = column_offsets

        mask = choices != NO_ANSWER
        answers_per_user = mask.sum(axis=1)
        self.answers_per_user = answers_per_user
        self.answers_per_item = mask.sum(axis=0)

        index_dtype = (
            np.int32
            if max(num_columns, num_users, choices.size) < np.iinfo(np.int32).max
            else np.int64
        )
        # Column id of every answered (user, item) pair; the unanswered
        # entries hold junk (NO_ANSWER + offset) but are masked out below.
        # numpy's row-major ravel order makes `indices` canonical CSR:
        # rows ascending, columns sorted within each row.
        column_matrix = choices + column_offsets[:-1]
        indices = column_matrix.ravel()[mask.ravel()].astype(index_dtype, copy=False)
        indptr = np.zeros(num_users + 1, dtype=index_dtype)
        np.cumsum(answers_per_user, out=indptr[1:])
        data = np.ones(indices.size, dtype=float)
        # Assign the arrays directly instead of going through the
        # (data, indices, indptr) constructor, which copies data/indices;
        # the triple is canonical CSR by construction (see above), and both
        # matrices genuinely share one set of arrays this way.
        self.binary = sp.csr_matrix((num_users, num_columns), dtype=float)
        self.binary.data, self.binary.indices, self.binary.indptr = data, indices, indptr
        self.binary_t = sp.csc_matrix((num_columns, num_users), dtype=float)
        self.binary_t.data, self.binary_t.indices, self.binary_t.indptr = data, indices, indptr
        # The shared triple also backs every normalized form derived from
        # it; freeze it so an in-place edit on a returned matrix cannot
        # silently corrupt the per-matrix cache.
        for array in (data, indices, indptr):
            array.flags.writeable = False

        self.column_counts = np.bincount(indices, minlength=num_columns)
        self.inv_answers_per_user = _safe_inverse(answers_per_user)
        self.inv_column_counts = _safe_inverse(self.column_counts)
        self.column_item = np.repeat(
            np.arange(num_items), np.diff(column_offsets).astype(int)
        )

        self._user_index: Optional[np.ndarray] = None
        self._item_index: Optional[np.ndarray] = None
        self._option_index: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Flat triple arrays (lazy; the EM baselines scatter/gather on these)
    # ------------------------------------------------------------------ #
    @property
    def num_nonzero(self) -> int:
        """Total number of answers (nonzeros of the binary matrix)."""
        return int(self.binary.indices.size)

    @property
    def column_index(self) -> np.ndarray:
        """Binary-column id of each answer, in user-major order."""
        return self.binary.indices

    @property
    def user_index(self) -> np.ndarray:
        """User id of each answer, in user-major order."""
        if self._user_index is None:
            self._user_index = np.repeat(
                np.arange(self.num_users), self.answers_per_user
            )
        return self._user_index

    @property
    def item_index(self) -> np.ndarray:
        """Item id of each answer, aligned with :attr:`user_index`."""
        if self._item_index is None:
            self._item_index = self.column_item[self.binary.indices]
        return self._item_index

    @property
    def option_index(self) -> np.ndarray:
        """Chosen option of each answer, aligned with :attr:`user_index`."""
        if self._option_index is None:
            starts = np.asarray(self.column_offsets[:-1])
            self._option_index = self.binary.indices - starts[self.item_index]
        return self._option_index

    # ------------------------------------------------------------------ #
    # O(nnz) kernels
    # ------------------------------------------------------------------ #
    def option_sums(self, user_values: np.ndarray) -> np.ndarray:
        """``C^T v``: sum of ``user_values`` over the users picking each column."""
        return self.binary_t @ np.asarray(user_values, dtype=float)

    def user_sums(self, option_values: np.ndarray) -> np.ndarray:
        """``C v``: sum of ``option_values`` over each user's picked columns."""
        return self.binary @ np.asarray(option_values, dtype=float)

    def avghits_apply(self, scores: np.ndarray) -> np.ndarray:
        """Fused AVGHITS update ``s -> C_row ((C_col)^T s)`` in ``O(nnz)``.

        The normalizations are folded into two tiny diagonal scalings
        (length ``K`` and ``m``) around the cached matrix-vector products,
        so no normalized matrix is ever materialized.
        """
        weights = self.binary_t @ scores
        weights *= self.inv_column_counts
        updated = self.binary @ weights
        updated *= self.inv_answers_per_user
        return updated


def _safe_inverse(counts: np.ndarray) -> np.ndarray:
    """``1 / counts`` with ``1 / 0 -> 0`` (matches ``normalize_rows``' zeros)."""
    counts = np.asarray(counts, dtype=float)
    return np.where(counts > 0, 1.0 / np.maximum(counts, 1.0), 0.0)


def _read_only(array: np.ndarray) -> np.ndarray:
    """Mark a cached array read-only so shared caches cannot be corrupted."""
    array.flags.writeable = False
    return array


class ResponseMatrix:
    """User responses to heterogeneous multiple-choice items.

    Parameters
    ----------
    choices:
        Integer array of shape ``(m, n)``.  ``choices[j, i]`` is the 0-based
        option index picked by user ``j`` for item ``i`` or :data:`NO_ANSWER`
        (-1) when the user skipped the item.
    num_options:
        Number of options per item.  Either a single int (every item has the
        same number of options) or a sequence of length ``n``.  When omitted
        it is inferred as ``max(choice) + 1`` per item (at least 2).

    Raises
    ------
    InvalidResponseMatrixError
        If the array is empty, non-integer, contains choices outside the
        declared option range, or every entry of some user/item is missing.

    Notes
    -----
    Derived forms (:attr:`binary`, :attr:`answered_mask`, the
    normalizations, and the :attr:`compiled` kernel representation) are
    computed once and cached; array-valued caches are returned as
    **read-only** views so accidental mutation cannot corrupt shared state.
    """

    def __init__(
        self,
        choices: np.ndarray,
        num_options: Optional[Sequence[int] | int] = None,
    ) -> None:
        choices = np.asarray(choices)
        if choices.ndim != 2 or choices.size == 0:
            raise InvalidResponseMatrixError(
                "choices must be a non-empty 2-D array, got shape %s" % (choices.shape,)
            )
        if not np.issubdtype(choices.dtype, np.integer):
            if np.issubdtype(choices.dtype, np.floating) and np.all(
                np.isnan(choices) | (choices == np.floor(choices))
            ):
                converted = np.where(np.isnan(choices), NO_ANSWER, choices)
                choices = converted.astype(int)
            else:
                raise InvalidResponseMatrixError("choices must contain integers")
        self._choices = choices.astype(int, copy=True)
        self._m, self._n = self._choices.shape

        if np.any(self._choices < NO_ANSWER):
            raise InvalidResponseMatrixError("choices must be >= -1")

        max_choice_per_item = self._choices.max(axis=0)
        if num_options is None:
            per_item = np.maximum(max_choice_per_item + 1, 2)
        elif np.isscalar(num_options):
            per_item = np.full(self._n, int(num_options), dtype=int)
        else:
            per_item = np.asarray(list(num_options), dtype=int)
            if per_item.shape != (self._n,):
                raise InvalidResponseMatrixError(
                    "num_options must have one entry per item (%d), got %d"
                    % (self._n, per_item.size)
                )
        if np.any(per_item < 1):
            raise InvalidResponseMatrixError("every item needs at least one option")
        exceeded = max_choice_per_item >= per_item
        if np.any(exceeded & (max_choice_per_item >= 0)):
            bad = int(np.flatnonzero(exceeded)[0])
            raise InvalidResponseMatrixError(
                "item %d has a choice index >= its number of options (%d)"
                % (bad, per_item[bad])
            )
        self._num_options = per_item

        if np.all(self._choices == NO_ANSWER):
            raise InvalidResponseMatrixError("the response matrix contains no answers at all")

        # Lazily computed caches.
        self._column_offsets: Optional[np.ndarray] = None
        self._compiled: Optional[CompiledResponse] = None
        self._answered_mask: Optional[np.ndarray] = None
        self._answers_per_user: Optional[np.ndarray] = None
        self._answers_per_item: Optional[np.ndarray] = None
        self._row_normalized: Optional[sp.csr_matrix] = None
        self._column_normalized: Optional[sp.csr_matrix] = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_binary(cls, binary: np.ndarray | sp.spmatrix, num_options: Sequence[int] | int) -> "ResponseMatrix":
        """Build a :class:`ResponseMatrix` from a one-hot ``(m x kn)`` matrix.

        The inverse of :attr:`binary`.  ``num_options`` is required because
        the flattened binary form does not record item boundaries on its own
        when items have different numbers of options.

        Sparse inputs are consumed in COO form without densification, and
        the choice matrix is reconstructed with a single vectorized
        scatter — ``O(nnz)`` instead of the per-item column scan this
        method used to perform.
        """
        if sp.issparse(binary):
            coo = binary.tocoo()
            # Collapse duplicate stored entries first so validation sees the
            # effective cell values, exactly like the seed's densified path
            # (e.g. two stored 0.5s are a valid 1; two stored 1s are an
            # invalid 2).
            coo.sum_duplicates()
            if np.any((coo.data != 0) & (coo.data != 1)):
                raise InvalidResponseMatrixError("binary matrix must contain only 0/1")
            keep = coo.data == 1
            rows = np.asarray(coo.row[keep], dtype=np.int64)
            cols = np.asarray(coo.col[keep], dtype=np.int64)
            m, total = binary.shape
        else:
            dense = np.asarray(binary)
            if dense.ndim != 2:
                raise InvalidResponseMatrixError("binary matrix must be 2-D")
            if np.any((dense != 0) & (dense != 1)):
                raise InvalidResponseMatrixError("binary matrix must contain only 0/1")
            m, total = dense.shape
            rows, cols = np.nonzero(dense)
        if np.isscalar(num_options):
            k = int(num_options)
            if total % k != 0:
                raise InvalidResponseMatrixError(
                    "binary width %d is not a multiple of k=%d" % (total, k)
                )
            per_item = np.full(total // k, k, dtype=int)
        else:
            per_item = np.asarray(list(num_options), dtype=int)
            if per_item.sum() != total:
                raise InvalidResponseMatrixError(
                    "sum of num_options (%d) must equal binary width (%d)"
                    % (per_item.sum(), total)
                )
        n = per_item.size
        offsets = np.concatenate([[0], np.cumsum(per_item)])
        item_of = np.searchsorted(offsets, cols, side="right") - 1
        # Detect two picks by one user on one item with an O(nnz log nnz)
        # sort-and-compare — a bincount over user-item pairs would allocate
        # O(m*n) memory, defeating the sparse path for large inputs.
        pair_keys = np.sort(rows * np.int64(n) + item_of)
        duplicates = pair_keys[1:][pair_keys[1:] == pair_keys[:-1]]
        if duplicates.size:
            bad_item = int(duplicates[0] % n)
            raise InvalidResponseMatrixError(
                "user may choose at most one option per item (item %d violates this)"
                % bad_item
            )
        choices = np.full((m, n), NO_ANSWER, dtype=int)
        choices[rows, item_of] = cols - offsets[item_of]
        return cls(choices, num_options=per_item)

    # ------------------------------------------------------------------ #
    # Basic shape properties
    # ------------------------------------------------------------------ #
    @property
    def num_users(self) -> int:
        """Number of users ``m``."""
        return self._m

    @property
    def num_items(self) -> int:
        """Number of items ``n``."""
        return self._n

    @property
    def num_options(self) -> np.ndarray:
        """Per-item number of options (length ``n``)."""
        return self._num_options.copy()

    @property
    def max_options(self) -> int:
        """``k``: the largest number of options any item has."""
        return int(self._num_options.max())

    @property
    def choices(self) -> np.ndarray:
        """Copy of the raw ``(m x n)`` choice matrix (``-1`` = unanswered)."""
        return self._choices.copy()

    @property
    def answered_mask(self) -> np.ndarray:
        """Boolean ``(m x n)`` mask of which (user, item) pairs were answered.

        Cached and returned read-only; copy before mutating.
        """
        if self._answered_mask is None:
            self._answered_mask = _read_only(self._choices != NO_ANSWER)
        return self._answered_mask

    @property
    def answers_per_user(self) -> np.ndarray:
        """Number of items each user answered (length ``m``, read-only)."""
        if self._answers_per_user is None:
            self._answers_per_user = _read_only(
                self.compiled.answers_per_user
                if self._compiled is not None
                else self.answered_mask.sum(axis=1)
            )
        return self._answers_per_user

    @property
    def answers_per_item(self) -> np.ndarray:
        """Number of users who answered each item (length ``n``, read-only)."""
        if self._answers_per_item is None:
            self._answers_per_item = _read_only(
                self.compiled.answers_per_item
                if self._compiled is not None
                else self.answered_mask.sum(axis=0)
            )
        return self._answers_per_item

    @property
    def is_complete(self) -> bool:
        """True when every user answered every item."""
        return bool(np.all(self.answered_mask))

    # ------------------------------------------------------------------ #
    # Binary (one-hot) representation and normalizations
    # ------------------------------------------------------------------ #
    @property
    def column_offsets(self) -> np.ndarray:
        """Start offset of each item's option block in the binary matrix.

        Cached and returned read-only (the compiled kernel representation is
        built on this array); copy before mutating.
        """
        if self._column_offsets is None:
            self._column_offsets = _read_only(
                np.concatenate([[0], np.cumsum(self._num_options)])
            )
        return self._column_offsets

    @property
    def num_option_columns(self) -> int:
        """Total number of (item, option) columns in the binary matrix."""
        return int(self.column_offsets[-1])

    @property
    def compiled(self) -> CompiledResponse:
        """The cached ``O(nnz)`` kernel representation (built on first use)."""
        if self._compiled is None:
            self._compiled = CompiledResponse(self._choices, self.column_offsets)
        return self._compiled

    @property
    def binary(self) -> sp.csr_matrix:
        """Sparse one-hot ``(m x sum_i k_i)`` binary response matrix ``C``."""
        return self.compiled.binary

    @property
    def binary_dense(self) -> np.ndarray:
        """Dense copy of :attr:`binary` (convenient for tests and small data)."""
        return np.asarray(self.binary.todense())

    def row_normalized(self) -> sp.csr_matrix:
        """``C_row``: the binary matrix with each row scaled to sum 1.

        Cached; built by swapping the binary matrix's data vector for the
        per-user inverse counts (no sparse-sparse product).
        """
        if self._row_normalized is None:
            compiled = self.compiled
            data = _read_only(
                np.repeat(compiled.inv_answers_per_user, compiled.answers_per_user)
            )
            self._row_normalized = sp.csr_matrix(
                (data, compiled.binary.indices, compiled.binary.indptr),
                shape=compiled.binary.shape,
                copy=False,
            )
        return self._row_normalized

    def column_normalized(self) -> sp.csr_matrix:
        """``C_col``: the binary matrix with each nonzero column scaled to sum 1.

        Cached; built by gathering the per-column inverse counts into the
        binary matrix's data slots (no sparse-sparse product).
        """
        if self._column_normalized is None:
            compiled = self.compiled
            data = _read_only(compiled.inv_column_counts[compiled.binary.indices])
            self._column_normalized = sp.csr_matrix(
                (data, compiled.binary.indices, compiled.binary.indptr),
                shape=compiled.binary.shape,
                copy=False,
            )
        return self._column_normalized

    def user_similarity(self) -> np.ndarray:
        """Dense ``C C^T``: counts of common (item, option) picks per user pair."""
        product = self.binary @ self.binary.T
        return np.asarray(product.todense(), dtype=float)

    # ------------------------------------------------------------------ #
    # Graph structure
    # ------------------------------------------------------------------ #
    def is_connected(self) -> bool:
        """Whether the user-option bipartite graph has a single component.

        Spectral ranking methods need this (Section III-B); otherwise users
        in different components cannot be compared.
        """
        binary = self.binary
        adjacency = sp.bmat(
            [[None, binary], [binary.T, None]], format="csr"
        )
        n_components, _ = sp.csgraph.connected_components(adjacency, directed=False)
        # Columns with no picks form their own components but carry no
        # information; ignore them by checking user-reachability instead.
        if n_components == 1:
            return True
        _, labels = sp.csgraph.connected_components(adjacency, directed=False)
        user_labels = labels[: self._m]
        return bool(np.unique(user_labels).size == 1)

    def require_connected(self) -> None:
        """Raise :class:`DisconnectedGraphError` unless the graph is connected."""
        if not self.is_connected():
            raise DisconnectedGraphError(
                "the user-option bipartite graph has multiple connected components; "
                "spectral ranking cannot compare users across components"
            )

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def permute_users(self, order: Sequence[int]) -> "ResponseMatrix":
        """Return a new matrix with the user rows reordered by ``order``."""
        order = np.asarray(order, dtype=int)
        if sorted(order.tolist()) != list(range(self._m)):
            raise ValueError("order must be a permutation of range(num_users)")
        return ResponseMatrix(self._choices[order], num_options=self._num_options)

    def subset_users(self, indices: Sequence[int]) -> "ResponseMatrix":
        """Return a new matrix restricted to the given users."""
        indices = np.asarray(indices, dtype=int)
        return ResponseMatrix(self._choices[indices], num_options=self._num_options)

    def subset_items(self, indices: Sequence[int]) -> "ResponseMatrix":
        """Return a new matrix restricted to the given items."""
        indices = np.asarray(indices, dtype=int)
        return ResponseMatrix(
            self._choices[:, indices], num_options=self._num_options[indices]
        )

    def drop_unanswered_items(self) -> "ResponseMatrix":
        """Drop items that nobody answered (they carry no ranking signal)."""
        keep = np.flatnonzero(self.answers_per_item > 0)
        if keep.size == self._n:
            return self
        return self.subset_items(keep)

    # ------------------------------------------------------------------ #
    # Per-item statistics used by baselines and symmetry breaking
    # ------------------------------------------------------------------ #
    def option_counts(self, item: int) -> np.ndarray:
        """How many users picked each option of ``item`` (length ``k_i``)."""
        column = self._choices[:, item]
        column = column[column != NO_ANSWER]
        return np.bincount(column, minlength=self._num_options[item]).astype(int)

    def _option_count_matrix(
        self, users: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """``(n x k_max)`` per-item option histograms in one bincount pass."""
        if users is None:
            choices = self._choices
        else:
            choices = self._choices[np.asarray(users, dtype=int)]
        k = self.max_options
        mask = choices != NO_ANSWER
        item_idx = np.broadcast_to(np.arange(self._n), choices.shape)[mask]
        flat = item_idx * k + choices[mask]
        return np.bincount(flat, minlength=self._n * k).reshape(self._n, k)

    def majority_choices(self) -> np.ndarray:
        """Most frequently picked option per item (ties broken by index)."""
        return self._option_count_matrix().argmax(axis=1).astype(int)

    def choice_entropy(self, users: Optional[Sequence[int]] = None) -> float:
        """Average per-item Shannon entropy of the option distribution.

        Restricted to the given ``users`` when provided.  This is the
        statistic behind the decile-entropy symmetry-breaking heuristic
        (Section III-D): high-ability users converge on the correct option
        and therefore produce lower entropy.  Computed for all items in a
        single vectorized pass; items nobody (in the subset) answered are
        excluded, like the per-item loop this replaces.
        """
        counts = self._option_count_matrix(users).astype(float)
        totals = counts.sum(axis=1)
        answered = totals > 0
        if not np.any(answered):
            return 0.0
        probabilities = counts[answered] / totals[answered, np.newaxis]
        # x * log2(x) -> 0 as x -> 0, so zero-probability options contribute
        # exactly 0.0 and the sum matches the nonzero-only loop bit for bit.
        contributions = np.zeros_like(probabilities)
        positive = probabilities > 0
        contributions[positive] = probabilities[positive] * np.log2(
            probabilities[positive]
        )
        entropies = -contributions.sum(axis=1)
        return float(np.mean(entropies))

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ResponseMatrix(num_users=%d, num_items=%d, max_options=%d)" % (
            self._m,
            self._n,
            self.max_options,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResponseMatrix):
            return NotImplemented
        return bool(
            np.array_equal(self._choices, other._choices)
            and np.array_equal(self._num_options, other._num_options)
        )

    def __hash__(self) -> int:
        return hash((self._choices.tobytes(), self._num_options.tobytes()))


def score_against_truth(response: ResponseMatrix, correct_options: Sequence[int]) -> np.ndarray:
    """Number of correctly answered items per user.

    This is the "True-answer" cheating baseline's scoring rule: it assumes
    the ground-truth correct option of every item is known.
    """
    correct = np.asarray(correct_options, dtype=int)
    if correct.shape != (response.num_items,):
        raise ValueError(
            "correct_options must have length %d, got %d"
            % (response.num_items, correct.size)
        )
    choices = response.choices
    return np.sum((choices == correct[np.newaxis, :]) & (choices != NO_ANSWER), axis=1)
