"""Triples-native response storage for heterogeneous multiclass classification.

The paper represents user answers in two equivalent forms (Figure 1b): the
raw ``(m x n)`` *choice matrix* ``C'`` whose entry ``(j, i)`` is the option
user ``j`` picked for item ``i``, and the one-hot ``(m x kn)`` *binary
response matrix* ``C``.  Because each user answers each item at most once,
both are functions of the flat answer triples ``(user, item, option)`` —
and at crowd scale the triples are the only form that fits in memory: a
500k-user x 20k-item workload at 0.1% density has ~10M answers but a ~80 GB
dense choice matrix.

Storage model
-------------
:class:`ResponseMatrix` therefore stores the **triples as its canonical
state**: three parallel ``int64`` arrays ``(user_index, item_index,
option_index)`` in canonical user-major order (sorted by ``(user, item)``),
plus the shape ``(m, n)`` and the per-item option counts.  Everything else
is a derived view:

* the dense choice matrix and the dense answered mask are **lazily
  materialized caches** (:attr:`choices`, :attr:`answered_mask`) that only
  small-scale consumers — tests, the ``reference.py`` oracles, explicit
  dense exports — ever touch; every production code path works on the
  triples, and sparse-scale workloads never allocate ``(m, n)`` state;
* the :class:`CompiledResponse` kernel cache (:attr:`compiled`) builds the
  binary CSR matrix, its zero-copy CSC transpose, and the per-user /
  per-column counts and inverses **once per matrix** in ``O(nnz)``;
* ``C_row`` / ``C_col`` reuse the binary matrix's index structure and only
  swap the data vector, so normalization costs ``O(nnz)`` array writes.

Construction paths
------------------
* :meth:`ResponseMatrix.from_triples` — the primary constructor: full
  ``O(nnz)`` validation (``O(nnz log nnz)`` only when the input is not
  already user-major sorted), never builds dense state.
* ``ResponseMatrix(choices)`` — dense ingestion for small data; validates
  the array, extracts the triples, and keeps the validated dense copy as
  the pre-populated view cache.
* :meth:`ResponseMatrix.from_binary` — one-hot ingestion (dense or sparse),
  routed through :meth:`from_triples`.
* :class:`ResponseBuilder` — incremental ingestion: append answer batches
  or whole users, then :meth:`ResponseBuilder.build`.
* :meth:`ResponseMatrix.save` / :meth:`ResponseMatrix.load` — NPZ or CSV
  round-trip of the canonical triples; saved matrices reload through the
  sorted fast path, so no ``O(nnz log nnz)`` re-sort is paid.

All transforms (:meth:`subset_users`, :meth:`subset_items`,
:meth:`permute_users`, :meth:`drop_unanswered_items`) are ``O(nnz)`` /
``O(nnz log nnz)`` gathers on the triples and never densify.
"""

from __future__ import annotations

import hashlib
import re
import threading
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.exceptions import DisconnectedGraphError, InvalidResponseMatrixError

#: Sentinel used in the raw choice matrix for "user did not answer this item".
NO_ANSWER = -1

#: First header line of the CSV serialization format.
_CSV_HEADER_RE = re.compile(
    r"#\s*repro-response-matrix\s+v1\s+m=(\d+)\s+n=(\d+)\s+num_options=([\d,]+)\s*$"
)


def parse_csv_header(header: str, path) -> Tuple[int, int, np.ndarray]:
    """Parse a triples-CSV header line into ``(m, n, per_item)``.

    The single owner of the CSV header format: :meth:`ResponseMatrix.load`
    and the streaming readers in :mod:`repro.engine.ingest` both call this,
    so the format cannot drift between the two ingestion paths.
    """
    match = _CSV_HEADER_RE.match(header.strip())
    if match is None:
        raise InvalidResponseMatrixError(
            "%s is not a repro-response-matrix CSV (bad header %r)"
            % (path, header.strip())
        )
    per_item = np.array([int(k) for k in match.group(3).split(",")], dtype=int)
    return int(match.group(1)), int(match.group(2)), per_item


def npz_metadata(payload, path) -> Tuple[int, int, np.ndarray]:
    """Extract ``(m, n, per_item)`` from an open NPZ archive's members.

    The single owner of the NPZ metadata layout (see :func:`parse_csv_header`
    for the rationale).  ``payload`` is an open :class:`numpy.lib.npyio.NpzFile`.
    """
    try:
        per_item = np.asarray(payload["num_options"], dtype=int)
        shape = payload["shape"]
    except KeyError as missing:
        raise InvalidResponseMatrixError(
            "%s is not a ResponseMatrix archive (%s)" % (path, missing.args[0])
        ) from None
    if shape.shape != (2,):
        raise InvalidResponseMatrixError(
            "%s has a malformed shape entry %r" % (path, shape)
        )
    m, n = (int(value) for value in shape)
    return m, n, per_item


class CompiledResponse:
    """Flat ``O(nnz)`` kernel representation of a :class:`ResponseMatrix`.

    Built once per matrix (see :attr:`ResponseMatrix.compiled`) from the
    canonical user-major answer triples and shared by every ranker.  Holds
    the binary CSR matrix, its zero-copy transpose, and the per-user /
    per-column counts with their (zero-safe) inverses.

    Attributes
    ----------
    binary:
        The one-hot ``(m x K)`` response matrix ``C`` in CSR form,
        ``K = sum_i k_i``.
    binary_t:
        ``C^T`` as a ``(K x m)`` CSC matrix sharing ``binary``'s data and
        index arrays (CSR of ``A`` and CSC of ``A^T`` have identical
        memory layouts, so the transpose costs nothing).
    answers_per_user, answers_per_item, column_counts:
        Nonzero counts per user row, item, and binary column.
    inv_answers_per_user, inv_column_counts:
        Elementwise inverses with ``1/0 -> 0`` — exactly the diagonal
        scalings of the paper's ``C_row`` and ``C_col`` normalizations.
    column_item:
        Item index of every binary column (length ``K``).
    """

    __slots__ = (
        "num_users",
        "num_items",
        "num_columns",
        "column_offsets",
        "binary",
        "binary_t",
        "answers_per_user",
        "answers_per_item",
        "column_counts",
        "inv_answers_per_user",
        "inv_column_counts",
        "column_item",
        "_user_index",
        "_item_index",
        "_option_index",
        "_item_order",
        "_item_ptr",
    )

    def __init__(
        self,
        users: np.ndarray,
        items: np.ndarray,
        options: np.ndarray,
        num_users: int,
        num_items: int,
        column_offsets: np.ndarray,
    ) -> None:
        num_columns = int(column_offsets[-1])
        nnz = users.size
        self.num_users = num_users
        self.num_items = num_items
        self.num_columns = num_columns
        self.column_offsets = column_offsets

        answers_per_user = np.bincount(users, minlength=num_users)
        self.answers_per_user = answers_per_user
        self.answers_per_item = np.bincount(items, minlength=num_items)

        index_dtype = (
            np.int32
            if max(num_columns, num_users, nnz) < np.iinfo(np.int32).max
            else np.int64
        )
        # Column id of every answer.  The triples are canonical user-major
        # (rows ascending, items — hence columns — sorted within each row),
        # which *is* canonical CSR order.
        starts = np.asarray(column_offsets[:-1])
        indices = (starts[items] + options).astype(index_dtype, copy=False)
        indptr = np.zeros(num_users + 1, dtype=index_dtype)
        np.cumsum(answers_per_user, out=indptr[1:])
        data = np.ones(indices.size, dtype=float)
        # Assign the arrays directly instead of going through the
        # (data, indices, indptr) constructor, which copies data/indices;
        # the triple is canonical CSR by construction (see above), and both
        # matrices genuinely share one set of arrays this way.
        self.binary = sp.csr_matrix((num_users, num_columns), dtype=float)
        self.binary.data, self.binary.indices, self.binary.indptr = data, indices, indptr
        self.binary_t = sp.csc_matrix((num_columns, num_users), dtype=float)
        self.binary_t.data, self.binary_t.indices, self.binary_t.indptr = data, indices, indptr
        # The shared triple also backs every normalized form derived from
        # it; freeze it so an in-place edit on a returned matrix cannot
        # silently corrupt the per-matrix cache.
        for array in (data, indices, indptr):
            array.flags.writeable = False

        self.column_counts = np.bincount(indices, minlength=num_columns)
        self.inv_answers_per_user = _safe_inverse(answers_per_user)
        self.inv_column_counts = _safe_inverse(self.column_counts)
        self.column_item = np.repeat(
            np.arange(num_items), np.diff(column_offsets).astype(int)
        )

        self._user_index = users
        self._item_index = items
        self._option_index = options
        self._item_order: Optional[np.ndarray] = None
        self._item_ptr: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Flat triple arrays (the EM baselines scatter/gather on these)
    # ------------------------------------------------------------------ #
    @property
    def num_nonzero(self) -> int:
        """Total number of answers (nonzeros of the binary matrix)."""
        return int(self.binary.indices.size)

    @property
    def column_index(self) -> np.ndarray:
        """Binary-column id of each answer, in user-major order."""
        return self.binary.indices

    @property
    def user_index(self) -> np.ndarray:
        """User id of each answer, in user-major order (canonical state)."""
        return self._user_index

    @property
    def item_index(self) -> np.ndarray:
        """Item id of each answer, aligned with :attr:`user_index`."""
        return self._item_index

    @property
    def option_index(self) -> np.ndarray:
        """Chosen option of each answer, aligned with :attr:`user_index`."""
        return self._option_index

    @property
    def item_order(self) -> np.ndarray:
        """Stable permutation reordering the answers item-major.

        ``user_index[item_order]`` groups the answers by item with users
        ascending inside each group — the gather order that per-item
        consumers (the GRM estimator, :meth:`ResponseMatrix.subset_items`)
        slice with ``cumsum(answers_per_item)``.  Lazy, cached.
        """
        if self._item_order is None:
            self._item_order = np.argsort(self._item_index, kind="stable")
        return self._item_order

    @property
    def user_ptr(self) -> np.ndarray:
        """Slice boundaries of each user's answers in user-major order.

        User ``u``'s answers occupy ``[user_ptr[u], user_ptr[u+1])`` of the
        triple arrays — this is exactly the binary CSR ``indptr``.
        """
        return self.binary.indptr

    @property
    def item_ptr(self) -> np.ndarray:
        """Slice boundaries of each item's answers in :attr:`item_order`.

        Item ``i``'s answers occupy ``item_order[item_ptr[i]:item_ptr[i+1]]``.
        Lazy, cached.
        """
        if self._item_ptr is None:
            self._item_ptr = np.concatenate(
                [[0], np.cumsum(self.answers_per_item)]
            )
        return self._item_ptr

    # ------------------------------------------------------------------ #
    # O(nnz) kernels
    # ------------------------------------------------------------------ #
    def option_sums(self, user_values: np.ndarray) -> np.ndarray:
        """``C^T v``: sum of ``user_values`` over the users picking each column."""
        return self.binary_t @ np.asarray(user_values, dtype=float)

    def user_sums(self, option_values: np.ndarray) -> np.ndarray:
        """``C v``: sum of ``option_values`` over each user's picked columns."""
        return self.binary @ np.asarray(option_values, dtype=float)

    def avghits_apply(self, scores: np.ndarray) -> np.ndarray:
        """Fused AVGHITS update ``s -> C_row ((C_col)^T s)`` in ``O(nnz)``.

        The normalizations are folded into two tiny diagonal scalings
        (length ``K`` and ``m``) around the cached matrix-vector products,
        so no normalized matrix is ever materialized.
        """
        weights = self.binary_t @ scores
        weights *= self.inv_column_counts
        updated = self.binary @ weights
        updated *= self.inv_answers_per_user
        return updated


def _safe_inverse(counts: np.ndarray) -> np.ndarray:
    """``1 / counts`` with ``1 / 0 -> 0`` (matches ``normalize_rows``' zeros)."""
    counts = np.asarray(counts, dtype=float)
    return np.where(counts > 0, 1.0 / np.maximum(counts, 1.0), 0.0)


def _read_only(array: np.ndarray) -> np.ndarray:
    """Mark a cached array read-only so shared caches cannot be corrupted."""
    array.flags.writeable = False
    return array


def _as_index_array(values, name: str) -> np.ndarray:
    """Coerce one triple component to a 1-D ``int64`` array (copying)."""
    array = np.asarray(values)
    if array.ndim != 1:
        raise InvalidResponseMatrixError("%s must be a 1-D array" % name)
    if not np.issubdtype(array.dtype, np.integer):
        if np.issubdtype(array.dtype, np.floating) and np.all(
            array == np.floor(array)
        ):
            pass  # integral floats are accepted, like the dense constructor
        else:
            raise InvalidResponseMatrixError("%s must contain integers" % name)
    return array.astype(np.int64, copy=True)


def _gather_slices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Positions selecting ``counts[r]`` consecutive entries from ``starts[r]``.

    The vectorized equivalent of ``concatenate([arange(s, s + c) for s, c in
    zip(starts, counts)])`` — the core gather of the triple transforms.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out_offsets = np.cumsum(counts) - counts
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(out_offsets, counts)
        + np.repeat(starts, counts)
    )


class ResponseMatrix:
    """User responses to heterogeneous multiple-choice items.

    Canonical state is the flat answer triples ``(user, item, option)`` in
    user-major order plus the shape and per-item option counts; the dense
    choice matrix is a lazily-cached view (see the module docstring).

    Parameters
    ----------
    choices:
        Integer array of shape ``(m, n)``.  ``choices[j, i]`` is the 0-based
        option index picked by user ``j`` for item ``i`` or :data:`NO_ANSWER`
        (-1) when the user skipped the item.  This dense constructor is the
        small-data ingestion path; use :meth:`from_triples` or
        :class:`ResponseBuilder` at sparse scale.
    num_options:
        Number of options per item.  Either a single int (every item has the
        same number of options) or a sequence of length ``n``.  When omitted
        it is inferred as ``max(choice) + 1`` per item (at least 2).

    Raises
    ------
    InvalidResponseMatrixError
        If the array is empty, non-integer, contains choices outside the
        declared option range, or no item was answered by anyone.

    Notes
    -----
    Derived forms (:attr:`binary`, :attr:`answered_mask`, the
    normalizations, and the :attr:`compiled` kernel representation) are
    computed once and cached; array-valued caches are returned as
    **read-only** views so accidental mutation cannot corrupt shared state.
    """

    def __init__(
        self,
        choices: np.ndarray,
        num_options: Optional[Sequence[int] | int] = None,
    ) -> None:
        choices = np.asarray(choices)
        if choices.ndim != 2 or choices.size == 0:
            raise InvalidResponseMatrixError(
                "choices must be a non-empty 2-D array, got shape %s" % (choices.shape,)
            )
        if not np.issubdtype(choices.dtype, np.integer):
            if np.issubdtype(choices.dtype, np.floating) and np.all(
                np.isnan(choices) | (choices == np.floor(choices))
            ):
                converted = np.where(np.isnan(choices), NO_ANSWER, choices)
                choices = converted.astype(int)
            else:
                raise InvalidResponseMatrixError("choices must contain integers")
        choices = choices.astype(int, copy=True)
        m, n = choices.shape

        if np.any(choices < NO_ANSWER):
            raise InvalidResponseMatrixError("choices must be >= -1")

        max_choice_per_item = choices.max(axis=0)
        if num_options is None:
            per_item = np.maximum(max_choice_per_item + 1, 2)
        else:
            per_item = _resolve_num_options(num_options, n)
        exceeded = max_choice_per_item >= per_item
        if np.any(exceeded & (max_choice_per_item >= 0)):
            bad = int(np.flatnonzero(exceeded)[0])
            raise InvalidResponseMatrixError(
                "item %d has a choice index >= its number of options (%d)"
                % (bad, per_item[bad])
            )

        mask = choices != NO_ANSWER
        if not mask.any():
            raise InvalidResponseMatrixError(
                "the response matrix contains no answers at all"
            )
        # numpy's row-major nonzero order is exactly the canonical
        # user-major triple order.
        users, items = (index.astype(np.int64) for index in np.nonzero(mask))
        options = choices[mask].astype(np.int64)
        self._set_state(users, items, options, m, n, per_item,
                        dense=_read_only(choices))

    # ------------------------------------------------------------------ #
    # Canonical-state plumbing
    # ------------------------------------------------------------------ #
    def _set_state(
        self,
        users: np.ndarray,
        items: np.ndarray,
        options: np.ndarray,
        num_users: int,
        num_items: int,
        per_item: np.ndarray,
        dense: Optional[np.ndarray] = None,
    ) -> None:
        """Install canonical triples (must be validated, user-major sorted)."""
        for array in (users, items, options):
            array.flags.writeable = False
        self._users = users
        self._items = items
        self._options = options
        self._m = int(num_users)
        self._n = int(num_items)
        self._num_options = np.asarray(per_item, dtype=int)

        # Lazily computed caches.
        self._content_hash_memo: Optional[str] = None
        self._content_hash_lock = threading.Lock()
        self._dense_choices: Optional[np.ndarray] = dense
        self._column_offsets: Optional[np.ndarray] = None
        self._compiled: Optional[CompiledResponse] = None
        self._answered_mask: Optional[np.ndarray] = None
        self._answers_per_user: Optional[np.ndarray] = None
        self._answers_per_item: Optional[np.ndarray] = None
        self._row_normalized: Optional[sp.csr_matrix] = None
        self._column_normalized: Optional[sp.csr_matrix] = None

    @classmethod
    def _from_canonical(
        cls,
        users: np.ndarray,
        items: np.ndarray,
        options: np.ndarray,
        num_users: int,
        num_items: int,
        per_item: np.ndarray,
    ) -> "ResponseMatrix":
        """Trusted constructor: triples already validated and user-major."""
        if users.size == 0:
            raise InvalidResponseMatrixError(
                "the response matrix contains no answers at all"
            )
        matrix = cls.__new__(cls)
        matrix._set_state(
            np.ascontiguousarray(users, dtype=np.int64),
            np.ascontiguousarray(items, dtype=np.int64),
            np.ascontiguousarray(options, dtype=np.int64),
            num_users,
            num_items,
            per_item,
        )
        return matrix

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_triples(
        cls,
        users,
        items,
        options,
        *,
        shape: Tuple[int, int],
        num_options: Optional[Sequence[int] | int] = None,
    ) -> "ResponseMatrix":
        """Build a matrix from flat ``(user, item, option)`` answer triples.

        This is the **primary constructor**: it validates in ``O(nnz)``
        (plus one ``O(nnz log nnz)`` sort only when the triples are not
        already user-major sorted) and never allocates ``(m, n)`` dense
        state, so it is the ingestion path for sparse-scale workloads.

        Parameters
        ----------
        users, items, options:
            Equal-length 1-D integer arrays; answer ``a`` says user
            ``users[a]`` picked option ``options[a]`` on item ``items[a]``.
        shape:
            ``(num_users, num_items)``.  Required — the triples alone cannot
            distinguish trailing users/items nobody answered.
        num_options:
            As in the dense constructor: scalar, per-item sequence, or
            ``None`` to infer ``max(option) + 1`` (at least 2) per item.

        Raises
        ------
        InvalidResponseMatrixError
            On empty input, out-of-range indices, options outside an item's
            declared range, or a duplicate ``(user, item)`` pair.
        """
        try:
            m, n = (int(value) for value in shape)
        except (TypeError, ValueError):
            raise InvalidResponseMatrixError(
                "shape must be a (num_users, num_items) pair, got %r" % (shape,)
            )
        if m <= 0 or n <= 0:
            raise InvalidResponseMatrixError(
                "shape must be positive, got (%d, %d)" % (m, n)
            )
        users = _as_index_array(users, "users")
        items = _as_index_array(items, "items")
        options = _as_index_array(options, "options")
        if not (users.size == items.size == options.size):
            raise InvalidResponseMatrixError(
                "users, items and options must have equal lengths, got %d/%d/%d"
                % (users.size, items.size, options.size)
            )
        if users.size == 0:
            raise InvalidResponseMatrixError(
                "the response matrix contains no answers at all"
            )
        if users.min() < 0 or users.max() >= m:
            bad = int(users[np.argmax((users < 0) | (users >= m))])
            raise InvalidResponseMatrixError(
                "user index %d is outside [0, %d)" % (bad, m)
            )
        if items.min() < 0 or items.max() >= n:
            bad = int(items[np.argmax((items < 0) | (items >= n))])
            raise InvalidResponseMatrixError(
                "item index %d is outside [0, %d)" % (bad, n)
            )
        if options.min() < 0:
            raise InvalidResponseMatrixError(
                "options must be >= 0 (use absence from the triples, not %d, "
                "for unanswered items)" % int(options.min())
            )

        if num_options is None:
            # Per-item max option + 1 (at least 2), matching the dense
            # constructor's inference, via an O(nnz) scatter-max.
            per_item = np.ones(n, dtype=np.int64)
            np.maximum.at(per_item, items, options + 1)
            per_item = np.maximum(per_item, 2)
        else:
            per_item = _resolve_num_options(num_options, n)
        out_of_range = options >= per_item[items]
        if np.any(out_of_range):
            bad = int(items[np.argmax(out_of_range)])
            raise InvalidResponseMatrixError(
                "item %d has a choice index >= its number of options (%d)"
                % (bad, per_item[bad])
            )

        # Canonical ordering + duplicate detection share one key array.
        # Already-sorted input (the save/load round-trip, from_binary) takes
        # the O(nnz) fast path with no argsort.
        keys = users * np.int64(n) + items
        deltas = np.diff(keys)
        if np.any(deltas <= 0):
            if np.any(deltas < 0):
                order = np.argsort(keys, kind="stable")
                users, items, options = users[order], items[order], options[order]
                keys = keys[order]
            duplicates = np.flatnonzero(keys[1:] == keys[:-1])
            if duplicates.size:
                first = int(duplicates[0]) + 1
                raise InvalidResponseMatrixError(
                    "duplicate answer: user %d answered item %d more than once "
                    "(a user may choose at most one option per item)"
                    % (int(users[first]), int(items[first]))
                )
        return cls._from_canonical(users, items, options, m, n, per_item)

    @classmethod
    def from_binary(cls, binary: np.ndarray | sp.spmatrix, num_options: Sequence[int] | int) -> "ResponseMatrix":
        """Build a :class:`ResponseMatrix` from a one-hot ``(m x kn)`` matrix.

        The inverse of :attr:`binary`.  ``num_options`` is required because
        the flattened binary form does not record item boundaries on its own
        when items have different numbers of options.

        Sparse inputs are consumed in COO form without densification; the
        nonzero positions map straight to answer triples and the result is
        routed through :meth:`from_triples`, so no ``(m, n)`` dense state is
        ever built.
        """
        if sp.issparse(binary):
            coo = binary.tocoo()
            # Collapse duplicate stored entries first so validation sees the
            # effective cell values, exactly like a densified path would
            # (e.g. two stored 0.5s are a valid 1; two stored 1s are an
            # invalid 2).
            coo.sum_duplicates()
            if np.any((coo.data != 0) & (coo.data != 1)):
                raise InvalidResponseMatrixError("binary matrix must contain only 0/1")
            keep = coo.data == 1
            rows = np.asarray(coo.row[keep], dtype=np.int64)
            cols = np.asarray(coo.col[keep], dtype=np.int64)
            m, total = binary.shape
        else:
            dense = np.asarray(binary)
            if dense.ndim != 2:
                raise InvalidResponseMatrixError("binary matrix must be 2-D")
            if np.any((dense != 0) & (dense != 1)):
                raise InvalidResponseMatrixError("binary matrix must contain only 0/1")
            m, total = dense.shape
            rows, cols = np.nonzero(dense)
            rows = rows.astype(np.int64)
            cols = cols.astype(np.int64)
        if np.isscalar(num_options):
            k = int(num_options)
            if k < 1 or total % k != 0:
                raise InvalidResponseMatrixError(
                    "binary width %d is not a multiple of k=%d" % (total, k)
                )
            per_item = np.full(total // k, k, dtype=int)
        else:
            per_item = np.asarray(list(num_options), dtype=int)
            if per_item.sum() != total:
                raise InvalidResponseMatrixError(
                    "sum of num_options (%d) must equal binary width (%d)"
                    % (per_item.sum(), total)
                )
        n = per_item.size
        if m == 0 or n == 0:
            raise InvalidResponseMatrixError(
                "binary matrix must be non-empty, got shape %s" % ((m, total),)
            )
        offsets = np.concatenate([[0], np.cumsum(per_item)])
        item_of = np.searchsorted(offsets, cols, side="right") - 1
        # from_triples detects two picks by one user on one item (duplicate
        # (user, item) pair) and validates everything else in O(nnz).
        return cls.from_triples(
            rows, item_of, cols - offsets[item_of],
            shape=(m, n), num_options=per_item,
        )

    # ------------------------------------------------------------------ #
    # Serialization (canonical triples; reload skips the re-sort)
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> None:
        """Write the canonical triples to ``path`` (``.npz`` or ``.csv``).

        NPZ is the compact binary format for large matrices; CSV is the
        interchange format (one ``user,item,option`` row per answer, with
        the shape and per-item option counts on a header comment line).
        Both store the triples in canonical order, so :meth:`load` takes
        the sorted ``O(nnz)`` validation fast path — no re-sort.
        """
        path = Path(path)
        if path.suffix == ".npz":
            np.savez_compressed(
                path,
                users=self._users,
                items=self._items,
                options=self._options,
                num_options=self._num_options,
                shape=np.array([self._m, self._n], dtype=np.int64),
            )
        elif path.suffix == ".csv":
            with path.open("w", encoding="utf-8") as handle:
                handle.write(
                    "# repro-response-matrix v1 m=%d n=%d num_options=%s\n"
                    % (self._m, self._n,
                       ",".join(str(int(k)) for k in self._num_options))
                )
                handle.write("user,item,option\n")
                np.savetxt(
                    handle,
                    np.column_stack([self._users, self._items, self._options]),
                    fmt="%d",
                    delimiter=",",
                )
        else:
            raise ValueError(
                "unsupported extension %r (use .npz or .csv)" % path.suffix
            )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ResponseMatrix":
        """Reload a matrix written by :meth:`save` (``.npz`` or ``.csv``)."""
        path = Path(path)
        if path.suffix == ".npz":
            with np.load(path) as payload:
                m, n, per_item = npz_metadata(payload, path)
                try:
                    users = payload["users"]
                    items = payload["items"]
                    options = payload["options"]
                except KeyError as missing:
                    raise InvalidResponseMatrixError(
                        "%s is not a ResponseMatrix archive (%s)"
                        % (path, missing.args[0])
                    ) from None
        elif path.suffix == ".csv":
            with path.open("r", encoding="utf-8") as handle:
                m, n, per_item = parse_csv_header(handle.readline(), path)
                handle.readline()  # column-name line
                table = np.loadtxt(
                    handle, dtype=np.int64, delimiter=",", ndmin=2
                )
            if table.size == 0:
                table = table.reshape(0, 3)
            users, items, options = table[:, 0], table[:, 1], table[:, 2]
        else:
            raise ValueError(
                "unsupported extension %r (use .npz or .csv)" % path.suffix
            )
        return cls.from_triples(
            users, items, options, shape=(m, n), num_options=per_item
        )

    # ------------------------------------------------------------------ #
    # Basic shape properties
    # ------------------------------------------------------------------ #
    @property
    def num_users(self) -> int:
        """Number of users ``m``."""
        return self._m

    @property
    def num_items(self) -> int:
        """Number of items ``n``."""
        return self._n

    @property
    def num_options(self) -> np.ndarray:
        """Per-item number of options (length ``n``)."""
        return self._num_options.copy()

    @property
    def max_options(self) -> int:
        """``k``: the largest number of options any item has."""
        return int(self._num_options.max())

    @property
    def num_answers(self) -> int:
        """Total number of answers (``nnz`` of the canonical triples)."""
        return int(self._users.size)

    @property
    def triples(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The canonical ``(users, items, options)`` arrays (read-only views).

        User-major order: sorted by ``(user, item)``.  This is the storage
        of record; every derived form is a function of these three arrays.
        """
        return self._users, self._items, self._options

    # ------------------------------------------------------------------ #
    # Dense views (lazily materialized; O(m*n) memory — small data only)
    # ------------------------------------------------------------------ #
    def _materialize_dense(self) -> np.ndarray:
        """The dense ``(m, n)`` choice-matrix view (cached, read-only).

        This is the **only** gate through which dense choice state comes
        into existence; sparse-scale code paths must never call it (tests
        monkeypatch it to assert that).
        """
        if self._dense_choices is None:
            dense = np.full((self._m, self._n), NO_ANSWER, dtype=int)
            dense[self._users, self._items] = self._options
            self._dense_choices = _read_only(dense)
        return self._dense_choices

    def _materialize_mask(self) -> np.ndarray:
        """The dense ``(m, n)`` answered-mask view (cached, read-only)."""
        if self._answered_mask is None:
            if self._dense_choices is not None:
                mask = self._dense_choices != NO_ANSWER
            else:
                mask = np.zeros((self._m, self._n), dtype=bool)
                mask[self._users, self._items] = True
            self._answered_mask = _read_only(mask)
        return self._answered_mask

    @property
    def choices(self) -> np.ndarray:
        """Copy of the dense ``(m x n)`` choice-matrix view (``-1`` = unanswered).

        Materialized from the triples on first access and cached; allocates
        ``O(m*n)`` — use the triples / compiled kernels at sparse scale.
        """
        return self._materialize_dense().copy()

    @property
    def answered_mask(self) -> np.ndarray:
        """Boolean ``(m x n)`` mask of which (user, item) pairs were answered.

        A lazily-materialized dense view (``O(m*n)`` memory); cached and
        returned read-only; copy before mutating.
        """
        return self._materialize_mask()

    @property
    def answers_per_user(self) -> np.ndarray:
        """Number of items each user answered (length ``m``, read-only)."""
        if self._answers_per_user is None:
            self._answers_per_user = _read_only(
                self.compiled.answers_per_user
                if self._compiled is not None
                else np.bincount(self._users, minlength=self._m)
            )
        return self._answers_per_user

    @property
    def answers_per_item(self) -> np.ndarray:
        """Number of users who answered each item (length ``n``, read-only)."""
        if self._answers_per_item is None:
            self._answers_per_item = _read_only(
                self.compiled.answers_per_item
                if self._compiled is not None
                else np.bincount(self._items, minlength=self._n)
            )
        return self._answers_per_item

    @property
    def is_complete(self) -> bool:
        """True when every user answered every item."""
        return self.num_answers == self._m * self._n

    # ------------------------------------------------------------------ #
    # Binary (one-hot) representation and normalizations
    # ------------------------------------------------------------------ #
    @property
    def column_offsets(self) -> np.ndarray:
        """Start offset of each item's option block in the binary matrix.

        Cached and returned read-only (the compiled kernel representation is
        built on this array); copy before mutating.
        """
        if self._column_offsets is None:
            self._column_offsets = _read_only(
                np.concatenate([[0], np.cumsum(self._num_options)])
            )
        return self._column_offsets

    @property
    def num_option_columns(self) -> int:
        """Total number of (item, option) columns in the binary matrix."""
        return int(self.column_offsets[-1])

    @property
    def compiled(self) -> CompiledResponse:
        """The cached ``O(nnz)`` kernel representation (built on first use)."""
        if self._compiled is None:
            self._compiled = CompiledResponse(
                self._users, self._items, self._options,
                self._m, self._n, self.column_offsets,
            )
        return self._compiled

    @property
    def binary(self) -> sp.csr_matrix:
        """Sparse one-hot ``(m x sum_i k_i)`` binary response matrix ``C``."""
        return self.compiled.binary

    @property
    def binary_dense(self) -> np.ndarray:
        """Dense copy of :attr:`binary` (convenient for tests and small data)."""
        return np.asarray(self.binary.todense())

    def row_normalized(self) -> sp.csr_matrix:
        """``C_row``: the binary matrix with each row scaled to sum 1.

        Cached; built by swapping the binary matrix's data vector for the
        per-user inverse counts (no sparse-sparse product).
        """
        if self._row_normalized is None:
            compiled = self.compiled
            data = _read_only(
                np.repeat(compiled.inv_answers_per_user, compiled.answers_per_user)
            )
            self._row_normalized = sp.csr_matrix(
                (data, compiled.binary.indices, compiled.binary.indptr),
                shape=compiled.binary.shape,
                copy=False,
            )
        return self._row_normalized

    def column_normalized(self) -> sp.csr_matrix:
        """``C_col``: the binary matrix with each nonzero column scaled to sum 1.

        Cached; built by gathering the per-column inverse counts into the
        binary matrix's data slots (no sparse-sparse product).
        """
        if self._column_normalized is None:
            compiled = self.compiled
            data = _read_only(compiled.inv_column_counts[compiled.binary.indices])
            self._column_normalized = sp.csr_matrix(
                (data, compiled.binary.indices, compiled.binary.indptr),
                shape=compiled.binary.shape,
                copy=False,
            )
        return self._column_normalized

    def user_similarity(self) -> np.ndarray:
        """Dense ``C C^T``: counts of common (item, option) picks per user pair.

        ``O(m^2)`` output — a small-data diagnostic, not a sparse-scale path.
        """
        product = self.binary @ self.binary.T
        return np.asarray(product.todense(), dtype=float)

    # ------------------------------------------------------------------ #
    # Graph structure
    # ------------------------------------------------------------------ #
    def is_connected(self) -> bool:
        """Whether the user-option bipartite graph has a single component.

        Spectral ranking methods need this (Section III-B); otherwise users
        in different components cannot be compared.
        """
        binary = self.binary
        adjacency = sp.bmat(
            [[None, binary], [binary.T, None]], format="csr"
        )
        n_components, labels = sp.csgraph.connected_components(
            adjacency, directed=False
        )
        if n_components == 1:
            return True
        # Columns with no picks form their own components but carry no
        # information; ignore them by checking user-reachability instead.
        user_labels = labels[: self._m]
        return bool(np.unique(user_labels).size == 1)

    def require_connected(self) -> None:
        """Raise :class:`DisconnectedGraphError` unless the graph is connected."""
        if not self.is_connected():
            raise DisconnectedGraphError(
                "the user-option bipartite graph has multiple connected components; "
                "spectral ranking cannot compare users across components"
            )

    # ------------------------------------------------------------------ #
    # Transformations (O(nnz) triple gathers; never densify)
    # ------------------------------------------------------------------ #
    def permute_users(self, order: Sequence[int]) -> "ResponseMatrix":
        """Return a new matrix with the user rows reordered by ``order``."""
        order = np.asarray(order, dtype=int)
        if sorted(order.tolist()) != list(range(self._m)):
            raise ValueError("order must be a permutation of range(num_users)")
        inverse = np.empty(self._m, dtype=np.int64)
        inverse[order] = np.arange(self._m)
        new_users = inverse[self._users]
        resort = np.lexsort((self._items, new_users))
        return ResponseMatrix._from_canonical(
            new_users[resort], self._items[resort], self._options[resort],
            self._m, self._n, self._num_options,
        )

    def subset_users(self, indices: Sequence[int]) -> "ResponseMatrix":
        """Return a new matrix restricted to the given users.

        ``indices`` may repeat or reorder users (fancy-indexing semantics);
        boolean masks of length ``m`` are also accepted.
        """
        indices = self._normalize_indices(indices, self._m, "users")
        compiled = self.compiled
        counts = compiled.answers_per_user[indices]
        # The triples of old user u occupy the contiguous user-major slice
        # [user_ptr[u], user_ptr[u+1]); gathering the selected slices in
        # order is already canonical for the new matrix.
        positions = _gather_slices(compiled.user_ptr[indices], counts)
        new_users = np.repeat(
            np.arange(indices.size, dtype=np.int64), counts
        )
        return ResponseMatrix._from_canonical(
            new_users, self._items[positions], self._options[positions],
            indices.size, self._n, self._num_options,
        )

    def subset_items(self, indices: Sequence[int]) -> "ResponseMatrix":
        """Return a new matrix restricted to the given items."""
        indices = self._normalize_indices(indices, self._n, "items")
        compiled = self.compiled
        counts = compiled.answers_per_item[indices]
        # Gather item-major, then re-sort the survivors back to user-major.
        positions = compiled.item_order[
            _gather_slices(compiled.item_ptr[indices], counts)
        ]
        new_items = np.repeat(
            np.arange(indices.size, dtype=np.int64), counts
        )
        users = self._users[positions]
        options = self._options[positions]
        resort = np.lexsort((new_items, users))
        return ResponseMatrix._from_canonical(
            users[resort], new_items[resort], options[resort],
            self._m, indices.size, self._num_options[indices],
        )

    @staticmethod
    def _normalize_indices(indices, size: int, axis_name: str) -> np.ndarray:
        """Resolve a user/item selection to non-negative ``int64`` indices."""
        indices = np.asarray(indices)
        if indices.dtype == bool:
            if indices.shape != (size,):
                raise IndexError(
                    "boolean %s mask must have length %d" % (axis_name, size)
                )
            return np.flatnonzero(indices).astype(np.int64)
        indices = indices.astype(np.int64)
        if indices.ndim != 1 or indices.size == 0:
            raise InvalidResponseMatrixError(
                "%s selection must be a non-empty 1-D index array" % axis_name
            )
        indices = np.where(indices < 0, indices + size, indices)
        if indices.min() < 0 or indices.max() >= size:
            raise IndexError(
                "%s index out of bounds for size %d" % (axis_name, size)
            )
        return indices

    def drop_unanswered_items(self) -> "ResponseMatrix":
        """Drop items that nobody answered (they carry no ranking signal)."""
        keep = np.flatnonzero(self.answers_per_item > 0)
        if keep.size == self._n:
            return self
        return self.subset_items(keep)

    # ------------------------------------------------------------------ #
    # Per-item statistics used by baselines and symmetry breaking
    # ------------------------------------------------------------------ #
    def option_counts(self, item: int) -> np.ndarray:
        """How many users picked each option of ``item`` (length ``k_i``)."""
        item = int(item)
        if item < 0:
            item += self._n
        if not 0 <= item < self._n:
            raise IndexError("item index out of bounds for size %d" % self._n)
        offsets = self.column_offsets
        return self.compiled.column_counts[offsets[item]:offsets[item + 1]].astype(int)

    def _option_count_matrix(
        self, users: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """``(n x k_max)`` per-item option histograms in one bincount pass.

        With a ``users`` selection the histogram weights each user by its
        multiplicity in the selection (fancy-indexing semantics) and the
        result is float-valued.
        """
        k = self.max_options
        flat = self._items * k + self._options
        if users is None:
            counts = np.bincount(flat, minlength=self._n * k)
        else:
            selected = self._normalize_indices(users, self._m, "users")
            multiplicity = np.bincount(selected, minlength=self._m)
            counts = np.bincount(
                flat,
                weights=multiplicity[self._users].astype(float),
                minlength=self._n * k,
            )
        return counts.reshape(self._n, k)

    def majority_choices(self) -> np.ndarray:
        """Most frequently picked option per item (ties broken by index)."""
        return self._option_count_matrix().argmax(axis=1).astype(int)

    def choice_entropy(self, users: Optional[Sequence[int]] = None) -> float:
        """Average per-item Shannon entropy of the option distribution.

        Restricted to the given ``users`` when provided.  This is the
        statistic behind the decile-entropy symmetry-breaking heuristic
        (Section III-D): high-ability users converge on the correct option
        and therefore produce lower entropy.  Computed for all items in a
        single vectorized bincount over the answer triples; items nobody
        (in the subset) answered are excluded.
        """
        counts = self._option_count_matrix(users).astype(float)
        totals = counts.sum(axis=1)
        answered = totals > 0
        if not np.any(answered):
            return 0.0
        probabilities = counts[answered] / totals[answered, np.newaxis]
        # x * log2(x) -> 0 as x -> 0, so zero-probability options contribute
        # exactly 0.0 and the sum matches the nonzero-only loop bit for bit.
        contributions = np.zeros_like(probabilities)
        positive = probabilities > 0
        contributions[positive] = probabilities[positive] * np.log2(
            probabilities[positive]
        )
        entropies = -contributions.sum(axis=1)
        return float(np.mean(entropies))

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ResponseMatrix(num_users=%d, num_items=%d, max_options=%d)" % (
            self._m,
            self._n,
            self.max_options,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResponseMatrix):
            return NotImplemented
        # Canonical ordering makes the triple arrays a normal form: two
        # matrices are equal iff their canonical state matches, in O(nnz)
        # regardless of how either was constructed.
        return bool(
            self._m == other._m
            and self._n == other._n
            and np.array_equal(self._num_options, other._num_options)
            and np.array_equal(self._users, other._users)
            and np.array_equal(self._items, other._items)
            and np.array_equal(self._options, other._options)
        )

    def __getstate__(self) -> dict:
        # The memo lock is not picklable; drop it (and the memo itself,
        # which the receiving process recomputes on demand).
        state = dict(self.__dict__)
        state.pop("_content_hash_lock", None)
        state["_content_hash_memo"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._content_hash_lock = threading.Lock()

    def __hash__(self) -> int:
        return hash((
            self._m,
            self._n,
            self._num_options.tobytes(),
            self._users.tobytes(),
            self._items.tobytes(),
            self._options.tobytes(),
        ))

    def content_hash(self) -> str:
        """Stable hex digest of the canonical state, in ``O(nnz)``.

        Unlike :meth:`__hash__` (whose value is salted per process via
        ``PYTHONHASHSEED``), this digest is reproducible across processes and
        machines, so it can key persistent caches: two matrices have the same
        digest iff they compare equal, because the canonical user-major
        triples are a normal form of the answers.  The digest is memoized —
        the canonical state is immutable, and cache lookups plus the
        session's warm-start lineage tracking may hash the same instance
        several times per ``rank()`` call.

        The memoization is **compute-once under a lock**: the digest is a
        pure function of immutable state, so a duplicate computation was
        always benign — but with the durable store's write-behind thread
        hashing the same instances the serving threads do, racing the
        first computation would burn ``O(nnz)`` per loser on the largest
        matrices.  Double-checked: the fast path after memoization is one
        attribute read, no lock.
        """
        memo = self._content_hash_memo
        if memo is None:
            with self._content_hash_lock:
                memo = self._content_hash_memo
                if memo is None:
                    digest = hashlib.blake2b(digest_size=16)
                    digest.update(
                        np.array([self._m, self._n], dtype=np.int64).tobytes()
                    )
                    digest.update(
                        self._num_options.astype(np.int64, copy=False).tobytes()
                    )
                    for array in (self._users, self._items, self._options):
                        digest.update(array.tobytes())
                    memo = digest.hexdigest()
                    self._content_hash_memo = memo
        return memo


def _resolve_num_options(num_options, n: int) -> np.ndarray:
    """Resolve the scalar-or-sequence ``num_options`` parameter to per-item."""
    if np.isscalar(num_options):
        per_item = np.full(n, int(num_options), dtype=int)
    else:
        per_item = np.asarray(list(num_options), dtype=int)
        if per_item.shape != (n,):
            raise InvalidResponseMatrixError(
                "num_options must have one entry per item (%d), got %d"
                % (n, per_item.size)
            )
    if np.any(per_item < 1):
        raise InvalidResponseMatrixError("every item needs at least one option")
    return per_item


class ResponseBuilder:
    """Incremental triples ingestion: append answers, then :meth:`build`.

    The streaming counterpart of :meth:`ResponseMatrix.from_triples` — feed
    it answer batches as they arrive (e.g. from a log stream or a chunked
    file) and it accumulates the flat triples without ever holding dense
    state.  Appends are ``O(batch)``; :meth:`build` concatenates once and
    runs the full :meth:`~ResponseMatrix.from_triples` validation.

    Parameters
    ----------
    num_items:
        Fixed item count, when known up front.  Otherwise inferred as
        ``max(item) + 1`` over everything appended.
    num_options:
        Scalar or per-item option counts forwarded to ``from_triples``
        (inferred from the data when omitted).

    Examples
    --------
    >>> builder = ResponseBuilder(num_items=3, num_options=4)
    >>> builder.add_answers([0, 0], [0, 2], [1, 3])   # batch of answers
    >>> uid = builder.add_user([0, 1, 2], [2, 2, 0])  # whole new user row
    >>> matrix = builder.build()
    >>> matrix.num_users, matrix.num_items
    (2, 3)
    """

    def __init__(
        self,
        num_items: Optional[int] = None,
        num_options: Optional[Sequence[int] | int] = None,
    ) -> None:
        self._num_items = None if num_items is None else int(num_items)
        self._num_options = num_options
        self._user_chunks: List[np.ndarray] = []
        self._item_chunks: List[np.ndarray] = []
        self._option_chunks: List[np.ndarray] = []
        self._num_users = 0
        self._num_answers = 0

    @property
    def num_users(self) -> int:
        """Users seen so far (``max(user) + 1`` over all appends)."""
        return self._num_users

    @property
    def num_answers(self) -> int:
        """Answers appended so far."""
        return self._num_answers

    def __len__(self) -> int:
        return self._num_answers

    def add_answer(self, user: int, item: int, option: int) -> "ResponseBuilder":
        """Append a single ``(user, item, option)`` answer."""
        return self.add_answers([user], [item], [option])

    def add_answers(self, users, items, options) -> "ResponseBuilder":
        """Append a batch of answers (three equal-length index arrays)."""
        users = _as_index_array(users, "users")
        items = _as_index_array(items, "items")
        options = _as_index_array(options, "options")
        if not (users.size == items.size == options.size):
            raise InvalidResponseMatrixError(
                "users, items and options must have equal lengths, got %d/%d/%d"
                % (users.size, items.size, options.size)
            )
        if users.size:
            if users.min() < 0:
                raise InvalidResponseMatrixError(
                    "user indices must be >= 0, got %d" % int(users.min())
                )
            self._num_users = max(self._num_users, int(users.max()) + 1)
            self._user_chunks.append(users)
            self._item_chunks.append(items)
            self._option_chunks.append(options)
            self._num_answers += users.size
        return self

    def add_user(self, items, options) -> int:
        """Append a whole new user's answers; returns the new user's index."""
        user = self._num_users
        items = _as_index_array(items, "items")
        options = _as_index_array(options, "options")
        self.add_answers(np.full(items.size, user, dtype=np.int64), items, options)
        # add_answers only grows _num_users when the batch is non-empty; an
        # all-skip user still occupies a row.
        self._num_users = max(self._num_users, user + 1)
        return user

    def build(
        self,
        *,
        num_users: Optional[int] = None,
        num_items: Optional[int] = None,
        num_options: Optional[Sequence[int] | int] = None,
        deduplicate: bool = False,
    ) -> "ResponseMatrix":
        """Validate the accumulated triples and build a :class:`ResponseMatrix`.

        The explicit ``num_users`` / ``num_items`` / ``num_options``
        arguments override what the builder saw or was configured with
        (e.g. to declare trailing users nobody has answered for yet).

        ``deduplicate=True`` collapses *exact* repeated triples (the same
        user restating the same option for the same item) before
        validation, making replayed ingestion batches idempotent.
        Conflicting repeats — the same ``(user, item)`` with a different
        option — still raise, because they contradict each other.
        """
        if self._num_answers == 0:
            raise InvalidResponseMatrixError(
                "the response matrix contains no answers at all"
            )
        users = np.concatenate(self._user_chunks)
        items = np.concatenate(self._item_chunks)
        options = np.concatenate(self._option_chunks)
        if deduplicate:
            # Sort by (user, item, option) and drop exact repeats; the
            # result is user-major sorted, so from_triples takes the
            # O(nnz) fast path, and any *conflicting* duplicate (user,
            # item) pairs are adjacent for its duplicate check.
            order = np.lexsort((options, items, users))
            users, items, options = users[order], items[order], options[order]
            repeat = (
                (users[1:] == users[:-1])
                & (items[1:] == items[:-1])
                & (options[1:] == options[:-1])
            )
            keep = np.concatenate([[True], ~repeat])
            users, items, options = users[keep], items[keep], options[keep]
        m = self._num_users if num_users is None else int(num_users)
        if num_items is not None:
            n = int(num_items)
        elif self._num_items is not None:
            n = self._num_items
        else:
            n = int(items.max()) + 1
        per_item = num_options if num_options is not None else self._num_options
        return ResponseMatrix.from_triples(
            users, items, options, shape=(m, n), num_options=per_item
        )


def score_against_truth(response: ResponseMatrix, correct_options: Sequence[int]) -> np.ndarray:
    """Number of correctly answered items per user.

    This is the "True-answer" cheating baseline's scoring rule: it assumes
    the ground-truth correct option of every item is known.  One gather and
    one bincount over the answer triples — ``O(nnz)``, no dense state.
    """
    correct = np.asarray(correct_options, dtype=int)
    if correct.shape != (response.num_items,):
        raise ValueError(
            "correct_options must have length %d, got %d"
            % (response.num_items, correct.size)
        )
    users, items, options = response.triples
    return np.bincount(users[options == correct[items]], minlength=response.num_users)
