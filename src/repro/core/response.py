"""Response-matrix data structure for heterogeneous multiclass classification.

The paper represents user answers in two equivalent forms (Figure 1b):

* the raw ``(m x n)`` *choice matrix* ``C'`` where entry ``(j, i)`` is the
  index of the option user ``j`` picked for item ``i`` (or "no answer"), and
* the one-hot ``(m x kn)`` *binary response matrix* ``C`` with a column per
  (item, option) pair.

:class:`ResponseMatrix` stores the raw form, validates it, and lazily
derives the binary form (sparse), its row/column normalizations, and the
user-similarity products required by the ranking algorithms.  All spectral
methods in :mod:`repro.core` and :mod:`repro.c1p` and all baselines in
:mod:`repro.truth_discovery` consume this class.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import DisconnectedGraphError, InvalidResponseMatrixError
from repro.linalg.normalize import normalize_columns, normalize_rows

#: Sentinel used in the raw choice matrix for "user did not answer this item".
NO_ANSWER = -1


class ResponseMatrix:
    """User responses to heterogeneous multiple-choice items.

    Parameters
    ----------
    choices:
        Integer array of shape ``(m, n)``.  ``choices[j, i]`` is the 0-based
        option index picked by user ``j`` for item ``i`` or :data:`NO_ANSWER`
        (-1) when the user skipped the item.
    num_options:
        Number of options per item.  Either a single int (every item has the
        same number of options) or a sequence of length ``n``.  When omitted
        it is inferred as ``max(choice) + 1`` per item (at least 2).

    Raises
    ------
    InvalidResponseMatrixError
        If the array is empty, non-integer, contains choices outside the
        declared option range, or every entry of some user/item is missing.
    """

    def __init__(
        self,
        choices: np.ndarray,
        num_options: Optional[Sequence[int] | int] = None,
    ) -> None:
        choices = np.asarray(choices)
        if choices.ndim != 2 or choices.size == 0:
            raise InvalidResponseMatrixError(
                "choices must be a non-empty 2-D array, got shape %s" % (choices.shape,)
            )
        if not np.issubdtype(choices.dtype, np.integer):
            if np.issubdtype(choices.dtype, np.floating) and np.all(
                np.isnan(choices) | (choices == np.floor(choices))
            ):
                converted = np.where(np.isnan(choices), NO_ANSWER, choices)
                choices = converted.astype(int)
            else:
                raise InvalidResponseMatrixError("choices must contain integers")
        self._choices = choices.astype(int, copy=True)
        self._m, self._n = self._choices.shape

        if np.any(self._choices < NO_ANSWER):
            raise InvalidResponseMatrixError("choices must be >= -1")

        if num_options is None:
            per_item = np.maximum(self._choices.max(axis=0) + 1, 2)
        elif np.isscalar(num_options):
            per_item = np.full(self._n, int(num_options), dtype=int)
        else:
            per_item = np.asarray(list(num_options), dtype=int)
            if per_item.shape != (self._n,):
                raise InvalidResponseMatrixError(
                    "num_options must have one entry per item (%d), got %d"
                    % (self._n, per_item.size)
                )
        if np.any(per_item < 1):
            raise InvalidResponseMatrixError("every item needs at least one option")
        exceeded = self._choices.max(axis=0) >= per_item
        if np.any(exceeded & (self._choices.max(axis=0) >= 0)):
            bad = int(np.flatnonzero(exceeded)[0])
            raise InvalidResponseMatrixError(
                "item %d has a choice index >= its number of options (%d)"
                % (bad, per_item[bad])
            )
        self._num_options = per_item

        if np.all(self._choices == NO_ANSWER):
            raise InvalidResponseMatrixError("the response matrix contains no answers at all")

        # Lazily computed caches.
        self._binary: Optional[sp.csr_matrix] = None
        self._column_offsets: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_binary(cls, binary: np.ndarray | sp.spmatrix, num_options: Sequence[int] | int) -> "ResponseMatrix":
        """Build a :class:`ResponseMatrix` from a one-hot ``(m x kn)`` matrix.

        The inverse of :attr:`binary`.  ``num_options`` is required because
        the flattened binary form does not record item boundaries on its own
        when items have different numbers of options.
        """
        if sp.issparse(binary):
            binary = np.asarray(binary.todense())
        binary = np.asarray(binary)
        if binary.ndim != 2:
            raise InvalidResponseMatrixError("binary matrix must be 2-D")
        if np.any((binary != 0) & (binary != 1)):
            raise InvalidResponseMatrixError("binary matrix must contain only 0/1")
        m, total = binary.shape
        if np.isscalar(num_options):
            k = int(num_options)
            if total % k != 0:
                raise InvalidResponseMatrixError(
                    "binary width %d is not a multiple of k=%d" % (total, k)
                )
            per_item = np.full(total // k, k, dtype=int)
        else:
            per_item = np.asarray(list(num_options), dtype=int)
            if per_item.sum() != total:
                raise InvalidResponseMatrixError(
                    "sum of num_options (%d) must equal binary width (%d)"
                    % (per_item.sum(), total)
                )
        n = per_item.size
        offsets = np.concatenate([[0], np.cumsum(per_item)])
        choices = np.full((m, n), NO_ANSWER, dtype=int)
        for i in range(n):
            block = binary[:, offsets[i]:offsets[i + 1]]
            counts = block.sum(axis=1)
            if np.any(counts > 1):
                raise InvalidResponseMatrixError(
                    "user may choose at most one option per item (item %d violates this)" % i
                )
            answered = counts == 1
            choices[answered, i] = np.argmax(block[answered], axis=1)
        return cls(choices, num_options=per_item)

    # ------------------------------------------------------------------ #
    # Basic shape properties
    # ------------------------------------------------------------------ #
    @property
    def num_users(self) -> int:
        """Number of users ``m``."""
        return self._m

    @property
    def num_items(self) -> int:
        """Number of items ``n``."""
        return self._n

    @property
    def num_options(self) -> np.ndarray:
        """Per-item number of options (length ``n``)."""
        return self._num_options.copy()

    @property
    def max_options(self) -> int:
        """``k``: the largest number of options any item has."""
        return int(self._num_options.max())

    @property
    def choices(self) -> np.ndarray:
        """Copy of the raw ``(m x n)`` choice matrix (``-1`` = unanswered)."""
        return self._choices.copy()

    @property
    def answered_mask(self) -> np.ndarray:
        """Boolean ``(m x n)`` mask of which (user, item) pairs were answered."""
        return self._choices != NO_ANSWER

    @property
    def answers_per_user(self) -> np.ndarray:
        """Number of items each user answered (length ``m``)."""
        return self.answered_mask.sum(axis=1)

    @property
    def answers_per_item(self) -> np.ndarray:
        """Number of users who answered each item (length ``n``)."""
        return self.answered_mask.sum(axis=0)

    @property
    def is_complete(self) -> bool:
        """True when every user answered every item."""
        return bool(np.all(self.answered_mask))

    # ------------------------------------------------------------------ #
    # Binary (one-hot) representation and normalizations
    # ------------------------------------------------------------------ #
    @property
    def column_offsets(self) -> np.ndarray:
        """Start offset of each item's option block in the binary matrix."""
        if self._column_offsets is None:
            self._column_offsets = np.concatenate([[0], np.cumsum(self._num_options)])
        return self._column_offsets

    @property
    def num_option_columns(self) -> int:
        """Total number of (item, option) columns in the binary matrix."""
        return int(self.column_offsets[-1])

    @property
    def binary(self) -> sp.csr_matrix:
        """Sparse one-hot ``(m x sum_i k_i)`` binary response matrix ``C``."""
        if self._binary is None:
            offsets = self.column_offsets
            rows: List[int] = []
            cols: List[int] = []
            user_idx, item_idx = np.nonzero(self.answered_mask)
            option_idx = self._choices[user_idx, item_idx]
            rows = user_idx.tolist()
            cols = (offsets[item_idx] + option_idx).tolist()
            data = np.ones(len(rows), dtype=float)
            self._binary = sp.csr_matrix(
                (data, (rows, cols)), shape=(self._m, self.num_option_columns)
            )
        return self._binary

    @property
    def binary_dense(self) -> np.ndarray:
        """Dense copy of :attr:`binary` (convenient for tests and small data)."""
        return np.asarray(self.binary.todense())

    def row_normalized(self) -> sp.csr_matrix:
        """``C_row``: the binary matrix with each row scaled to sum 1."""
        return normalize_rows(self.binary)

    def column_normalized(self) -> sp.csr_matrix:
        """``C_col``: the binary matrix with each nonzero column scaled to sum 1."""
        return normalize_columns(self.binary)

    def user_similarity(self) -> np.ndarray:
        """Dense ``C C^T``: counts of common (item, option) picks per user pair."""
        product = self.binary @ self.binary.T
        return np.asarray(product.todense(), dtype=float)

    # ------------------------------------------------------------------ #
    # Graph structure
    # ------------------------------------------------------------------ #
    def is_connected(self) -> bool:
        """Whether the user-option bipartite graph has a single component.

        Spectral ranking methods need this (Section III-B); otherwise users
        in different components cannot be compared.
        """
        binary = self.binary
        adjacency = sp.bmat(
            [[None, binary], [binary.T, None]], format="csr"
        )
        n_components, _ = sp.csgraph.connected_components(adjacency, directed=False)
        # Columns with no picks form their own components but carry no
        # information; ignore them by checking user-reachability instead.
        if n_components == 1:
            return True
        _, labels = sp.csgraph.connected_components(adjacency, directed=False)
        user_labels = labels[: self._m]
        return bool(np.unique(user_labels).size == 1)

    def require_connected(self) -> None:
        """Raise :class:`DisconnectedGraphError` unless the graph is connected."""
        if not self.is_connected():
            raise DisconnectedGraphError(
                "the user-option bipartite graph has multiple connected components; "
                "spectral ranking cannot compare users across components"
            )

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def permute_users(self, order: Sequence[int]) -> "ResponseMatrix":
        """Return a new matrix with the user rows reordered by ``order``."""
        order = np.asarray(order, dtype=int)
        if sorted(order.tolist()) != list(range(self._m)):
            raise ValueError("order must be a permutation of range(num_users)")
        return ResponseMatrix(self._choices[order], num_options=self._num_options)

    def subset_users(self, indices: Sequence[int]) -> "ResponseMatrix":
        """Return a new matrix restricted to the given users."""
        indices = np.asarray(indices, dtype=int)
        return ResponseMatrix(self._choices[indices], num_options=self._num_options)

    def subset_items(self, indices: Sequence[int]) -> "ResponseMatrix":
        """Return a new matrix restricted to the given items."""
        indices = np.asarray(indices, dtype=int)
        return ResponseMatrix(
            self._choices[:, indices], num_options=self._num_options[indices]
        )

    def drop_unanswered_items(self) -> "ResponseMatrix":
        """Drop items that nobody answered (they carry no ranking signal)."""
        keep = np.flatnonzero(self.answers_per_item > 0)
        if keep.size == self._n:
            return self
        return self.subset_items(keep)

    # ------------------------------------------------------------------ #
    # Per-item statistics used by baselines and symmetry breaking
    # ------------------------------------------------------------------ #
    def option_counts(self, item: int) -> np.ndarray:
        """How many users picked each option of ``item`` (length ``k_i``)."""
        column = self._choices[:, item]
        column = column[column != NO_ANSWER]
        return np.bincount(column, minlength=self._num_options[item]).astype(int)

    def majority_choices(self) -> np.ndarray:
        """Most frequently picked option per item (ties broken by index)."""
        return np.array([int(np.argmax(self.option_counts(i))) for i in range(self._n)])

    def choice_entropy(self, users: Optional[Sequence[int]] = None) -> float:
        """Average per-item Shannon entropy of the option distribution.

        Restricted to the given ``users`` when provided.  This is the
        statistic behind the decile-entropy symmetry-breaking heuristic
        (Section III-D): high-ability users converge on the correct option
        and therefore produce lower entropy.
        """
        if users is None:
            choices = self._choices
        else:
            choices = self._choices[np.asarray(users, dtype=int)]
        entropies = []
        for i in range(self._n):
            column = choices[:, i]
            column = column[column != NO_ANSWER]
            if column.size == 0:
                continue
            counts = np.bincount(column, minlength=self._num_options[i]).astype(float)
            probabilities = counts / counts.sum()
            nonzero = probabilities[probabilities > 0]
            entropies.append(float(-(nonzero * np.log2(nonzero)).sum()))
        if not entropies:
            return 0.0
        return float(np.mean(entropies))

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ResponseMatrix(num_users=%d, num_items=%d, max_options=%d)" % (
            self._m,
            self._n,
            self.max_options,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResponseMatrix):
            return NotImplemented
        return bool(
            np.array_equal(self._choices, other._choices)
            and np.array_equal(self._num_options, other._num_options)
        )

    def __hash__(self) -> int:
        return hash((self._choices.tobytes(), self._num_options.tobytes()))


def score_against_truth(response: ResponseMatrix, correct_options: Sequence[int]) -> np.ndarray:
    """Number of correctly answered items per user.

    This is the "True-answer" cheating baseline's scoring rule: it assumes
    the ground-truth correct option of every item is known.
    """
    correct = np.asarray(correct_options, dtype=int)
    if correct.shape != (response.num_items,):
        raise ValueError(
            "correct_options must have length %d, got %d"
            % (response.num_items, correct.size)
        )
    choices = response.choices
    return np.sum((choices == correct[np.newaxis, :]) & (choices != NO_ANSWER), axis=1)
