"""HITSnDIFFS (HND): the paper's primary contribution, in three flavours.

All three variants compute the ordering of the 2nd largest eigenvector of
the AVGHITS update matrix ``U = C_row (C_col)^T`` and differ only in *how*:

* :class:`HNDPower` — Algorithm 1: power iteration on the difference update
  matrix ``U_diff = S U T`` implemented matrix-free with only matrix-vector
  products (``O(mnt)`` total).  This is the paper's recommended variant.
* :class:`HNDDirect` — Arnoldi iteration (``scipy.sparse.linalg.eigs``) on
  the materialized ``U`` (``O(m^2 n)`` for the materialization).
* :class:`HNDDeflation` — Hotelling deflation of ``U`` followed by a power
  iteration (Section III-F).

Each variant finishes with the decile-entropy symmetry-breaking heuristic so
that larger score means higher ability, and reports convergence diagnostics
in the returned :class:`~repro.core.ranking.AbilityRanking`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Union

import numpy as np

from repro.api.registry import register_ranker
from repro.core.avghits import (
    avghits_fixed_point,
    difference_update_matrix,
    hnd_difference_step,
    update_matrix,
)
from repro.core.ranking import AbilityRanker, AbilityRanking
from repro.core.response import ResponseMatrix
from repro.core.solver_state import SolverState, warm_vector
from repro.core.symmetry import orient_scores
from repro.linalg.deflation import hotelling_deflation
from repro.linalg.operators import apply_cumulative
from repro.linalg.power_iteration import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    PowerIterationDriver,
)
from repro.linalg.spectral import second_largest_eigenvector

RandomState = Optional[Union[int, np.random.Generator]]


def _trivial_diagnostics(init_state: Optional[SolverState]) -> dict:
    """Diagnostics for the m < 2 degenerate crowd (nothing to iterate).

    The ``warm_start`` key is part of the warm-capable contract, so it is
    present even on the early return; a sub-2-user crowd has no difference
    vector, making any offered state incompatible by definition.
    """
    return {
        "iterations": 0,
        "converged": True,
        "warm_start": "cold" if init_state is None else "incompatible-cold",
    }


def hnd_power_solve(
    diff_step,
    num_users: int,
    *,
    tolerance: float,
    max_iterations: int,
    random_state: RandomState,
    init_state: Optional[SolverState] = None,
    acceleration: Optional[str] = None,
    run_chunk: Optional[Callable[[PowerIterationDriver, int], None]] = None,
    iteration_batch: int = 1,
):
    """The HnD power solve with optional warm start; shared by all backends.

    Returns ``(result, state, warm_mode)``: the
    :class:`~repro.linalg.power_iteration.PowerIterationResult`, the
    captured :class:`SolverState` (the converged difference vector — the
    exact iterate a follow-up solve restarts from), and how the warm start
    went: ``"cold"`` (no state offered), ``"warm"`` (state used),
    ``"incompatible-cold"`` (state rejected up front — wrong method or a
    shrunk user axis), or ``"fallback-cold"`` (the warm attempt's residual
    blew up — non-finite, e.g. a poisoned state — and the solve was rerun
    cold).  A warm attempt that merely exhausts ``max_iterations`` with a
    finite residual keeps its iterate: it is at least as close to the
    fixed point as a cold rerun would get with the same budget, so
    rerunning would double the cost for nothing.

    A warm start is just a different initial vector: given the same state,
    every execution backend walks a bit-identical trajectory, and with no
    state the behaviour is exactly the pre-warm-start cold solve.

    ``acceleration`` opts into the momentum scheme of
    :class:`~repro.linalg.power_iteration.PowerIterationDriver`.  It gets
    the same treatment as warm starts: a blow-up (non-finite residual)
    after any warm fallback triggers one plain rerun, reported as
    ``acceleration="fallback-plain"`` on the result, so a mis-tuned
    momentum coefficient can cost time but never a ranking.

    ``run_chunk`` (with ``iteration_batch``) hands the iteration loop to an
    execution backend in batches: it is called as ``run_chunk(driver, k)``
    and must advance the driver ``k`` iterations (wherever it likes — the
    driver state serializes).  When omitted the loop runs in-process on
    ``diff_step``.
    """
    initial = warm_vector(init_state, "HnD", "diff_vector", num_users - 1, 0.0)
    warm_mode = "cold"
    if init_state is not None:
        warm_mode = "warm" if initial is not None else "incompatible-cold"

    def solve(start: Optional[np.ndarray], accel: Optional[str]):
        driver = PowerIterationDriver(
            diff_step,
            num_users - 1,
            initial=start,
            tolerance=tolerance,
            max_iterations=max_iterations,
            random_state=random_state,
            acceleration=accel,
        )
        if run_chunk is None:
            driver.advance()
        else:
            while not driver.finished:
                run_chunk(driver, iteration_batch)
        return driver.result()

    result = solve(initial, acceleration)
    if initial is not None and not np.isfinite(result.residual):
        result = solve(None, acceleration)
        warm_mode = "fallback-cold"
    if acceleration is not None and not np.isfinite(result.residual):
        result = dataclasses.replace(
            solve(None, None), acceleration="fallback-plain"
        )
    state = SolverState(
        "HnD",
        {"diff_vector": result.vector},
        iterations=result.iterations,
        residual=result.residual,
    )
    return result, state, warm_mode


@register_ranker(
    "HnD",
    params=("tolerance", "max_iterations", "break_symmetry",
            "check_connectivity", "random_state", "acceleration"),
    warm_startable=True,
    summary="HITSnDIFFS power iteration (Algorithm 1, the paper's method)",
)
class HNDPower(AbilityRanker):
    """HITSnDIFFS via the matrix-free power iteration of Algorithm 1.

    Parameters
    ----------
    tolerance:
        Convergence threshold on the L2 change of the (unit-norm) user score
        difference vector; the paper uses ``1e-5``.
    max_iterations:
        Iteration budget.
    break_symmetry:
        Apply the decile-entropy orientation heuristic (Section III-D).
        Disable only when the caller wants the raw eigenvector ordering.
    check_connectivity:
        Verify that the user-option graph is connected before ranking and
        raise :class:`~repro.exceptions.DisconnectedGraphError` otherwise.
    random_state:
        Seed for the random initialization of the score differences.
    acceleration:
        ``None`` (plain power iteration) or ``"momentum"`` (adaptive
        heavy-ball).  Momentum changes the float trajectory — the contract
        is ranking equivalence within the ``ranking_inversion_gap`` tie
        bound, not bit-identity — and a diverging accelerated solve falls
        back to one plain rerun (``acceleration="fallback-plain"`` in the
        diagnostics), mirroring the warm-start fallback.
    """

    name = "HnD"

    def __init__(
        self,
        *,
        tolerance: float = DEFAULT_TOLERANCE,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        break_symmetry: bool = True,
        check_connectivity: bool = False,
        random_state: RandomState = None,
        acceleration: Optional[str] = None,
    ) -> None:
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.break_symmetry = break_symmetry
        self.check_connectivity = check_connectivity
        self.random_state = random_state
        self.acceleration = acceleration

    def rank(
        self,
        response: ResponseMatrix,
        *,
        init_state: Optional[SolverState] = None,
    ) -> AbilityRanking:
        if self.check_connectivity:
            response.require_connected()
        m = response.num_users
        if m < 2:
            return AbilityRanking(scores=np.zeros(m), method=self.name,
                                  diagnostics=_trivial_diagnostics(init_state))
        diff_step = hnd_difference_step(response)
        result, state, warm_mode = hnd_power_solve(
            diff_step,
            m,
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            random_state=self.random_state,
            init_state=init_state,
            acceleration=self.acceleration,
        )
        scores = apply_cumulative(result.vector)
        diagnostics = {
            "iterations": result.iterations,
            "converged": result.converged,
            "residual": result.residual,
            "eigenvalue": result.eigenvalue,
            "diff_vector_variance": float(np.var(result.vector)),
            "warm_start": warm_mode,
            "acceleration": result.acceleration,
        }
        if self.break_symmetry:
            scores, symmetry_diag = orient_scores(response, scores)
            diagnostics.update(symmetry_diag)
        return AbilityRanking(scores=scores, method=self.name,
                              diagnostics=diagnostics, state=state)


@register_ranker(
    "HnD-direct",
    params=("break_symmetry", "check_connectivity"),
    summary="HITSnDIFFS via a direct Arnoldi eigensolve of U",
)
class HNDDirect(AbilityRanker):
    """HITSnDIFFS via a direct Arnoldi solve of the 2nd eigenvector of ``U``.

    Materializes ``U`` (``O(m^2)`` memory) and calls
    :func:`repro.linalg.spectral.second_largest_eigenvector`; used in the
    scalability comparison of Figure 5 and as a cross-check of HND-power.
    """

    name = "HnD-direct"

    def __init__(self, *, break_symmetry: bool = True,
                 check_connectivity: bool = False) -> None:
        self.break_symmetry = break_symmetry
        self.check_connectivity = check_connectivity

    def rank(self, response: ResponseMatrix) -> AbilityRanking:
        if self.check_connectivity:
            response.require_connected()
        m = response.num_users
        if m < 2:
            return AbilityRanking(scores=np.zeros(m), method=self.name)
        u = update_matrix(response)
        scores = second_largest_eigenvector(u)
        diagnostics: dict = {"solver": "arnoldi"}
        if self.break_symmetry:
            scores, symmetry_diag = orient_scores(response, scores)
            diagnostics.update(symmetry_diag)
        return AbilityRanking(scores=scores, method=self.name, diagnostics=diagnostics)


@register_ranker(
    "HnD-deflation",
    params=("tolerance", "max_iterations", "break_symmetry",
            "check_connectivity", "random_state"),
    summary="HITSnDIFFS via Hotelling deflation of U (Section III-F)",
)
class HNDDeflation(AbilityRanker):
    """HITSnDIFFS via Hotelling deflation of the update matrix ``U``.

    The dominant *right* eigenvector of ``U`` is known analytically (the
    all-ones direction, Lemma 4), so only the dominant left eigenvector needs
    a power-iteration run before deflating — still one more run than
    HND-power needs, which is why the paper finds deflation ~20% slower.
    """

    name = "HnD-deflation"

    def __init__(
        self,
        *,
        tolerance: float = DEFAULT_TOLERANCE,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        break_symmetry: bool = True,
        check_connectivity: bool = False,
        random_state: RandomState = None,
    ) -> None:
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.break_symmetry = break_symmetry
        self.check_connectivity = check_connectivity
        self.random_state = random_state

    def rank(self, response: ResponseMatrix) -> AbilityRanking:
        if self.check_connectivity:
            response.require_connected()
        m = response.num_users
        if m < 2:
            return AbilityRanking(scores=np.zeros(m), method=self.name)
        u = update_matrix(response)
        result = hotelling_deflation(
            u,
            right_vector=avghits_fixed_point(response),
            eigenvalue=1.0,
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            random_state=self.random_state,
        )
        scores = result.vector
        diagnostics = {
            "iterations": result.iterations,
            "converged": result.converged,
            "residual": result.residual,
        }
        if self.break_symmetry:
            scores, symmetry_diag = orient_scores(response, scores)
            diagnostics.update(symmetry_diag)
        return AbilityRanking(scores=scores, method=self.name, diagnostics=diagnostics)


def hits_n_diffs(
    response: ResponseMatrix,
    *,
    variant: str = "power",
    **kwargs,
) -> AbilityRanking:
    """Functional entry point: rank users with the chosen HND variant.

    ``variant`` is one of ``"power"`` (default, Algorithm 1), ``"direct"``,
    or ``"deflation"``; remaining keyword arguments are forwarded to the
    corresponding ranker class.
    """
    variants = {
        "power": HNDPower,
        "direct": HNDDirect,
        "deflation": HNDDeflation,
    }
    try:
        ranker_cls = variants[variant]
    except KeyError:
        raise ValueError(
            "unknown HND variant %r; expected one of %s" % (variant, sorted(variants))
        ) from None
    return ranker_cls(**kwargs).rank(response)
