"""Core package: the response matrix and the HITSnDIFFS algorithm family."""

from repro.core.response import (
    NO_ANSWER,
    CompiledResponse,
    ResponseBuilder,
    ResponseMatrix,
    score_against_truth,
)
from repro.core.ranking import (
    AbilityRanker,
    AbilityRanking,
    SupervisedAbilityRanker,
    ranking_from_scores,
)
from repro.core.solver_state import SolverState, warm_table, warm_vector
from repro.core.avghits import (
    avghits_fixed_point,
    avghits_step,
    difference_update_matrix,
    hnd_difference_step,
    spectral_gap,
    update_matrix,
)
from repro.core.symmetry import decile_entropies, orient_scores
from repro.core.hitsndiffs import HNDDeflation, HNDDirect, HNDPower, hits_n_diffs

__all__ = [
    "NO_ANSWER",
    "CompiledResponse",
    "ResponseBuilder",
    "ResponseMatrix",
    "score_against_truth",
    "AbilityRanker",
    "AbilityRanking",
    "SupervisedAbilityRanker",
    "ranking_from_scores",
    "SolverState",
    "warm_vector",
    "warm_table",
    "update_matrix",
    "difference_update_matrix",
    "avghits_step",
    "hnd_difference_step",
    "avghits_fixed_point",
    "spectral_gap",
    "decile_entropies",
    "orient_scores",
    "HNDPower",
    "HNDDirect",
    "HNDDeflation",
    "hits_n_diffs",
]
