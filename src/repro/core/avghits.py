"""AVGHITS: the averaging variant of HITS and its update matrices.

Section III-B of the paper replaces HITS' sums with averages:

* user score  ``s <- C_row w``  (average weight of the options the user picked)
* option weight ``w <- (C_col)^T s`` (average score of the users who picked it)

Combining both steps gives the row-stochastic update matrix
``U = C_row (C_col)^T`` whose largest eigenvector is the all-ones vector;
the *2nd largest* eigenvector's ordering recovers the C1P row order
(Theorem 1).  HND finds it through the difference matrix
``U_diff = S U T`` (Figure 3), whose *largest* eigenvector is the adjacent
difference of that 2nd eigenvector (Lemma 1).

This module exposes both the explicit matrices (for tests, for HND-direct
and HND-deflation) and matrix-free update callables (for HND-power).

Complexity / speed table
------------------------
With ``m`` users, ``n`` items, ``K = sum_i k_i`` option columns,
``nnz <= mn`` answers, and ``t`` power iterations:

===========================  ================  =================================
callable                     cost              notes
===========================  ================  =================================
``update_matrix``            ``O(m^2 n)``      dense ``(m x m)`` oracle; tests,
                                               HND-direct, HND-deflation only
``difference_update_matrix`` ``O(m^2 n)``      dense oracle for ``S U T``
``avghits_step``             ``O(nnz)``/call   fused kernel: two cached CSR/CSC
                                               matvecs + ``O(K)+O(m)`` scalings
``hnd_difference_step``      ``O(nnz)``/call   cumsum, fused step, diff — the
                                               loop body of Algorithm 1
``spectral_gap``             ``O(nnz t)``      implicit Arnoldi for ``m > 16``
                                               (was dense ``O(m^3)`` eigvals)
===========================  ================  =================================

The fused kernels draw everything from :attr:`ResponseMatrix.compiled`, so
nothing is rebuilt across calls or iterations: the seed implementation paid
a ``diags() @ C`` sparse-sparse product for each normalization on *every*
``rank()`` call, which dominated the end-to-end cost (~0.2 s of the ~0.25 s
total at ``m = 5000, n = 200``; see ``benchmarks/BENCH_PR1.json``).
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np
import scipy.sparse.linalg as spla

from repro.core.response import ResponseMatrix
from repro.linalg.operators import (
    apply_cumulative_into,
    apply_difference,
    cumulative_matrix,
    difference_matrix,
)

#: Below this many users the dense eigensolver is more reliable than ARPACK
#: (which needs ``k < size - 1`` and misbehaves on tiny problems).
_DENSE_GAP_SIZE = 16


def update_matrix(response: ResponseMatrix) -> np.ndarray:
    """The dense ``(m x m)`` AVGHITS update matrix ``U = C_row (C_col)^T``.

    Materializing ``U`` costs ``O(m^2 n)`` time and ``O(m^2)`` memory — this
    is exactly what HND-power avoids — so use it for analysis and the direct
    and deflation variants only.  It is also the oracle the fused kernels
    are tested against.
    """
    c_row = response.row_normalized()
    c_col = response.column_normalized()
    product = c_row @ c_col.T
    return np.asarray(product.todense(), dtype=float)


def difference_update_matrix(response: ResponseMatrix) -> np.ndarray:
    """The dense ``((m-1) x (m-1))`` difference update matrix ``U_diff = S U T``."""
    u = update_matrix(response)
    m = response.num_users
    s = difference_matrix(m)
    t = cumulative_matrix(m)
    return s @ u @ t


def avghits_step(response: ResponseMatrix) -> Callable[[np.ndarray], np.ndarray]:
    """Matrix-free AVGHITS update ``s -> C_row ((C_col)^T s)``.

    Each application costs ``O(nnz)``: one gather/scatter pass per direction
    over the cached one-hot structure, with the row/column normalizations
    fused in as diagonal scalings (see
    :meth:`~repro.core.response.CompiledResponse.avghits_apply`).  No
    normalized matrix is materialized and nothing is rebuilt per call.
    """
    return response.compiled.avghits_apply


def hnd_difference_step(response: ResponseMatrix) -> Callable[[np.ndarray], np.ndarray]:
    """Matrix-free HND update ``s_diff -> S C_row ((C_col)^T (T s_diff))``.

    Implements one loop body of Algorithm 1 without the normalization:
    reconstruct scores by cumulative sum, run the fused AVGHITS step, and
    take adjacent differences again.  Cost ``O(nnz)`` per application.
    """
    compiled = response.compiled
    scores = np.empty(compiled.num_users, dtype=float)

    def diff_step(score_diffs: np.ndarray) -> np.ndarray:
        updated = compiled.avghits_apply(apply_cumulative_into(score_diffs, scores))
        return apply_difference(updated)

    return diff_step


def avghits_fixed_point(response: ResponseMatrix) -> np.ndarray:
    """The dominant eigenvector of ``U``: the (normalized) all-ones direction.

    Lemma 4 of the paper: when the bipartite graph is connected, AVGHITS'
    fixed point carries no ranking information — every user converges to the
    same score — which is why HND targets the 2nd eigenvector instead.
    """
    m = response.num_users
    return np.ones(m) / np.sqrt(m)


def spectral_gap(response: ResponseMatrix) -> Tuple[float, float]:
    """Return ``(lambda_1, lambda_2)`` of ``U``.

    Useful to reason about convergence speed of the HND power iteration:
    the rate is ``|lambda_3 / lambda_2|`` on ``U_diff`` whose spectrum equals
    that of ``U`` minus the top eigenvalue.

    For ``m > 16`` the two leading eigenvalues come from an implicit Arnoldi
    solve on the fused ``O(nnz)`` kernel — the diagnostic no longer
    materializes ``U`` or runs a dense ``O(m^3)`` ``eigvals``, so it stays
    usable at ``m >= 5000``.
    """
    m = response.num_users
    if m <= _DENSE_GAP_SIZE:
        eigenvalues = np.linalg.eigvals(update_matrix(response))
    else:
        operator = spla.LinearOperator(
            (m, m), matvec=response.compiled.avghits_apply, dtype=float
        )
        # Fixed start vector: ARPACK otherwise draws a random v0, making
        # the diagnostic nondeterministic run to run.  (Residual last-ulp
        # jitter from threaded-BLAS reduction order can remain.)
        eigenvalues = spla.eigs(
            operator,
            k=2,
            which="LR",
            return_eigenvectors=False,
            v0=np.full(m, 1.0 / np.sqrt(m)),
        )
    ordered = np.sort(eigenvalues.real)[::-1]
    return float(ordered[0]), float(ordered[1]) if ordered.size > 1 else float("nan")
