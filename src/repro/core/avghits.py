"""AVGHITS: the averaging variant of HITS and its update matrices.

Section III-B of the paper replaces HITS' sums with averages:

* user score  ``s <- C_row w``  (average weight of the options the user picked)
* option weight ``w <- (C_col)^T s`` (average score of the users who picked it)

Combining both steps gives the row-stochastic update matrix
``U = C_row (C_col)^T`` whose largest eigenvector is the all-ones vector;
the *2nd largest* eigenvector's ordering recovers the C1P row order
(Theorem 1).  HND finds it through the difference matrix
``U_diff = S U T`` (Figure 3), whose *largest* eigenvector is the adjacent
difference of that 2nd eigenvector (Lemma 1).

This module exposes both the explicit matrices (for tests, for HND-direct
and HND-deflation) and matrix-free update callables (for HND-power).
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.response import ResponseMatrix
from repro.linalg.operators import (
    apply_cumulative,
    apply_difference,
    cumulative_matrix,
    difference_matrix,
)


def update_matrix(response: ResponseMatrix) -> np.ndarray:
    """The dense ``(m x m)`` AVGHITS update matrix ``U = C_row (C_col)^T``.

    Materializing ``U`` costs ``O(m^2 n)`` time and ``O(m^2)`` memory — this
    is exactly what HND-power avoids — so use it for analysis and the direct
    and deflation variants only.
    """
    c_row = response.row_normalized()
    c_col = response.column_normalized()
    product = c_row @ c_col.T
    return np.asarray(product.todense(), dtype=float)


def difference_update_matrix(response: ResponseMatrix) -> np.ndarray:
    """The dense ``((m-1) x (m-1))`` difference update matrix ``U_diff = S U T``."""
    u = update_matrix(response)
    m = response.num_users
    s = difference_matrix(m)
    t = cumulative_matrix(m)
    return s @ u @ t


def avghits_step(response: ResponseMatrix) -> Callable[[np.ndarray], np.ndarray]:
    """Matrix-free AVGHITS update ``s -> C_row ((C_col)^T s)``.

    Each application costs ``O(mn)`` (two sparse matrix-vector products).
    """
    c_row = response.row_normalized()
    c_col_t = response.column_normalized().T.tocsr()

    def step(scores: np.ndarray) -> np.ndarray:
        weights = c_col_t @ scores
        return np.asarray(c_row @ weights).ravel()

    return step


def hnd_difference_step(response: ResponseMatrix) -> Callable[[np.ndarray], np.ndarray]:
    """Matrix-free HND update ``s_diff -> S C_row ((C_col)^T (T s_diff))``.

    Implements one loop body of Algorithm 1 without the normalization:
    reconstruct scores by cumulative sum, run the AVGHITS step, and take
    adjacent differences again.  Cost ``O(mn)`` per application.
    """
    step = avghits_step(response)

    def diff_step(score_diffs: np.ndarray) -> np.ndarray:
        scores = apply_cumulative(score_diffs)
        updated = step(scores)
        return apply_difference(updated)

    return diff_step


def avghits_fixed_point(response: ResponseMatrix) -> np.ndarray:
    """The dominant eigenvector of ``U``: the (normalized) all-ones direction.

    Lemma 4 of the paper: when the bipartite graph is connected, AVGHITS'
    fixed point carries no ranking information — every user converges to the
    same score — which is why HND targets the 2nd eigenvector instead.
    """
    m = response.num_users
    return np.ones(m) / np.sqrt(m)


def spectral_gap(response: ResponseMatrix) -> Tuple[float, float]:
    """Return ``(lambda_1, lambda_2)`` of ``U`` (dense computation).

    Useful to reason about convergence speed of the HND power iteration:
    the rate is ``|lambda_3 / lambda_2|`` on ``U_diff`` whose spectrum equals
    that of ``U`` minus the top eigenvalue.
    """
    u = update_matrix(response)
    eigenvalues = np.linalg.eigvals(u)
    ordered = np.sort(eigenvalues.real)[::-1]
    return float(ordered[0]), float(ordered[1]) if ordered.size > 1 else float("nan")
