"""Predicates on binary matrices from seriation theory.

Definitions from Section II-C and Appendix B of the paper:

* **P-matrix** (Definition 3): a binary matrix in which the 1s of every
  column are consecutive — the matrix "has C1P".
* **pre-P-matrix**: a binary matrix whose rows can be permuted into a
  P-matrix.
* **R-matrix** (Definition 4): a symmetric matrix whose entries fall off
  (weakly) when moving away from the diagonal along any row; ``C C^T`` and
  the AVGHITS matrix ``U`` of a row-sorted P-matrix are R-matrices, which is
  the heart of the HND correctness proof.

The pre-P test here delegates to the Booth–Lueker PQ-tree reduction for
anything beyond brute-force size; a brute-force checker over all row
permutations is kept for property-based testing of small instances.
"""

from __future__ import annotations

from itertools import permutations
from typing import Optional

import numpy as np
import scipy.sparse as sp


def _as_dense_binary(matrix: np.ndarray | sp.spmatrix) -> np.ndarray:
    if sp.issparse(matrix):
        matrix = np.asarray(matrix.todense())
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    if np.any((matrix != 0) & (matrix != 1)):
        raise ValueError("expected a binary (0/1) matrix")
    return matrix.astype(int)


def column_is_consecutive(column: np.ndarray) -> bool:
    """True when all 1s of a binary column form one contiguous block."""
    ones = np.flatnonzero(np.asarray(column) != 0)
    if ones.size <= 1:
        return True
    return bool(ones[-1] - ones[0] + 1 == ones.size)


def is_p_matrix(matrix: np.ndarray | sp.spmatrix) -> bool:
    """True when ``matrix`` satisfies the consecutive ones property as-is."""
    dense = _as_dense_binary(matrix)
    return all(column_is_consecutive(dense[:, i]) for i in range(dense.shape[1]))


def is_pre_p_matrix(matrix: np.ndarray | sp.spmatrix) -> bool:
    """True when some row permutation of ``matrix`` is a P-matrix.

    Uses the PQ-tree based Booth–Lueker test from
    :mod:`repro.c1p.booth_lueker`.
    """
    from repro.c1p.booth_lueker import find_c1p_ordering

    dense = _as_dense_binary(matrix)
    return find_c1p_ordering(dense) is not None


def brute_force_c1p_ordering(matrix: np.ndarray) -> Optional[np.ndarray]:
    """Exhaustively search all row permutations for a C1P ordering.

    Only intended for testing (m <= 8); returns the first permutation found
    or None.
    """
    dense = _as_dense_binary(matrix)
    m = dense.shape[0]
    if m > 9:
        raise ValueError("brute force is limited to at most 9 rows")
    for order in permutations(range(m)):
        if is_p_matrix(dense[list(order)]):
            return np.array(order, dtype=int)
    return None


def is_r_matrix(matrix: np.ndarray, *, atol: float = 1e-12) -> bool:
    """True when ``matrix`` is an R-matrix (Definition 4 of the paper).

    The matrix must be symmetric and, along every row ``j``, entries must not
    increase when moving away from the diagonal:
    ``A[j, i] >= A[j, h]`` for ``j < i < h`` and
    ``A[j, i] <= A[j, h]`` for ``i < h < j``.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    if not np.allclose(matrix, matrix.T, atol=1e-9):
        return False
    size = matrix.shape[0]
    for j in range(size):
        right = matrix[j, j:]
        if np.any(np.diff(right) > atol):
            return False
        left = matrix[j, : j + 1]
        if np.any(np.diff(left) < -atol):
            return False
    return True


def monotonicity_violations(vector: np.ndarray, *, atol: float = 1e-12) -> int:
    """Number of adjacent pairs violating monotonicity in either direction.

    Zero means the vector is monotone (non-decreasing or non-increasing),
    which is what Theorem 1 guarantees for the 2nd largest eigenvector of
    ``U`` on ideal inputs.
    """
    diffs = np.diff(np.asarray(vector, dtype=float))
    increasing_violations = int(np.sum(diffs < -atol))
    decreasing_violations = int(np.sum(diffs > atol))
    return min(increasing_violations, decreasing_violations)
