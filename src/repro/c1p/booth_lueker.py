"""Booth–Lueker consecutive ones testing and ordering via PQ-trees.

The BL algorithm (Section II-C of the paper) decides whether a binary matrix
is a pre-P-matrix and, when it is, produces a row ordering that realizes the
consecutive ones property.  It is the fastest exact method but — unlike HND
and ABH — offers no answer at all when the matrix is *not* pre-P, which is
why the paper keeps it out of the accuracy experiments.  We provide it as
the exact combinatorial reference against which the spectral methods are
validated in the test suite.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.c1p.pq_tree import PQTree
from repro.c1p.properties import is_p_matrix
from repro.exceptions import NotC1PError


def _column_supports(matrix: np.ndarray | sp.spmatrix) -> List[np.ndarray]:
    """Row-index support of every column, skipping empty and full columns later."""
    if sp.issparse(matrix):
        matrix = matrix.tocsc()
        return [matrix.indices[matrix.indptr[i]:matrix.indptr[i + 1]].copy()
                for i in range(matrix.shape[1])]
    matrix = np.asarray(matrix)
    return [np.flatnonzero(matrix[:, i]) for i in range(matrix.shape[1])]


def build_pq_tree(matrix: np.ndarray | sp.spmatrix) -> Optional[PQTree]:
    """Run the full BL reduction and return the resulting PQ-tree.

    Columns are processed in decreasing support size, which keeps the tree
    shallow early on.  Returns ``None`` when some column cannot be made
    consecutive, i.e. the matrix is not pre-P.
    """
    num_rows = matrix.shape[0]
    tree = PQTree(range(num_rows))
    supports = _column_supports(matrix)
    supports = [s for s in supports if 1 < s.size < num_rows]
    supports.sort(key=lambda s: -s.size)
    for support in supports:
        if not tree.reduce(support.tolist()):
            return None
    return tree


def find_c1p_ordering(matrix: np.ndarray | sp.spmatrix) -> Optional[np.ndarray]:
    """Return a row ordering realizing C1P, or ``None`` if none exists.

    The returned array ``order`` satisfies: ``matrix[order]`` is a P-matrix.
    """
    tree = build_pq_tree(matrix)
    if tree is None:
        return None
    order = np.asarray(tree.frontier(), dtype=int)
    # The PQ-tree construction guarantees validity; the assertion below is a
    # cheap safety net against implementation regressions.
    dense = matrix.todense() if sp.issparse(matrix) else matrix
    if not is_p_matrix(np.asarray(dense)[order]):  # pragma: no cover - defensive
        return None
    return order


def require_c1p_ordering(matrix: np.ndarray | sp.spmatrix) -> np.ndarray:
    """Like :func:`find_c1p_ordering` but raises :class:`NotC1PError` on failure."""
    order = find_c1p_ordering(matrix)
    if order is None:
        raise NotC1PError("the matrix is not a pre-P-matrix: no row ordering realizes C1P")
    return order


def count_c1p_violations(matrix: np.ndarray | sp.spmatrix) -> int:
    """Number of columns whose 1s are not consecutive in the current row order.

    A quality measure for heuristic orderings of non-ideal matrices: 0 means
    the ordering realizes C1P exactly.
    """
    if sp.issparse(matrix):
        matrix = np.asarray(matrix.todense())
    matrix = np.asarray(matrix)
    violations = 0
    for i in range(matrix.shape[1]):
        ones = np.flatnonzero(matrix[:, i])
        if ones.size > 1 and ones[-1] - ones[0] + 1 != ones.size:
            violations += 1
    return violations
