"""A PQ-tree for the consecutive ones problem (Booth & Lueker 1976).

A PQ-tree over a ground set represents a family of permutations of that set.
Leaves are ground-set elements; **P-nodes** allow their children to appear in
any order; **Q-nodes** fix the order of their children up to full reversal.
The represented permutations are the *frontiers* (left-to-right leaf orders)
reachable by these operations.

``reduce(S)`` restricts the tree to the permutations in which the elements
of ``S`` appear consecutively, or fails when no such permutation remains.
Reducing with every column of a binary matrix therefore decides the
consecutive ones property and, on success, the frontier is a witness row
ordering — exactly the Booth–Lueker algorithm (the paper's ``BL`` baseline,
Section II-C).

This implementation favours clarity over the original's amortized-linear
bookkeeping: each reduction walks the pertinent subtree explicitly, which is
``O(m)`` per column and entirely sufficient for library use (the paper never
runs BL in experiments; it exists as the exact combinatorial reference).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence

from repro.exceptions import NotC1PError

# Node labels used during a reduction pass.
EMPTY = "empty"
FULL = "full"
PARTIAL = "partial"

# Node kinds.
LEAF = "leaf"
P_NODE = "P"
Q_NODE = "Q"


class PQNode:
    """A node of a PQ-tree.

    Attributes
    ----------
    kind:
        One of ``"leaf"``, ``"P"``, ``"Q"``.
    value:
        The ground-set element for leaves, ``None`` otherwise.
    children:
        Ordered child list (empty for leaves).
    """

    __slots__ = ("kind", "value", "children")

    def __init__(self, kind: str, value: Optional[int] = None,
                 children: Optional[List["PQNode"]] = None) -> None:
        self.kind = kind
        self.value = value
        self.children: List[PQNode] = children if children is not None else []

    # ------------------------------------------------------------------ #
    def leaves(self) -> List[int]:
        """Ground-set elements below this node in frontier order."""
        if self.kind == LEAF:
            return [self.value]  # type: ignore[list-item]
        result: List[int] = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def leaf_set(self) -> FrozenSet[int]:
        """Set of ground-set elements below this node."""
        return frozenset(self.leaves())

    def copy(self) -> "PQNode":
        """Deep copy of the subtree rooted here."""
        if self.kind == LEAF:
            return PQNode(LEAF, value=self.value)
        return PQNode(self.kind, children=[child.copy() for child in self.children])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == LEAF:
            return str(self.value)
        open_bracket, close_bracket = ("(", ")") if self.kind == P_NODE else ("[", "]")
        inner = " ".join(repr(child) for child in self.children)
        return f"{open_bracket}{inner}{close_bracket}"


def _group(children: List[PQNode], kind: str = P_NODE) -> Optional[PQNode]:
    """Wrap a child list into a single node (or return the lone child / None)."""
    if not children:
        return None
    if len(children) == 1:
        return children[0]
    return PQNode(kind, children=list(children))


def _simplify(node: PQNode) -> PQNode:
    """Collapse single-child internal nodes (they impose no constraint).

    Note that nested P-in-P (or Q-in-Q) nodes must NOT be flattened: an
    internal node with two or more children constrains its leaves to stay
    together, which is exactly the information the reduction templates
    record.
    """
    if node.kind == LEAF:
        return node
    node.children = [_simplify(child) for child in node.children]
    if len(node.children) == 1:
        return node.children[0]
    if node.kind == Q_NODE and len(node.children) == 2:
        # A Q-node with two children permits the same orders as a P-node.
        node.kind = P_NODE
    return node


class PQTree:
    """PQ-tree over the ground set ``{0, ..., size - 1}``.

    Parameters
    ----------
    universe:
        Iterable of ground-set elements.  The initial tree is a single P-node
        whose children are all the leaves (it represents every permutation).
    """

    def __init__(self, universe: Iterable[int]) -> None:
        elements = list(universe)
        if not elements:
            raise ValueError("the PQ-tree ground set must not be empty")
        if len(set(elements)) != len(elements):
            raise ValueError("ground-set elements must be distinct")
        self._universe = frozenset(elements)
        if len(elements) == 1:
            self._root = PQNode(LEAF, value=elements[0])
        else:
            self._root = PQNode(P_NODE, children=[PQNode(LEAF, value=e) for e in elements])

    # ------------------------------------------------------------------ #
    @property
    def root(self) -> PQNode:
        return self._root

    @property
    def universe(self) -> FrozenSet[int]:
        return self._universe

    def frontier(self) -> List[int]:
        """One permutation consistent with every reduction applied so far."""
        return self._root.leaves()

    # ------------------------------------------------------------------ #
    def reduce(self, constraint: Iterable[int]) -> bool:
        """Require the elements of ``constraint`` to be consecutive.

        Returns ``True`` on success (the tree is updated in place) and
        ``False`` when the constraint is incompatible with the previously
        applied ones; in the failure case the tree is left unchanged.
        """
        subset = frozenset(constraint)
        unknown = subset - self._universe
        if unknown:
            raise ValueError(f"constraint contains unknown elements: {sorted(unknown)}")
        if len(subset) <= 1 or subset == self._universe:
            return True
        backup = self._root.copy()
        pertinent_root = self._find_pertinent_root(self._root, subset)
        try:
            label, new_node = self._process(pertinent_root, subset, is_root=True)
        except NotC1PError:
            self._root = backup
            return False
        self._replace(self._root, pertinent_root, new_node)
        if pertinent_root is self._root:
            self._root = new_node
        self._root = _simplify(self._root)
        return True

    def reduce_all(self, constraints: Sequence[Iterable[int]]) -> bool:
        """Apply :meth:`reduce` for each constraint; stop and report failure early."""
        for constraint in constraints:
            if not self.reduce(constraint):
                return False
        return True

    # ------------------------------------------------------------------ #
    def _find_pertinent_root(self, node: PQNode, subset: FrozenSet[int]) -> PQNode:
        """Deepest node whose subtree contains all elements of ``subset``."""
        current = node
        while True:
            if current.kind == LEAF:
                return current
            containing_child = None
            for child in current.children:
                child_leaves = child.leaf_set()
                if subset <= child_leaves:
                    containing_child = child
                    break
                if subset & child_leaves:
                    # subset spans multiple children: current is the root.
                    return current
            if containing_child is None:
                return current
            current = containing_child

    def _replace(self, node: PQNode, old: PQNode, new: PQNode) -> bool:
        """Replace ``old`` with ``new`` in the subtree of ``node`` (identity match)."""
        if node is old:
            return True
        if node.kind == LEAF:
            return False
        for index, child in enumerate(node.children):
            if child is old:
                node.children[index] = new
                return True
            if self._replace(child, old, new):
                return True
        return False

    # ------------------------------------------------------------------ #
    # Template matching
    # ------------------------------------------------------------------ #
    def _process(self, node: PQNode, subset: FrozenSet[int], *, is_root: bool):
        """Recursively reduce ``node``; return ``(label, replacement_node)``.

        Partial nodes are returned as Q-nodes whose children run from the
        empty side (left) to the full side (right).

        Raises
        ------
        NotC1PError
            When no template applies, i.e. the constraint cannot be made
            consecutive.
        """
        if node.kind == LEAF:
            return (FULL if node.value in subset else EMPTY), node

        processed = [self._process(child, subset, is_root=False) for child in node.children]
        labels = [label for label, _ in processed]
        children = [child for _, child in processed]

        if all(label == EMPTY for label in labels):
            node.children = children
            return EMPTY, node
        if all(label == FULL for label in labels):
            node.children = children
            return FULL, node

        if node.kind == P_NODE:
            return self._process_p_node(node, labels, children, is_root=is_root)
        return self._process_q_node(node, labels, children, is_root=is_root)

    # ------------------------------------------------------------------ #
    def _process_p_node(self, node: PQNode, labels: List[str],
                        children: List[PQNode], *, is_root: bool):
        empty_children = [c for c, l in zip(children, labels) if l == EMPTY]
        full_children = [c for c, l in zip(children, labels) if l == FULL]
        partial_children = [c for c, l in zip(children, labels) if l == PARTIAL]

        max_partial = 2 if is_root else 1
        if len(partial_children) > max_partial:
            raise NotC1PError("more partial children than the templates allow")

        full_group = _group(full_children)

        if is_root:
            if not partial_children:
                # Template P2: gather the full children under one P-node.
                new_children = list(empty_children)
                if full_group is not None:
                    new_children.append(full_group)
                node.children = new_children
                return FULL, node
            if len(partial_children) == 1:
                # Template P4: append the full group to the full end of the
                # partial Q-child.
                partial = partial_children[0]
                if full_group is not None:
                    partial.children.append(full_group)
                new_children = list(empty_children) + [partial]
                node.children = new_children
                return FULL, node
            # Template P6: two partial children are merged into a single Q-node
            # with the full material in the middle and empties at both ends.
            first, second = partial_children
            merged_children = list(first.children)
            if full_group is not None:
                merged_children.append(full_group)
            merged_children.extend(reversed(second.children))
            merged = PQNode(Q_NODE, children=merged_children)
            new_children = list(empty_children) + [merged]
            node.children = new_children
            return FULL, node

        # Non-root templates.
        empty_group = _group(empty_children)
        if not partial_children:
            # Template P3: X becomes a partial Q-node [empty | full].
            q_children: List[PQNode] = []
            if empty_group is not None:
                q_children.append(empty_group)
            if full_group is not None:
                q_children.append(full_group)
            return PARTIAL, PQNode(Q_NODE, children=q_children)
        # Template P5: exactly one partial child absorbs the rest.
        partial = partial_children[0]
        new_children = []
        if empty_group is not None:
            new_children.append(empty_group)
        new_children.extend(partial.children)
        if full_group is not None:
            new_children.append(full_group)
        return PARTIAL, PQNode(Q_NODE, children=new_children)

    # ------------------------------------------------------------------ #
    def _process_q_node(self, node: PQNode, labels: List[str],
                        children: List[PQNode], *, is_root: bool):
        max_partial = 2 if is_root else 1
        if labels.count(PARTIAL) > max_partial:
            raise NotC1PError("Q-node has too many partial children")

        flattened = self._flatten_q_children(labels, children, is_root=is_root)
        if flattened is None:
            raise NotC1PError("Q-node children are not arrangeable for the constraint")
        new_labels, new_children = flattened
        node.children = new_children

        if is_root:
            return FULL, node
        # The non-root orientation must be empty -> full.
        if new_labels and new_labels[0] == FULL:
            node.children = list(reversed(new_children))
            new_labels = list(reversed(new_labels))
        return PARTIAL, node

    def _flatten_q_children(self, labels: List[str], children: List[PQNode],
                            *, is_root: bool):
        """Flatten partial children and validate the block structure.

        A valid non-root arrangement (up to reversal) is ``E* [partial] F*``;
        a valid root arrangement is ``E* [partial] F* [partial] E*``.
        Partial children (Q-nodes ordered empty->full) are spliced into the
        sequence with their empty side facing the neighbouring empty block.
        Returns the new (labels, children) or None when invalid.
        """

        def try_orientation(lab: List[str], ch: List[PQNode]):
            out_labels: List[str] = []
            out_children: List[PQNode] = []
            # Phases: 0 = leading empties, 1 = fulls, 2 = trailing empties (root only).
            phase = 0
            partial_seen = 0
            for label, child in zip(lab, ch):
                if label == EMPTY:
                    if phase == 1:
                        if not is_root:
                            return None
                        phase = 2
                    out_labels.append(EMPTY)
                    out_children.append(child)
                elif label == FULL:
                    if phase == 0:
                        phase = 1
                    elif phase == 2:
                        return None
                    out_labels.append(FULL)
                    out_children.append(child)
                else:  # PARTIAL
                    partial_seen += 1
                    if partial_seen > (2 if is_root else 1):
                        return None
                    if phase == 0:
                        # Entering the full block: splice empty->full.
                        spliced = list(child.children)
                        phase = 1
                    elif phase == 1:
                        # Leaving the full block: splice full->empty.
                        if not is_root:
                            return None
                        spliced = list(reversed(child.children))
                        phase = 2
                    else:
                        return None
                    out_children.extend(spliced)
                    out_labels.extend([PARTIAL] * len(spliced))
            return out_labels, out_children

        result = try_orientation(labels, children)
        if result is not None:
            return result
        return try_orientation(list(reversed(labels)), list(reversed(children)))
