"""ABH spectral seriation (Atkins, Boman & Hendrickson 1998).

ABH ranks the users by the Fiedler vector — the eigenvector of the 2nd
smallest eigenvalue of the Laplacian ``L = D - C C^T`` of the user
similarity matrix.  On pre-P inputs the Fiedler-vector ordering realizes
C1P; on general inputs it serves as a heuristic, and it is the only prior
method with both properties, making it HND's head-to-head competitor.

Two implementations mirror the paper (Section III-F, Appendix E-B):

* :class:`ABHDirect` — materialize ``C C^T`` and its Laplacian and compute
  the Fiedler vector with Lanczos (``O(m^2 n)`` for the products).
* :class:`ABHPower` — Algorithm 2: power iteration on ``beta*I - M`` with
  ``M = S L T``, evaluated matrix-free.  ``beta`` is the largest diagonal
  entry of ``C C^T``; the iteration count grows with ``beta`` (Figure 14a),
  which is why ABH-power does not beat HND-power despite the similar
  per-iteration cost.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.api.registry import register_ranker
from repro.core.ranking import AbilityRanker, AbilityRanking
from repro.core.response import ResponseMatrix
from repro.core.symmetry import orient_scores
from repro.linalg.operators import (
    apply_cumulative,
    apply_cumulative_into,
    apply_difference,
)
from repro.linalg.power_iteration import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    power_iteration_matvec,
)
from repro.linalg.spectral import fiedler_vector, laplacian

RandomState = Optional[Union[int, np.random.Generator]]


@register_ranker(
    "ABH",
    params=("break_symmetry", "check_connectivity"),
    summary="ABH spectral ranking via the Fiedler vector (Lanczos)",
)
class ABHDirect(AbilityRanker):
    """ABH with a direct (Lanczos) Fiedler-vector computation.

    Parameters mirror :class:`~repro.core.hitsndiffs.HNDDirect`.
    """

    name = "ABH"

    def __init__(self, *, break_symmetry: bool = True,
                 check_connectivity: bool = False) -> None:
        self.break_symmetry = break_symmetry
        self.check_connectivity = check_connectivity

    def rank(self, response: ResponseMatrix) -> AbilityRanking:
        if self.check_connectivity:
            response.require_connected()
        m = response.num_users
        if m < 2:
            return AbilityRanking(scores=np.zeros(m), method=self.name)
        similarity = response.user_similarity()
        lap = laplacian(similarity)
        scores = fiedler_vector(sp.csr_matrix(lap) if m > 16 else lap)
        diagnostics: dict = {"solver": "lanczos"}
        if self.break_symmetry:
            scores, symmetry_diag = orient_scores(response, scores)
            diagnostics.update(symmetry_diag)
        return AbilityRanking(scores=scores, method=self.name, diagnostics=diagnostics)


@register_ranker(
    "ABH-power",
    params=("beta", "tolerance", "max_iterations", "break_symmetry",
            "check_connectivity", "random_state"),
    summary="ABH via shifted power iteration on the similarity Laplacian",
)
class ABHPower(AbilityRanker):
    """ABH via power iteration on ``beta*I - M`` (Algorithm 2 of the paper).

    The per-iteration cost is ``O(mn + m^2)`` because applying the Laplacian
    requires the degree vector of ``C C^T`` — computable once — plus a
    ``C (C^T s)`` product; the number of iterations grows with ``beta``
    (Appendix E-B), which this implementation exposes in its diagnostics so
    the Figure 14 analysis can be reproduced.

    Parameters
    ----------
    beta:
        Spectral shift.  Defaults to the largest diagonal entry of
        ``C C^T`` (the paper's choice); must dominate all entries and
        eigenvalues of ``M`` for the iteration to converge to the smallest
        eigenvector of ``M``.
    """

    name = "ABH-power"

    def __init__(
        self,
        *,
        beta: Optional[float] = None,
        tolerance: float = DEFAULT_TOLERANCE,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        break_symmetry: bool = True,
        check_connectivity: bool = False,
        random_state: RandomState = None,
    ) -> None:
        self.beta = beta
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.break_symmetry = break_symmetry
        self.check_connectivity = check_connectivity
        self.random_state = random_state

    def rank(self, response: ResponseMatrix) -> AbilityRanking:
        if self.check_connectivity:
            response.require_connected()
        m = response.num_users
        if m < 2:
            return AbilityRanking(scores=np.zeros(m), method=self.name)

        compiled = response.compiled
        # Degrees of C C^T: the count-weighted column sums per user, computable
        # from the cached per-column counts without materializing the product.
        degrees = compiled.user_sums(compiled.column_counts.astype(float))
        # Diagonal of C C^T: each binary entry is 1, so (C C^T)_uu is simply
        # the number of answers of user u (cached).
        diagonal = compiled.answers_per_user.astype(float)
        beta = self.beta if self.beta is not None else float(diagonal.max())
        # beta must upper-bound the entries and eigenvalues of M = S L T; the
        # largest diagonal entry of C C^T is the paper's practical choice but
        # the Laplacian's largest eigenvalue can exceed it, so we guard with
        # the Gershgorin bound 2 * max degree.
        beta = max(beta, 2.0 * float(degrees.max()))

        scores = np.empty(m, dtype=float)

        def matvec(score_diffs: np.ndarray) -> np.ndarray:
            apply_cumulative_into(score_diffs, scores)           # s = T s_diff
            weights = compiled.option_sums(scores)               # w = C^T s
            laplacian_scores = degrees * scores - compiled.user_sums(weights)
            return beta * score_diffs - apply_difference(laplacian_scores)

        result = power_iteration_matvec(
            matvec,
            m - 1,
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            random_state=self.random_state,
        )
        scores = apply_cumulative(result.vector)
        diagnostics = {
            "iterations": result.iterations,
            "converged": result.converged,
            "residual": result.residual,
            "beta": beta,
            "diff_vector_variance": float(np.var(result.vector)),
        }
        if self.break_symmetry:
            scores, symmetry_diag = orient_scores(response, scores)
            diagnostics.update(symmetry_diag)
        return AbilityRanking(scores=scores, method=self.name, diagnostics=diagnostics)
