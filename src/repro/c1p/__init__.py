"""Consecutive Ones Property (C1P) substrate.

Predicates (P-matrix, pre-P-matrix, R-matrix), the Booth–Lueker PQ-tree
algorithm, the ABH spectral seriation competitor, and generators of matrices
with known C1P structure.
"""

from repro.c1p.properties import (
    brute_force_c1p_ordering,
    column_is_consecutive,
    is_p_matrix,
    is_pre_p_matrix,
    is_r_matrix,
    monotonicity_violations,
)
from repro.c1p.pq_tree import PQNode, PQTree
from repro.c1p.booth_lueker import (
    build_pq_tree,
    count_c1p_violations,
    find_c1p_ordering,
    require_c1p_ordering,
)
from repro.c1p.abh import ABHDirect, ABHPower
from repro.c1p.generators import (
    perturb_binary_matrix,
    random_p_matrix,
    random_pre_p_matrix,
    staircase_matrix,
)

__all__ = [
    "is_p_matrix",
    "is_pre_p_matrix",
    "is_r_matrix",
    "column_is_consecutive",
    "monotonicity_violations",
    "brute_force_c1p_ordering",
    "PQTree",
    "PQNode",
    "build_pq_tree",
    "find_c1p_ordering",
    "require_c1p_ordering",
    "count_c1p_violations",
    "ABHDirect",
    "ABHPower",
    "random_p_matrix",
    "random_pre_p_matrix",
    "perturb_binary_matrix",
    "staircase_matrix",
]
