"""Generators of P-matrices, pre-P-matrices, and near-C1P perturbations.

Used by the test suite (property-based tests need a rich supply of matrices
with known C1P structure) and by the stability experiments that perturb an
ideal matrix to study how the spectral methods degrade (Section IV-D).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

RandomState = Optional[Union[int, np.random.Generator]]


def random_p_matrix(
    num_rows: int,
    num_columns: int,
    *,
    min_block: int = 1,
    max_block: Optional[int] = None,
    random_state: RandomState = None,
) -> np.ndarray:
    """Generate a random P-matrix: every column is one consecutive block of 1s.

    Parameters
    ----------
    num_rows, num_columns:
        Matrix shape.
    min_block, max_block:
        Bounds on the length of each column's block of ones
        (``max_block`` defaults to ``num_rows``).
    """
    if num_rows < 1 or num_columns < 1:
        raise ValueError("matrix dimensions must be positive")
    rng = np.random.default_rng(random_state)
    max_block = num_rows if max_block is None else min(max_block, num_rows)
    min_block = max(1, min(min_block, max_block))
    matrix = np.zeros((num_rows, num_columns), dtype=int)
    for column in range(num_columns):
        length = int(rng.integers(min_block, max_block + 1))
        start = int(rng.integers(0, num_rows - length + 1))
        matrix[start:start + length, column] = 1
    return matrix


def random_pre_p_matrix(
    num_rows: int,
    num_columns: int,
    *,
    min_block: int = 1,
    max_block: Optional[int] = None,
    random_state: RandomState = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a pre-P-matrix together with a row order that realizes C1P.

    Returns ``(matrix, order)`` where ``matrix[order]`` is a P-matrix: the
    matrix is a random P-matrix whose rows were shuffled, and ``order`` is
    the inverse shuffle.
    """
    rng = np.random.default_rng(random_state)
    p_matrix = random_p_matrix(
        num_rows,
        num_columns,
        min_block=min_block,
        max_block=max_block,
        random_state=rng,
    )
    permutation = rng.permutation(num_rows)
    shuffled = p_matrix[permutation]
    # ``shuffled[order] == p_matrix``: order is the inverse permutation.
    order = np.argsort(permutation, kind="stable")
    return shuffled, order


def perturb_binary_matrix(
    matrix: np.ndarray,
    flip_probability: float,
    *,
    random_state: RandomState = None,
) -> np.ndarray:
    """Flip each entry independently with the given probability.

    Models deviation from the ideal consistent-response case; used by the
    robustness tests that check HND degrades gracefully rather than
    catastrophically as the perturbation grows.
    """
    if not 0 <= flip_probability <= 1:
        raise ValueError("flip_probability must lie in [0, 1]")
    rng = np.random.default_rng(random_state)
    matrix = np.asarray(matrix, dtype=int)
    flips = rng.random(matrix.shape) < flip_probability
    return np.where(flips, 1 - matrix, matrix)


def staircase_matrix(num_rows: int, num_columns: int) -> np.ndarray:
    """A deterministic banded P-matrix with a unique C1P ordering.

    Column ``i`` covers a sliding window of rows, so consecutive rows always
    share more columns than distant rows — a convenient fixture with a
    unique (up to reversal) consecutive ones ordering.
    """
    if num_rows < 2 or num_columns < 1:
        raise ValueError("need at least 2 rows and 1 column")
    matrix = np.zeros((num_rows, num_columns), dtype=int)
    window = max(2, num_rows // 3)
    for column in range(num_columns):
        start = int(round(column * (num_rows - window) / max(num_columns - 1, 1)))
        matrix[start:start + window, column] = 1
    return matrix
