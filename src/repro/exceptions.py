"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch a single base class.  More specific subclasses communicate which
subsystem rejected the input and why.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidResponseMatrixError(ReproError):
    """Raised when a response matrix fails structural validation.

    Examples include: a one-hot matrix with more than a single 1 per
    user/item block, negative entries, an empty matrix, or mismatched
    dimensions between the raw choice matrix and the declared number of
    options per item.
    """


class DisconnectedGraphError(ReproError):
    """Raised when the user-option bipartite graph is not connected.

    Spectral ranking methods (HND, ABH, HITS) cannot compare users that
    live in different connected components; callers should either restrict
    to the largest component or add connecting items.
    """


class ConvergenceError(ReproError):
    """Raised when an iterative solver fails to converge within its budget."""

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class NotC1PError(ReproError):
    """Raised when a matrix is required to have the consecutive ones property
    (after row permutation) but does not."""


class EstimationError(ReproError):
    """Raised when a statistical estimator (e.g. the GRM estimator) cannot
    produce parameter estimates for the provided data."""


class DatasetError(ReproError):
    """Raised for unknown dataset names or malformed dataset files."""
