"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch a single base class.  More specific subclasses communicate which
subsystem rejected the input and why.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidResponseMatrixError(ReproError):
    """Raised when a response matrix fails structural validation.

    Examples include: a one-hot matrix with more than a single 1 per
    user/item block, negative entries, an empty matrix, or mismatched
    dimensions between the raw choice matrix and the declared number of
    options per item.
    """


class DisconnectedGraphError(ReproError):
    """Raised when the user-option bipartite graph is not connected.

    Spectral ranking methods (HND, ABH, HITS) cannot compare users that
    live in different connected components; callers should either restrict
    to the largest component or add connecting items.
    """


class ConvergenceError(ReproError):
    """Raised when an iterative solver fails to converge within its budget."""

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class EngineError(ReproError, RuntimeError):
    """Base class for execution-engine failures (pools, remote workers).

    Also derives from :class:`RuntimeError` so callers written against the
    engines' pre-taxonomy errors keep working.  Subclasses carry the
    failing worker/shard so supervision layers and operators can tell
    *which* component misbehaved without parsing messages.

    Attributes
    ----------
    worker:
        Identifier of the failing worker — a ``"host:port"`` string for
        remote workers, a pid for pool workers — or ``None`` when the
        failure is not attributable to one worker.
    shard:
        Index of the shard whose task failed, or ``None``.
    """

    def __init__(self, message: str, *, worker: object = None,
                 shard: int | None = None) -> None:
        super().__init__(message)
        self.worker = worker
        self.shard = shard


class WorkerUnavailableError(EngineError):
    """A worker died, refused connections, or exhausted its retry budget."""


class WorkerTimeoutError(EngineError):
    """A worker failed to answer within the configured deadline."""

    def __init__(self, message: str, *, worker: object = None,
                 shard: int | None = None,
                 timeout: float | None = None) -> None:
        super().__init__(message, worker=worker, shard=shard)
        self.timeout = timeout


class ProtocolError(EngineError):
    """A remote message frame failed validation (bad magic, truncation,
    checksum mismatch, malformed header).  The connection that produced it
    can no longer be trusted and is dropped; the request itself is safe to
    retry on a fresh connection because every engine op is pure."""


class CircuitOpenError(EngineError):
    """A request was refused because the worker's circuit breaker is open.

    Raised *without* touching the network: the breaker tripped on repeated
    failures and is backing off until its reset timeout elapses.
    """

    def __init__(self, message: str, *, worker: object = None,
                 shard: int | None = None,
                 retry_after: float | None = None) -> None:
        super().__init__(message, worker=worker, shard=shard)
        self.retry_after = retry_after


class NotC1PError(ReproError):
    """Raised when a matrix is required to have the consecutive ones property
    (after row permutation) but does not."""


class EstimationError(ReproError):
    """Raised when a statistical estimator (e.g. the GRM estimator) cannot
    produce parameter estimates for the provided data."""


class DatasetError(ReproError):
    """Raised for unknown dataset names or malformed dataset files."""
