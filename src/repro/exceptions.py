"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch a single base class.  More specific subclasses communicate which
subsystem rejected the input and why.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidResponseMatrixError(ReproError):
    """Raised when a response matrix fails structural validation.

    Examples include: a one-hot matrix with more than a single 1 per
    user/item block, negative entries, an empty matrix, or mismatched
    dimensions between the raw choice matrix and the declared number of
    options per item.
    """


class DisconnectedGraphError(ReproError):
    """Raised when the user-option bipartite graph is not connected.

    Spectral ranking methods (HND, ABH, HITS) cannot compare users that
    live in different connected components; callers should either restrict
    to the largest component or add connecting items.
    """


class ConvergenceError(ReproError):
    """Raised when an iterative solver fails to converge within its budget."""

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class EngineError(ReproError, RuntimeError):
    """Base class for execution-engine failures (pools, remote workers).

    Also derives from :class:`RuntimeError` so callers written against the
    engines' pre-taxonomy errors keep working.  Subclasses carry the
    failing worker/shard so supervision layers and operators can tell
    *which* component misbehaved without parsing messages.

    Attributes
    ----------
    worker:
        Identifier of the failing worker — a ``"host:port"`` string for
        remote workers, a pid for pool workers — or ``None`` when the
        failure is not attributable to one worker.
    shard:
        Index of the shard whose task failed, or ``None``.
    """

    def __init__(self, message: str, *, worker: object = None,
                 shard: int | None = None) -> None:
        super().__init__(message)
        self.worker = worker
        self.shard = shard


class WorkerUnavailableError(EngineError):
    """A worker died, refused connections, or exhausted its retry budget."""


class WorkerTimeoutError(EngineError):
    """A worker failed to answer within the configured deadline."""

    def __init__(self, message: str, *, worker: object = None,
                 shard: int | None = None,
                 timeout: float | None = None) -> None:
        super().__init__(message, worker=worker, shard=shard)
        self.timeout = timeout


class ProtocolError(EngineError):
    """A remote message frame failed validation (bad magic, truncation,
    checksum mismatch, malformed header).  The connection that produced it
    can no longer be trusted and is dropped; the request itself is safe to
    retry on a fresh connection because every engine op is pure."""


class CircuitOpenError(EngineError):
    """A request was refused because the worker's circuit breaker is open.

    Raised *without* touching the network: the breaker tripped on repeated
    failures and is backing off until its reset timeout elapses.
    """

    def __init__(self, message: str, *, worker: object = None,
                 shard: int | None = None,
                 retry_after: float | None = None) -> None:
        super().__init__(message, worker=worker, shard=shard)
        self.retry_after = retry_after


class ServeError(ReproError):
    """Base class for the serving front end's request failures.

    Every subclass carries a stable wire ``code`` — the string the
    ``repro.serve`` protocol puts in an error response — so clients can
    dispatch on the *kind* of rejection without parsing prose.  These are
    *request* errors: the server stays healthy, the connection stays open,
    and (except for :class:`SchemaError` on an unparseable frame) the
    request is safe to retry after addressing the cause.
    """

    code = "error"


class SchemaError(ServeError):
    """A request failed wire-schema validation.

    Unknown operation, missing or mistyped field, unsupported protocol
    version, or an unknown ranking method (the message carries the ranker
    registry's did-you-mean hint).  Retrying the same bytes will fail the
    same way — fix the request.
    """

    code = "bad_request"


class UnknownCrowdError(ServeError):
    """A request named a crowd the session manager does not host.

    Either it was never created, or the manager's LRU bound evicted it
    (resident sessions are in-memory state).  The message carries a
    did-you-mean hint over the resident crowd names.
    """

    code = "unknown_crowd"


class CrowdExistsError(ServeError):
    """``create`` named a crowd that is already resident.

    Pass ``exist_ok`` to make creation idempotent instead.
    """

    code = "crowd_exists"


class RateLimitedError(ServeError):
    """The client exhausted its token bucket; slow down and retry.

    The HTTP-429 analogue: a *per-client* rejection, typed and instant,
    never a queued wait.  ``retry_after`` is the seconds until the bucket
    refills enough for one request.
    """

    code = "rate_limited"

    def __init__(self, message: str, *, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServerOverloadedError(ServeError):
    """The server's bounded work queue is full; back off and retry.

    The *global* backpressure rejection: admitting the request would grow
    an unbounded queue, so it is refused immediately instead (same
    degrade-don't-hang discipline as the remote backend's supervision
    layer).  ``retry_after`` is a backoff hint, not a reservation.
    """

    code = "overloaded"

    def __init__(self, message: str, *, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class SnapshotError(ReproError):
    """A durable-store record failed validation and cannot be trusted.

    Raised by :mod:`repro.store` when a snapshot or persisted crowd fails
    any integrity check: bad magic, an unknown schema version, a checksum
    mismatch (bit flips), a truncated or zero-length file, a malformed
    header, or a record whose recorded identity does not match the key it
    was looked up under (a foreign or tampered record).

    The store's public lookups catch this internally and **fall back
    cold** — a corrupt record is logged, counted, removed, and treated as
    a miss — so a :class:`SnapshotError` never escapes ``rank()``; it can
    only surface through the explicit maintenance surfaces
    (``repro.cli store verify``) that exist to find exactly these files.
    ``path`` carries the offending file when one is known.
    """

    def __init__(self, message: str, *, path: object = None) -> None:
        super().__init__(message)
        self.path = path


class NotC1PError(ReproError):
    """Raised when a matrix is required to have the consecutive ones property
    (after row permutation) but does not."""


class EstimationError(ReproError):
    """Raised when a statistical estimator (e.g. the GRM estimator) cannot
    produce parameter estimates for the provided data."""


class DatasetError(ReproError):
    """Raised for unknown dataset names or malformed dataset files."""
