"""``SessionManager``: a named-crowd registry over :class:`CrowdSession`.

A serving process hosts *many* crowds — one per task, classroom, or
survey — and the scripts that used to juggle ad-hoc one-off sessions all
re-implemented the same bookkeeping: name -> session lookup, a default
:class:`~repro.api.execution.ExecutionPolicy`, and some bound on how many
resident sessions memory can hold.  :class:`SessionManager` is that
bookkeeping, once:

* ``create`` / ``get`` / ``drop`` / ``names`` — the registry surface.
  Unknown names raise :class:`~repro.exceptions.UnknownCrowdError` with a
  did-you-mean hint (same discipline as the ranker registry); creating an
  existing name raises :class:`~repro.exceptions.CrowdExistsError` unless
  ``exist_ok`` asks for idempotent creation.
* per-crowd **policy defaults** — sessions inherit the manager's
  :class:`ExecutionPolicy` and cache capacity unless ``create`` overrides
  them, so "this deployment ranks through 8-thread shards" is said once.
* an **LRU bound** on resident sessions — every ``get``/``create``
  touch refreshes recency, and creating past ``max_sessions`` evicts the
  least recently used crowd (counted in ``stats()['evictions']``).
  Without a store, an evicted crowd is gone and a later request raises
  :class:`UnknownCrowdError`.  With ``store=`` (the durable tier), a
  manager *restores*: persisted crowds re-register at construction (a
  restarted server comes back knowing its crowds), an evicted-but-
  persisted crowd is transparently reloaded on the next ``get``/
  ``create`` (counted in ``stats()['restored']``), and eviction is
  therefore cheap — it sheds memory, not state.  ``drop`` removes the
  durable state too: drop-and-recreate is the recovery path for a
  poisoned crowd, and must not resurrect the bad data.

Both the ``repro.serve`` front end and the CLI route through this class,
and it is thread-safe: the registry map is guarded by its own lock, and
each :class:`CrowdSession` holds its own coarse operation lock, so
operations on *different* crowds run fully in parallel.

>>> from repro.api import SessionManager
>>> manager = SessionManager(max_sessions=2)
>>> _ = manager.create("quiz-a", num_items=3, num_options=4)
>>> _ = manager.get("quiz-a").add_answers([0, 1], [0, 0], [1, 1])
>>> manager.names()
('quiz-a',)
"""

from __future__ import annotations

import difflib
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.api.execution import ExecutionPolicy
from repro.api.session import CrowdSession
from repro.engine.cache import RankCache
from repro.exceptions import CrowdExistsError, UnknownCrowdError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import SnapshotStore


class SessionManager:
    """Thread-safe name -> :class:`CrowdSession` registry with an LRU bound.

    Parameters
    ----------
    max_sessions:
        Resident-session cap; creating beyond it evicts the least
        recently used crowd (its in-memory state is discarded).
    execution:
        Default :class:`ExecutionPolicy` for sessions created without an
        explicit one (fused single-process when omitted).
    cache_size:
        Default per-session :class:`RankCache` capacity (the
        :class:`CrowdSession` default when omitted).
    store:
        Optional :class:`~repro.store.SnapshotStore` durable tier.  At
        construction, persisted crowds re-register (most recently saved
        first, up to ``max_sessions``); afterwards, sessions are created
        store-backed, misses try a restore before raising, and ``drop``
        removes durable state.
    """

    def __init__(
        self,
        *,
        max_sessions: int = 64,
        execution: Optional[ExecutionPolicy] = None,
        cache_size: Optional[int] = None,
        store: "Optional[SnapshotStore]" = None,
    ) -> None:
        if int(max_sessions) < 1:
            raise ValueError(
                "max_sessions must be >= 1, got %r" % (max_sessions,)
            )
        self.max_sessions = int(max_sessions)
        self.execution = execution
        self.cache_size = cache_size
        self.store = store
        self._sessions: "OrderedDict[str, CrowdSession]" = OrderedDict()
        self._lock = threading.Lock()
        self._evictions = 0
        self._created = 0
        self._dropped = 0
        self._restored = 0
        if store is not None:
            # Re-register what survived the last process: most recently
            # saved first, so when the durable set exceeds the resident
            # bound, the crowds most likely to be asked for come back warm
            # (the rest restore lazily on demand).
            with self._lock:
                for name in store.crowd_names()[: self.max_sessions]:
                    self._restore_locked(name)

    def _restore_locked(self, name: str) -> Optional[CrowdSession]:
        """Reload one persisted crowd into residency (caller holds lock).

        A crowd that fails to load (corrupt NPZ, hash mismatch — the
        store logged why) is treated as absent: restoring degrades, never
        raises.
        """
        if self.store is None:
            return None
        try:
            session = CrowdSession.restore(
                self.store,
                name,
                execution=self.execution,
                cache=self.cache_size,
            )
        except Exception:  # a poisoned persisted crowd must not kill startup
            return None
        if session is None:
            return None
        self._sessions[name] = session
        self._sessions.move_to_end(name)
        self._restored += 1
        while len(self._sessions) > self.max_sessions:
            self._sessions.popitem(last=False)
            self._evictions += 1
        return session

    # ------------------------------------------------------------------ #
    # Registry surface
    # ------------------------------------------------------------------ #
    def create(
        self,
        name: str,
        *,
        exist_ok: bool = False,
        execution: Optional[ExecutionPolicy] = None,
        cache: Optional[Union[RankCache, int]] = None,
        **session_kwargs,
    ) -> CrowdSession:
        """Create (and return) the crowd registered under ``name``.

        ``session_kwargs`` go to :class:`CrowdSession` (``num_items``,
        ``num_options``, ``num_users``); ``execution``/``cache`` default
        to the manager's.  With ``exist_ok``, an already-resident name
        returns the existing session untouched — idempotent creation for
        at-least-once request streams; without it, a duplicate raises
        :class:`~repro.exceptions.CrowdExistsError`.  Creating past
        ``max_sessions`` evicts the least recently used crowd first.
        """
        if not isinstance(name, str) or not name:
            raise ValueError("crowd name must be a non-empty string, got %r"
                             % (name,))
        with self._lock:
            existing = self._sessions.get(name)
            if existing is None and self.store is not None:
                # A persisted crowd *exists* even when not resident:
                # creating over it must behave like creating over a
                # resident one (idempotent with exist_ok, an error
                # without), never silently shadow the durable data.
                existing = self._restore_locked(name)
            if existing is not None:
                if exist_ok:
                    self._sessions.move_to_end(name)
                    return existing
                raise CrowdExistsError(
                    "crowd %r already exists (%d users, %d answers); pass "
                    "exist_ok for idempotent creation or drop it first"
                    % (name, existing.num_users, existing.num_answers)
                )
            if cache is None and self.cache_size is not None:
                cache = self.cache_size
            session = CrowdSession(
                execution=execution if execution is not None else self.execution,
                cache=cache,
                store=self.store,
                name=name if self.store is not None else None,
                **session_kwargs,
            )
            self._sessions[name] = session
            self._created += 1
            while len(self._sessions) > self.max_sessions:
                self._sessions.popitem(last=False)
                self._evictions += 1
            return session

    def get(self, name: str) -> CrowdSession:
        """The session under ``name``; :class:`UnknownCrowdError` otherwise.

        A hit refreshes the crowd's LRU recency.  With a store, a miss
        tries a restore first — an evicted-but-persisted crowd reloads
        transparently instead of erroring (this is what makes the LRU
        bound cheap).
        """
        with self._lock:
            session = self._sessions.get(name)
            if session is not None:
                self._sessions.move_to_end(name)
                return session
            if self.store is not None:
                session = self._restore_locked(name)
                if session is not None:
                    return session
            resident = list(self._sessions)
        close = difflib.get_close_matches(str(name), resident, n=3, cutoff=0.4)
        hint = ("; did you mean %s?" % " or ".join(repr(c) for c in close)
                if close else "")
        raise UnknownCrowdError(
            "unknown crowd %r%s (resident: %s)"
            % (name, hint, ", ".join(sorted(resident)) or "none")
        )

    def drop(self, name: str) -> bool:
        """Forget the crowd under ``name``; ``False`` if it was not resident.

        Dropping is idempotent by design (at-least-once request streams
        replay drops), hence the boolean instead of an error.
        """
        with self._lock:
            dropped = self._sessions.pop(name, None) is not None
            if self.store is not None:
                # The durable state goes with the resident state: dropping
                # is the recovery path for a poisoned crowd, and a later
                # create must start empty, not resurrect the old answers.
                # Drain the write-behind queue first — a save this crowd's
                # last rank deferred must land *before* the removal, not
                # after it (which would resurrect the dropped data).
                self.store.flush()
                dropped = self.store.drop_crowd(name) or dropped
            if dropped:
                self._dropped += 1
            return dropped

    def names(self) -> Tuple[str, ...]:
        """Resident crowd names, least recently used first."""
        with self._lock:
            return tuple(self._sessions)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._sessions

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def describe(self) -> List[Dict[str, object]]:
        """One summary dict per resident crowd (the ``list`` wire op).

        Sizes are read without refreshing recency — describing the fleet
        must not shuffle the eviction order.
        """
        with self._lock:
            sessions = list(self._sessions.items())
        return [
            {
                "name": name,
                "num_users": session.num_users,
                "num_answers": session.num_answers,
                "backend": (session.execution.resolved_backend
                            if session.execution is not None else "fused"),
            }
            for name, session in sessions
        ]

    def stats(self) -> Dict[str, int]:
        """Counters: ``resident``/``created``/``dropped``/``evictions``/``restored``."""
        with self._lock:
            return {
                "resident": len(self._sessions),
                "created": self._created,
                "dropped": self._dropped,
                "evictions": self._evictions,
                "restored": self._restored,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SessionManager(resident=%d, max_sessions=%d)" % (
            len(self), self.max_sessions,
        )
