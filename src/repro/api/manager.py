"""``SessionManager``: a named-crowd registry over :class:`CrowdSession`.

A serving process hosts *many* crowds — one per task, classroom, or
survey — and the scripts that used to juggle ad-hoc one-off sessions all
re-implemented the same bookkeeping: name -> session lookup, a default
:class:`~repro.api.execution.ExecutionPolicy`, and some bound on how many
resident sessions memory can hold.  :class:`SessionManager` is that
bookkeeping, once:

* ``create`` / ``get`` / ``drop`` / ``names`` — the registry surface.
  Unknown names raise :class:`~repro.exceptions.UnknownCrowdError` with a
  did-you-mean hint (same discipline as the ranker registry); creating an
  existing name raises :class:`~repro.exceptions.CrowdExistsError` unless
  ``exist_ok`` asks for idempotent creation.
* per-crowd **policy defaults** — sessions inherit the manager's
  :class:`ExecutionPolicy` and cache capacity unless ``create`` overrides
  them, so "this deployment ranks through 8-thread shards" is said once.
* an **LRU bound** on resident sessions — every ``get``/``create``
  touch refreshes recency, and creating past ``max_sessions`` evicts the
  least recently used crowd (sessions are in-memory state; an evicted
  crowd is gone, counted in ``stats()['evictions']``, and a later request
  for it raises :class:`UnknownCrowdError` — the durable-state tier in the
  ROADMAP is what will make eviction cheap).

Both the ``repro.serve`` front end and the CLI route through this class,
and it is thread-safe: the registry map is guarded by its own lock, and
each :class:`CrowdSession` holds its own coarse operation lock, so
operations on *different* crowds run fully in parallel.

>>> from repro.api import SessionManager
>>> manager = SessionManager(max_sessions=2)
>>> _ = manager.create("quiz-a", num_items=3, num_options=4)
>>> _ = manager.get("quiz-a").add_answers([0, 1], [0, 0], [1, 1])
>>> manager.names()
('quiz-a',)
"""

from __future__ import annotations

import difflib
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple, Union

from repro.api.execution import ExecutionPolicy
from repro.api.session import CrowdSession
from repro.engine.cache import RankCache
from repro.exceptions import CrowdExistsError, UnknownCrowdError


class SessionManager:
    """Thread-safe name -> :class:`CrowdSession` registry with an LRU bound.

    Parameters
    ----------
    max_sessions:
        Resident-session cap; creating beyond it evicts the least
        recently used crowd (its in-memory state is discarded).
    execution:
        Default :class:`ExecutionPolicy` for sessions created without an
        explicit one (fused single-process when omitted).
    cache_size:
        Default per-session :class:`RankCache` capacity (the
        :class:`CrowdSession` default when omitted).
    """

    def __init__(
        self,
        *,
        max_sessions: int = 64,
        execution: Optional[ExecutionPolicy] = None,
        cache_size: Optional[int] = None,
    ) -> None:
        if int(max_sessions) < 1:
            raise ValueError(
                "max_sessions must be >= 1, got %r" % (max_sessions,)
            )
        self.max_sessions = int(max_sessions)
        self.execution = execution
        self.cache_size = cache_size
        self._sessions: "OrderedDict[str, CrowdSession]" = OrderedDict()
        self._lock = threading.Lock()
        self._evictions = 0
        self._created = 0
        self._dropped = 0

    # ------------------------------------------------------------------ #
    # Registry surface
    # ------------------------------------------------------------------ #
    def create(
        self,
        name: str,
        *,
        exist_ok: bool = False,
        execution: Optional[ExecutionPolicy] = None,
        cache: Optional[Union[RankCache, int]] = None,
        **session_kwargs,
    ) -> CrowdSession:
        """Create (and return) the crowd registered under ``name``.

        ``session_kwargs`` go to :class:`CrowdSession` (``num_items``,
        ``num_options``, ``num_users``); ``execution``/``cache`` default
        to the manager's.  With ``exist_ok``, an already-resident name
        returns the existing session untouched — idempotent creation for
        at-least-once request streams; without it, a duplicate raises
        :class:`~repro.exceptions.CrowdExistsError`.  Creating past
        ``max_sessions`` evicts the least recently used crowd first.
        """
        if not isinstance(name, str) or not name:
            raise ValueError("crowd name must be a non-empty string, got %r"
                             % (name,))
        with self._lock:
            existing = self._sessions.get(name)
            if existing is not None:
                if exist_ok:
                    self._sessions.move_to_end(name)
                    return existing
                raise CrowdExistsError(
                    "crowd %r already exists (%d users, %d answers); pass "
                    "exist_ok for idempotent creation or drop it first"
                    % (name, existing.num_users, existing.num_answers)
                )
            if cache is None and self.cache_size is not None:
                cache = self.cache_size
            session = CrowdSession(
                execution=execution if execution is not None else self.execution,
                cache=cache,
                **session_kwargs,
            )
            self._sessions[name] = session
            self._created += 1
            while len(self._sessions) > self.max_sessions:
                self._sessions.popitem(last=False)
                self._evictions += 1
            return session

    def get(self, name: str) -> CrowdSession:
        """The session under ``name``; :class:`UnknownCrowdError` otherwise.

        A hit refreshes the crowd's LRU recency.
        """
        with self._lock:
            session = self._sessions.get(name)
            if session is not None:
                self._sessions.move_to_end(name)
                return session
            resident = list(self._sessions)
        close = difflib.get_close_matches(str(name), resident, n=3, cutoff=0.4)
        hint = ("; did you mean %s?" % " or ".join(repr(c) for c in close)
                if close else "")
        raise UnknownCrowdError(
            "unknown crowd %r%s (resident: %s)"
            % (name, hint, ", ".join(sorted(resident)) or "none")
        )

    def drop(self, name: str) -> bool:
        """Forget the crowd under ``name``; ``False`` if it was not resident.

        Dropping is idempotent by design (at-least-once request streams
        replay drops), hence the boolean instead of an error.
        """
        with self._lock:
            dropped = self._sessions.pop(name, None) is not None
            if dropped:
                self._dropped += 1
            return dropped

    def names(self) -> Tuple[str, ...]:
        """Resident crowd names, least recently used first."""
        with self._lock:
            return tuple(self._sessions)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._sessions

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def describe(self) -> List[Dict[str, object]]:
        """One summary dict per resident crowd (the ``list`` wire op).

        Sizes are read without refreshing recency — describing the fleet
        must not shuffle the eviction order.
        """
        with self._lock:
            sessions = list(self._sessions.items())
        return [
            {
                "name": name,
                "num_users": session.num_users,
                "num_answers": session.num_answers,
                "backend": (session.execution.resolved_backend
                            if session.execution is not None else "fused"),
            }
            for name, session in sessions
        ]

    def stats(self) -> Dict[str, int]:
        """Counters: ``resident`` / ``created`` / ``dropped`` / ``evictions``."""
        with self._lock:
            return {
                "resident": len(self._sessions),
                "created": self._created,
                "dropped": self._dropped,
                "evictions": self._evictions,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SessionManager(resident=%d, max_sessions=%d)" % (
            len(self), self.max_sessions,
        )
