"""``repro.api`` — the single public entry point for ranking crowds.

Four pieces, one surface:

* :data:`~repro.api.registry.REGISTRY` / :func:`~repro.api.registry.register_ranker`
  — the one source of truth for the method line-up (names, factories,
  param specs, determinism flags); the CLI, the experiment suites, and
  the rank-cache fingerprints all resolve through it.
* :class:`~repro.api.execution.ExecutionPolicy` — *how* to run, separated
  from *what* to run: ``backend`` (``"fused"`` single-process kernels,
  ``"threads"`` shared-memory shards, ``"processes"`` a process pool over
  shard slices), ``shards``, ``workers``, and an optional ``cache``.
* :func:`~repro.api.execution.rank` — ``rank(matrix, "HnD",
  execution=ExecutionPolicy(backend="processes", shards=8))`` replaces
  picking ``HNDPower`` vs ``ShardedHNDPower`` by class; every backend is
  bit-identical by construction.
* :class:`~repro.api.session.CrowdSession` — stateful serving: an
  incremental answer builder, a materialized matrix, and a hash-keyed
  rank cache whose staleness detection is automatic.

>>> from repro.api import CrowdSession, ExecutionPolicy, rank
"""

from __future__ import annotations

import importlib

from repro.api.registry import (
    REGISTRY,
    Param,
    RankerRegistry,
    RankerSpec,
    register_ranker,
)

# The execution and session modules import the engine (and, transitively,
# the ranker implementations).  The ranker modules in turn import
# ``repro.api.registry`` *while they are being defined* — which triggers
# this package's import.  Resolving the heavy submodules lazily keeps that
# cycle open: importing ``repro.api`` mid-way through a ranker module only
# loads the stdlib-level registry.
_LAZY = {
    "ExecutionPolicy": "repro.api.execution",
    "rank": "repro.api.execution",
    "warm_start_fingerprint": "repro.api.execution",
    "CrowdSession": "repro.api.session",
    "SessionManager": "repro.api.manager",
    "SolverState": "repro.core.solver_state",
}

__all__ = [
    "REGISTRY",
    "Param",
    "RankerRegistry",
    "RankerSpec",
    "register_ranker",
    "ExecutionPolicy",
    "rank",
    "warm_start_fingerprint",
    "CrowdSession",
    "SessionManager",
    "SolverState",
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError("module %r has no attribute %r" % (__name__, name))
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(__all__)
