"""``rank()`` + :class:`ExecutionPolicy`: *what* to run vs *how* to run it.

The paper's methods are pure functions of the response matrix; how they
execute — fused single-process kernels, thread-dispatched shards, or a
process pool over shard slices — is an operational choice that must never
change the answer.  :class:`ExecutionPolicy` makes that choice an explicit
value instead of a class name::

    from repro.api import ExecutionPolicy, rank

    ranking = rank(matrix, "HnD", random_state=0)                  # fused
    ranking = rank(matrix, "HnD", random_state=0,
                   execution=ExecutionPolicy(backend="threads", shards=8))
    ranking = rank(matrix, "HnD", random_state=0,
                   execution=ExecutionPolicy(backend="processes", shards=8))

All three return bit-identical scores (the sharded engine's determinism
model, see :mod:`repro.engine.sharding`); the policy additionally carries a
:class:`~repro.engine.cache.RankCache` so repeated queries of unchanged
data are served from the hash-keyed cache regardless of backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.api.registry import REGISTRY, RankerSpec
from repro.core.ranking import AbilityRanker, AbilityRanking
from repro.core.response import ResponseMatrix
from repro.engine.cache import RankCache, ranker_fingerprint
from repro.engine.process_backend import ProcessEngine
from repro.engine.rankers import ThreadKernels
from repro.engine.sharding import ShardedResponse

RankInput = Union[ResponseMatrix, ShardedResponse]

#: Execution backends: ``auto`` resolves to ``fused`` (one shard) or
#: ``threads`` (several); the other three are literal.
BACKENDS = ("auto", "fused", "threads", "processes")


@dataclass
class ExecutionPolicy:
    """How a ranking runs — orthogonal to which method runs.

    Attributes
    ----------
    backend:
        ``"fused"`` — the single-process ``O(nnz)`` kernels;
        ``"threads"`` — user-range shards with serial/thread dispatch;
        ``"processes"`` — shards dispatched over a
        :class:`~repro.engine.process_backend.ProcessEngine` pool;
        ``"auto"`` (default) — ``fused`` when ``shards == 1``, else
        ``threads``.  Every backend returns bit-identical scores.
    shards:
        User-range shard count for the sharded backends.
    workers:
        Dispatch parallelism: worker threads (``threads``) or worker
        processes (``processes``).  ``None`` means serial dispatch for
        threads and ``min(shards, cpu_count)`` processes.
    cache:
        Optional :class:`~repro.engine.cache.RankCache` serving repeated
        ``rank()`` calls of unchanged data.  The cache key ignores the
        execution policy entirely — backends are bit-identical, so a
        ranking computed by one backend is a valid hit for any other.
    """

    backend: str = "auto"
    shards: int = 1
    workers: Optional[int] = None
    cache: Optional[RankCache] = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                "unknown backend %r (choose from %s)"
                % (self.backend, ", ".join(BACKENDS))
            )
        if int(self.shards) < 1:
            raise ValueError("shards must be >= 1, got %r" % (self.shards,))
        self.shards = int(self.shards)
        if self.workers is not None and int(self.workers) < 1:
            raise ValueError("workers must be >= 1 or None, got %r" % (self.workers,))
        if self.backend == "fused" and self.shards > 1:
            raise ValueError(
                "backend 'fused' runs single-process; use backend='threads' "
                "or 'processes' to shard (got shards=%d)" % self.shards
            )

    @property
    def resolved_backend(self) -> str:
        if self.backend != "auto":
            return self.backend
        return "threads" if self.shards > 1 else "fused"


def rank(
    response: RankInput,
    method: str,
    *,
    execution: Optional[ExecutionPolicy] = None,
    cache: Optional[RankCache] = None,
    **params,
) -> AbilityRanking:
    """Rank the users of ``response`` with a registered method.

    Parameters
    ----------
    response:
        A :class:`ResponseMatrix`, or a pre-split
        :class:`~repro.engine.sharding.ShardedResponse` (its shard layout
        is reused by the sharded backends).
    method:
        A registered method name (see ``repro.api.REGISTRY``); unknown
        names raise ``KeyError`` with a did-you-mean hint.
    execution:
        The :class:`ExecutionPolicy`; default is fused single-process.
    cache:
        Overrides ``execution.cache`` when given.
    **params:
        Method parameters (the registry validates the names), e.g.
        ``rank(matrix, "HnD", random_state=0, tolerance=1e-8)``.
    """
    policy = execution if execution is not None else ExecutionPolicy()
    spec = REGISTRY.get(method)
    ranker = _PolicyRanker(spec, params, policy)
    rank_cache = cache if cache is not None else policy.cache
    if rank_cache is not None:
        return rank_cache.rank(ranker, response)
    return ranker.rank(response)


class _PolicyRanker(AbilityRanker):
    """Internal adapter binding (method spec, params, policy) to ``rank()``.

    Its cache fingerprint is that of the *fused* ranker the parameters
    describe: backends are bit-identical, so rankings cached under one
    execution policy are valid hits for every other.
    """

    def __init__(self, spec: RankerSpec, params: Dict[str, object],
                 policy: ExecutionPolicy) -> None:
        spec.validate_params(params)
        self._spec = spec
        self._params = dict(params)
        self._policy = policy
        self.name = spec.name

    def cache_fingerprint(self):
        if not (self._spec.cacheable and self._spec.deterministic):
            return None
        return ranker_fingerprint(self._spec.create(**self._params))

    def rank(self, response: RankInput) -> AbilityRanking:
        backend = self._policy.resolved_backend
        if backend == "fused":
            matrix = (
                response.source
                if isinstance(response, ShardedResponse)
                else response
            )
            return self._spec.create(**self._params).rank(matrix)

        runner = self._spec.kernel_runner
        if runner is None:
            supported = sorted(
                spec.name for spec in REGISTRY if spec.kernel_runner is not None
            )
            raise ValueError(
                "method %r has no shard-parallel kernels (backend %r); "
                "sharded backends support: %s — use the default fused "
                "backend instead" % (self._spec.name, backend, ", ".join(supported))
            )
        if backend == "threads":
            if isinstance(response, ShardedResponse):
                sharded = response
                if (
                    self._policy.workers is not None
                    and sharded.max_workers != self._policy.workers
                ):
                    # Honor the explicitly requested dispatch parallelism:
                    # re-wrap the same shard boundaries (O(S log nnz))
                    # rather than silently inheriting the pre-split's
                    # worker configuration.
                    sharded = ShardedResponse(
                        sharded.source,
                        sharded.boundaries,
                        max_workers=self._policy.workers,
                    )
            else:
                sharded = ShardedResponse.split(
                    response, self._policy.shards, max_workers=self._policy.workers
                )
            return runner(ThreadKernels(sharded), **self._params)

        # processes: the shard split itself stays in the parent (serial —
        # the split is O(S log nnz)); only kernel dispatch crosses processes.
        sharded = (
            response
            if isinstance(response, ShardedResponse)
            else ShardedResponse.split(response, self._policy.shards)
        )
        with ProcessEngine(sharded, max_workers=self._policy.workers) as engine:
            return runner(engine, **self._params)
