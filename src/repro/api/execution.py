"""``rank()`` + :class:`ExecutionPolicy`: *what* to run vs *how* to run it.

The paper's methods are pure functions of the response matrix; how they
execute — fused single-process kernels, thread-dispatched shards, or a
process pool over shard slices — is an operational choice that must never
change the answer.  :class:`ExecutionPolicy` makes that choice an explicit
value instead of a class name::

    from repro.api import ExecutionPolicy, rank

    ranking = rank(matrix, "HnD", random_state=0)                  # fused
    ranking = rank(matrix, "HnD", random_state=0,
                   execution=ExecutionPolicy(backend="threads", shards=8))
    ranking = rank(matrix, "HnD", random_state=0,
                   execution=ExecutionPolicy(backend="processes", shards=8))

All three return bit-identical scores (the sharded engine's determinism
model, see :mod:`repro.engine.sharding`); the policy additionally carries a
:class:`~repro.engine.cache.RankCache` so repeated queries of unchanged
data are served from the hash-keyed cache regardless of backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.api.registry import REGISTRY, RankerSpec
from repro.core.ranking import AbilityRanker, AbilityRanking
from repro.core.response import ResponseMatrix
from repro.core.solver_state import SolverState
from repro.engine.cache import RankCache, ranker_fingerprint
from repro.engine.process_backend import ProcessEngine
from repro.engine.rankers import ThreadKernels
from repro.engine.remote.coordinator import RemoteEngine, parse_worker_address
from repro.engine.remote.supervision import SupervisionConfig
from repro.engine.sharding import ShardedResponse

RankInput = Union[ResponseMatrix, ShardedResponse]

#: Execution backends: ``auto`` resolves to ``fused`` (one shard),
#: ``threads`` (several), or ``remote`` (worker addresses configured);
#: the others are literal.
BACKENDS = ("auto", "fused", "threads", "processes", "remote")


@dataclass
class ExecutionPolicy:
    """How a ranking runs — orthogonal to which method runs.

    Attributes
    ----------
    backend:
        ``"fused"`` — the single-process ``O(nnz)`` kernels;
        ``"threads"`` — user-range shards with serial/thread dispatch;
        ``"processes"`` — shards dispatched over a
        :class:`~repro.engine.process_backend.ProcessEngine` pool;
        ``"auto"`` (default) — ``fused`` when ``shards == 1``, else
        ``threads``.  Every backend returns bit-identical scores.
    shards:
        User-range shard count for the sharded backends.
    workers:
        Dispatch parallelism: worker threads (``threads``) or worker
        processes (``processes``).  ``None`` means serial dispatch for
        threads and ``min(shards, cpu_count)`` processes.
    remote_workers:
        Remote worker addresses (``"host:port"`` strings or ``(host,
        port)`` pairs) for the ``remote`` backend.  Setting this with
        ``backend="auto"`` resolves the policy to ``remote``.
    supervision:
        :class:`~repro.engine.remote.supervision.SupervisionConfig`
        overriding the remote backend's timeout/retry/breaker defaults.
    iteration_batch:
        Solver iterations per dispatch for the ``processes`` and
        ``remote`` backends (default 1 — per-op dispatch).  Above 1, the
        HnD power loop ships its serialized driver state and runs that
        many iterations per task/socket round-trip on a worker-held full
        replica of the fused kernel, amortizing the dispatch latency.
        Execution-only: every batch size produces bit-identical scores,
        so the cache fingerprint ignores it.  Meaningless (rejected) for
        ``fused``/``threads``, whose dispatch has no round-trip to
        amortize.
    cache:
        Optional :class:`~repro.engine.cache.RankCache` serving repeated
        ``rank()`` calls of unchanged data.  The cache key ignores the
        execution policy entirely — backends are bit-identical, so a
        ranking computed by one backend is a valid hit for any other.
    """

    backend: str = "auto"
    shards: int = 1
    workers: Optional[int] = None
    remote_workers: Optional[Sequence[Union[str, Tuple[str, int]]]] = None
    supervision: Optional[SupervisionConfig] = None
    iteration_batch: int = 1
    cache: Optional[RankCache] = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                "unknown backend %r (choose from %s)"
                % (self.backend, ", ".join(BACKENDS))
            )
        if int(self.shards) < 1:
            raise ValueError("shards must be >= 1, got %r" % (self.shards,))
        self.shards = int(self.shards)
        if self.workers is not None and int(self.workers) < 1:
            raise ValueError("workers must be >= 1 or None, got %r" % (self.workers,))
        if int(self.iteration_batch) < 1:
            raise ValueError(
                "iteration_batch must be >= 1, got %r" % (self.iteration_batch,)
            )
        self.iteration_batch = int(self.iteration_batch)
        if self.iteration_batch > 1 and self.backend in ("fused", "threads"):
            raise ValueError(
                "iteration_batch only applies to the 'processes' and "
                "'remote' backends — backend %r dispatches in-process with "
                "no round-trip to amortize" % self.backend
            )
        if self.backend == "fused" and self.shards > 1:
            raise ValueError(
                "backend 'fused' runs single-process; use backend='threads' "
                "or 'processes' to shard (got shards=%d)" % self.shards
            )
        if self.remote_workers is not None:
            # Normalize and fail fast on malformed addresses, long before a
            # socket is touched.
            self.remote_workers = tuple(
                parse_worker_address(worker) for worker in self.remote_workers
            )
        if self.backend == "remote" and not self.remote_workers:
            raise ValueError(
                "backend 'remote' needs remote_workers — at least one "
                "host:port worker address"
            )
        if self.remote_workers is not None and self.backend not in (
            "auto", "remote",
        ):
            raise ValueError(
                "remote_workers only applies to backend 'remote' (got "
                "backend=%r)" % self.backend
            )

    @property
    def resolved_backend(self) -> str:
        if self.backend != "auto":
            return self.backend
        if self.remote_workers:
            return "remote"
        return "threads" if self.shards > 1 else "fused"


def warm_start_fingerprint(method: str, params: Dict[str, object]):
    """Validate that ``(method, params)`` can warm-start; return the fingerprint.

    The single source of the warm-start eligibility rules — the CLI's
    fail-fast check and :meth:`CrowdSession.rank(warm_start=True)
    <repro.api.session.CrowdSession.rank>` both call this, so the error
    prose cannot drift between surfaces.  Raises ``ValueError`` when the
    method is not registered ``warm_startable`` or when the parameter set
    is nondeterministic/uncacheable (no fingerprint means no keyed solver
    state to resume from).
    """
    spec = REGISTRY.get(method)
    if not spec.warm_startable:
        raise ValueError(
            "method %r does not support warm starts (no convergence "
            "criterion to resume, or chaotic dynamics — a warm result "
            "would not be equivalent to a cold solve); warm-startable "
            "methods: %s"
            % (spec.name,
               ", ".join(sorted(REGISTRY.names(warm_startable=True))))
        )
    fingerprint = ranker_fingerprint(spec.create(**params))
    if fingerprint is None:
        raise ValueError(
            "warm start requires a deterministic, cacheable configuration "
            "of %r — the solver state is keyed by the method's parameter "
            "fingerprint; pass a fixed integer random_state instead of "
            "None or a live Generator" % (spec.name,)
        )
    return fingerprint


def rank(
    response: RankInput,
    method: str,
    *,
    execution: Optional[ExecutionPolicy] = None,
    cache: Optional[RankCache] = None,
    init_state: Optional[SolverState] = None,
    **params,
) -> AbilityRanking:
    """Rank the users of ``response`` with a registered method.

    Parameters
    ----------
    response:
        A :class:`ResponseMatrix`, or a pre-split
        :class:`~repro.engine.sharding.ShardedResponse` (its shard layout
        is reused by the sharded backends).
    method:
        A registered method name (see ``repro.api.REGISTRY``); unknown
        names raise ``KeyError`` with a did-you-mean hint.
    execution:
        The :class:`ExecutionPolicy`; default is fused single-process.
    cache:
        Overrides ``execution.cache`` when given.
    init_state:
        Optional :class:`~repro.core.solver_state.SolverState` to
        warm-start the solve from (only for methods registered
        ``warm_startable``; ``ValueError`` otherwise).  An incompatible or
        diverging state falls back to a cold solve — see the ranking's
        ``diagnostics["warm_start"]``.  Warm starts relax bit-determinism
        to convergence-equivalence, so a cache hit computed from a
        different history may differ in the last bits while inducing the
        same ranking; :class:`~repro.api.session.CrowdSession` manages
        this end to end.
    **params:
        Method parameters (the registry validates the names), e.g.
        ``rank(matrix, "HnD", random_state=0, tolerance=1e-8)``.
    """
    policy = execution if execution is not None else ExecutionPolicy()
    spec = REGISTRY.get(method)
    if init_state is not None and not spec.warm_startable:
        raise ValueError(
            "method %r does not support warm starts (registered "
            "warm_startable=False); warm-startable methods: %s"
            % (spec.name,
               ", ".join(sorted(REGISTRY.names(warm_startable=True))))
        )
    ranker = _PolicyRanker(spec, params, policy, init_state=init_state)
    rank_cache = cache if cache is not None else policy.cache
    if rank_cache is not None:
        return rank_cache.rank(ranker, response)
    return ranker.rank(response)


class _PolicyRanker(AbilityRanker):
    """Internal adapter binding (method spec, params, policy) to ``rank()``.

    Its cache fingerprint is that of the *fused* ranker the parameters
    describe: backends are bit-identical, so rankings cached under one
    execution policy are valid hits for every other.
    """

    def __init__(self, spec: RankerSpec, params: Dict[str, object],
                 policy: ExecutionPolicy,
                 init_state: Optional[SolverState] = None) -> None:
        spec.validate_params(params)
        self._spec = spec
        self._params = dict(params)
        self._policy = policy
        self._init_state = init_state
        self.name = spec.name

    def cache_fingerprint(self):
        if not (self._spec.cacheable and self._spec.deterministic):
            return None
        return ranker_fingerprint(self._spec.create(**self._params))

    def rank(self, response: RankInput) -> AbilityRanking:
        backend = self._policy.resolved_backend
        # Warm state rides outside the registry param spec (it is data, not
        # a result-affecting parameter — the fingerprint must not see it),
        # and is only forwarded when present so non-warm-startable rankers
        # never receive an unexpected keyword.
        state_kwargs = (
            {} if self._init_state is None else {"init_state": self._init_state}
        )
        if backend == "fused":
            matrix = (
                response.source
                if isinstance(response, ShardedResponse)
                else response
            )
            return self._spec.create(**self._params).rank(matrix, **state_kwargs)

        runner = self._spec.kernel_runner
        if runner is None:
            supported = sorted(
                spec.name for spec in REGISTRY if spec.kernel_runner is not None
            )
            raise ValueError(
                "method %r has no shard-parallel kernels (backend %r); "
                "sharded backends support: %s — use the default fused "
                "backend instead" % (self._spec.name, backend, ", ".join(supported))
            )
        if backend == "threads":
            if isinstance(response, ShardedResponse):
                sharded = response
                if (
                    self._policy.workers is not None
                    and sharded.max_workers != self._policy.workers
                ):
                    # Honor the explicitly requested dispatch parallelism:
                    # re-wrap the same shard boundaries (O(S log nnz))
                    # rather than silently inheriting the pre-split's
                    # worker configuration.
                    sharded = ShardedResponse(
                        sharded.source,
                        sharded.boundaries,
                        max_workers=self._policy.workers,
                    )
            else:
                sharded = ShardedResponse.split(
                    response, self._policy.shards, max_workers=self._policy.workers
                )
            return runner(ThreadKernels(sharded), **state_kwargs, **self._params)

        # processes/remote: the shard split itself stays in the parent
        # (serial — the split is O(S log nnz)); only kernel dispatch
        # crosses the process or network boundary.
        sharded = (
            response
            if isinstance(response, ShardedResponse)
            else ShardedResponse.split(response, self._policy.shards)
        )
        if backend == "remote":
            with RemoteEngine(
                sharded,
                self._policy.remote_workers,
                supervision=self._policy.supervision,
                iteration_batch=self._policy.iteration_batch,
            ) as engine:
                return runner(engine, **state_kwargs, **self._params)
        with ProcessEngine(
            sharded,
            max_workers=self._policy.workers,
            iteration_batch=self._policy.iteration_batch,
        ) as engine:
            return runner(engine, **state_kwargs, **self._params)
