"""The ranker registry: one source of truth for the method line-up.

The paper's value is its *comparison* of methods (HnD-Power, ABH, the
Dawid–Skene / GLAD / HITS-family baselines) under one protocol — which the
codebase used to encode three times: hand-built dicts in
``evaluation/experiments.py``, a method table in ``cli.py``, and attribute
introspection in ``engine/cache.py``.  :class:`RankerRegistry` replaces all
three.  Every ranking method registers itself once, at class-definition
time, via the :func:`register_ranker` decorator::

    @register_ranker("HnD", params=("tolerance", ..., "random_state"))
    class HNDPower(AbilityRanker):
        ...

and the registered :class:`RankerSpec` carries everything the consumers
need: the display *name*, the *factory* (the class itself), the *param
spec* (which constructor parameters affect the result, and which instance
attribute stores each one), a *determinism / cacheability* flag, and —
attached by :mod:`repro.engine.rankers` at import time — the sharded
*kernel runner* that the ``threads`` and ``processes`` execution backends
share.

Unknown method names fail with a ``KeyError`` carrying a did-you-mean
hint, so a typo in a CLI flag or an experiment config is a loud,
actionable error instead of a silently missing table row.

This module deliberately imports nothing from the rest of the package
(stdlib only): the ranker modules import it *during* their own import, so
it must sit at the bottom of the dependency graph.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class Param:
    """One result-affecting constructor parameter of a ranking method.

    Attributes
    ----------
    name:
        The constructor keyword (what :meth:`RankerSpec.create` accepts).
    attr:
        The instance attribute the value is stored under, when it differs
        from ``name`` (e.g. ``InvestmentRanker(num_iterations=...)`` stores
        into ``self.max_iterations``).  The cache fingerprint reads this.
    """

    name: str
    attr: Optional[str] = None

    @property
    def attribute(self) -> str:
        return self.attr or self.name


ParamLike = Union[str, Param]


def _normalize_params(params: Sequence[ParamLike]) -> Tuple[Param, ...]:
    return tuple(p if isinstance(p, Param) else Param(p) for p in params)


@dataclass
class RankerSpec:
    """Everything the library knows about one registered ranking method.

    Attributes
    ----------
    name:
        Canonical method name — the one the paper's tables, the CLI, the
        experiment suites and the cache keys all use.
    factory:
        The single-process ranker class; ``factory(**params)`` builds one.
    params:
        The result-affecting constructor parameters (see :class:`Param`).
        Parameters *not* listed here (shard counts, worker pools) are
        execution detail and never enter a cache key.
    deterministic:
        False for methods whose output varies run-to-run even with fixed
        parameters.  (Seeded methods are deterministic *when* their
        ``random_state`` parameter is a fixed seed; the fingerprint handles
        that case separately.)
    cacheable:
        False when the parameters cannot be fingerprinted faithfully
        (e.g. a live estimator object) — such rankers always bypass the
        rank cache.
    supervised:
        True for the "cheating" baselines that require ground truth at
        construction time; they are excluded from unsupervised serving
        surfaces such as ``repro.cli rank``.
    warm_startable:
        True for iterative methods whose ``rank`` accepts an
        ``init_state`` :class:`~repro.core.solver_state.SolverState` and
        returns the converged state on the ranking — the methods with a
        genuine convergence criterion, where restarting from a previous
        solution changes only the iteration count, never the answer
        (beyond the convergence tolerance).  Methods that run a fixed
        iteration schedule (Invest, PooledInv) or whose dynamics are
        chaotic (GLAD) stay False: a warm start would change *what* they
        compute, not how fast.
    summary:
        One-line description for ``--help`` output and tables.
    kernel_runner:
        ``runner(kernels, **params) -> AbilityRanking`` executing the
        method over a shard-kernel interface; attached by
        :mod:`repro.engine.rankers` for the methods with shard-parallel
        sufficient statistics.  ``None`` means only the ``fused`` backend
        can run the method.
    """

    name: str
    factory: type
    params: Tuple[Param, ...] = ()
    deterministic: bool = True
    cacheable: bool = True
    supervised: bool = False
    warm_startable: bool = False
    summary: str = ""
    kernel_runner: Optional[Callable] = None

    @property
    def param_names(self) -> Tuple[str, ...]:
        return tuple(param.name for param in self.params)

    def takes(self, name: str) -> bool:
        """Whether ``name`` is a declared constructor parameter."""
        return any(param.name == name for param in self.params)

    def validate_params(self, params) -> None:
        """Reject parameter names outside the declared spec (with hints)."""
        unknown = sorted(set(params) - set(self.param_names))
        if unknown:
            hints = []
            for name in unknown:
                close = difflib.get_close_matches(
                    name, self.param_names, n=1, cutoff=0.4
                )
                hints.append(
                    "%r%s" % (name, " (did you mean %r?)" % close[0] if close else "")
                )
            raise TypeError(
                "ranker %r takes parameters (%s); unexpected: %s"
                % (self.name, ", ".join(self.param_names), ", ".join(hints))
            )

    def create(self, **params):
        """Instantiate the method, validating parameter names up front."""
        self.validate_params(params)
        return self.factory(**params)


class RankerRegistry:
    """Name -> :class:`RankerSpec` map with did-you-mean lookup errors.

    Normally used through the module-level :data:`REGISTRY` that
    :func:`register_ranker` populates; independent instances exist only so
    tests can build isolated registries.
    """

    def __init__(self) -> None:
        self._specs: Dict[str, RankerSpec] = {}
        self._by_class: Dict[type, RankerSpec] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, spec: RankerSpec) -> RankerSpec:
        if spec.name in self._specs and self._specs[spec.name].factory is not spec.factory:
            raise ValueError(
                "ranker name %r is already registered to %s"
                % (spec.name, self._specs[spec.name].factory.__qualname__)
            )
        self._specs[spec.name] = spec
        self._by_class[spec.factory] = spec
        return spec

    def attach_sharded(
        self,
        name: str,
        runner: Callable,
        *,
        shim: Optional[type] = None,
    ) -> None:
        """Attach the shard-kernel runner (and its deprecated shim class).

        Called by :mod:`repro.engine.rankers` at import time for the
        methods whose sufficient statistics merge across shards; ``shim``
        maps the legacy ``Sharded*`` class onto the same spec so its cache
        fingerprints read the registry's param spec too.
        """
        spec = self.get(name)
        spec.kernel_runner = runner
        if shim is not None:
            self._by_class[shim] = spec

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def get(self, name: str) -> RankerSpec:
        """The spec registered under ``name``; ``KeyError`` with a hint otherwise."""
        try:
            return self._specs[name]
        except KeyError:
            pass
        # Case-insensitive exact match rescues the common capitalization slips.
        folded = {existing.lower(): existing for existing in self._specs}
        if name.lower() in folded:
            return self._specs[folded[name.lower()]]
        close = difflib.get_close_matches(name, list(self._specs), n=3, cutoff=0.4)
        hint = "; did you mean %s?" % " or ".join(repr(c) for c in close) if close else ""
        raise KeyError(
            "unknown ranker %r%s (registered: %s)"
            % (name, hint, ", ".join(sorted(self._specs)))
        )

    def create(self, name: str, **params):
        """``get(name).create(**params)`` — the one-stop factory call."""
        return self.get(name).create(**params)

    def spec_for(self, cls: type) -> Optional[RankerSpec]:
        """The spec a ranker class registered under, or ``None``."""
        return self._by_class.get(cls)

    def names(
        self,
        *,
        supervised: Optional[bool] = None,
        warm_startable: Optional[bool] = None,
    ) -> Tuple[str, ...]:
        """Registered names in registration order, optionally filtered."""
        return tuple(
            name
            for name, spec in self._specs.items()
            if (supervised is None or spec.supervised == supervised)
            and (warm_startable is None or spec.warm_startable == warm_startable)
        )

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[RankerSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)


#: The process-wide registry every ``@register_ranker`` use populates.
REGISTRY = RankerRegistry()


def register_ranker(
    name: str,
    *,
    params: Sequence[ParamLike] = (),
    deterministic: bool = True,
    cacheable: bool = True,
    supervised: bool = False,
    warm_startable: bool = False,
    summary: str = "",
    registry: Optional[RankerRegistry] = None,
):
    """Class decorator registering a ranking method under ``name``.

    See :class:`RankerSpec` for the meaning of the keyword arguments.  The
    decorated class gains a ``registry_name`` attribute and is returned
    unchanged otherwise.
    """

    def decorate(cls: type) -> type:
        doc_lines = (cls.__doc__ or "").strip().splitlines()
        spec = RankerSpec(
            name=name,
            factory=cls,
            params=_normalize_params(params),
            deterministic=deterministic,
            cacheable=cacheable,
            supervised=supervised,
            warm_startable=warm_startable,
            summary=summary or (doc_lines[0] if doc_lines else ""),
        )
        # Explicit None-check: an empty registry is falsy via __len__.
        (REGISTRY if registry is None else registry).register(spec)
        cls.registry_name = name
        return cls

    return decorate
