"""Stateful serving: an incrementally-growing crowd with a warm rank cache.

A :class:`CrowdSession` owns the three pieces a ranking service juggles by
hand — a :class:`~repro.core.response.ResponseBuilder` accumulating answer
triples, the materialized :class:`~repro.core.response.ResponseMatrix`, and
a :class:`~repro.engine.cache.RankCache` — and keeps them consistent:

* :meth:`add_answers` appends in ``O(batch)``; the matrix is re-materialized
  lazily, on the next read, through the canonical ``from_triples``
  validation (so a chunked session equals — and hash-equals — a one-shot
  build of the same answers).  Exact repeats are collapsed at
  materialization, so replaying an ingestion batch is idempotent;
  *conflicting* repeats (one user giving two different options for one
  item) raise at the next :attr:`matrix` access.
* staleness is **content-hash based**: the cache keys on
  ``ResponseMatrix.content_hash()``, so an append invalidates exactly the
  entries of the old matrix state (they age out of the LRU) while entries
  for other methods/parameters of the *new* state fill in on demand — and a
  no-op append (or re-ingesting identical data) still hits warm.
* :meth:`rank` / :meth:`top_k` route through :func:`repro.api.rank`, so the
  session serves any registered method under any
  :class:`~repro.api.execution.ExecutionPolicy` backend.

>>> from repro.api import CrowdSession
>>> session = CrowdSession(num_items=3, num_options=4)
>>> _ = session.add_answers([0, 0, 1, 1], [0, 2, 0, 1], [1, 3, 1, 0])
>>> session.rank("MajorityVote").scores.shape
(2,)
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Union

import numpy as np

from repro.api.execution import (
    ExecutionPolicy,
    rank as _rank,
    warm_start_fingerprint,
)
from repro.core.ranking import AbilityRanking
from repro.core.response import ResponseBuilder, ResponseMatrix
from repro.core.solver_state import SolverState
from repro.engine.cache import RankCache
from repro.exceptions import InvalidResponseMatrixError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import SnapshotStore


class CrowdSession:
    """A growing crowd served through the unified ranking API.

    **Concurrency contract.**  A session is safe to share across threads:
    every *stateful* operation (:meth:`add_answers`, :meth:`add_user`,
    :meth:`rank`, :meth:`top_k`, the :attr:`matrix` /
    :meth:`content_hash` reads) holds one internal :class:`threading.RLock`
    for its whole duration, so the two stateful races — the lazy
    :attr:`matrix` rebuild (two readers must not both materialize, and an
    append must not invalidate a half-built matrix) and the warm-start
    lineage lookup (``_ranked_hashes`` is read by :meth:`rank` and written
    after it) — cannot interleave.  The size counters
    (:attr:`num_answers` / :attr:`num_users`) and :meth:`stats` are
    deliberately **lock-free snapshots** — monotonic integers read
    atomically under the GIL — so observability never waits behind a
    solve in flight.  The granularity is deliberately
    coarse: *operations on one session serialize*, including solves, so
    two concurrent :meth:`rank` calls on the same crowd run one after the
    other (the second usually lands a cache hit).  Concurrency comes from
    running many sessions — see :class:`~repro.api.manager.SessionManager`
    — and request-level dedup belongs above the session (``repro.serve``
    coalesces identical in-flight ranks before they reach the lock).  An
    append issued while another thread solves simply waits; it is never
    lost and never observed half-applied.

    Parameters
    ----------
    num_items:
        Fixed item count, when known up front (otherwise inferred as
        ``max(item) + 1`` over everything appended).
    num_options:
        Scalar or per-item option counts (inferred from the data when
        omitted).
    num_users:
        Minimum user-row count to materialize (e.g. registered users who
        have not answered yet); grows automatically past it.
    execution:
        Default :class:`ExecutionPolicy` for :meth:`rank` / :meth:`top_k`
        (fused single-process when omitted).
    cache:
        The session's :class:`RankCache`, or an ``int`` capacity for a
        fresh one (default 128 entries).  A fresh cache is built over
        ``store`` when one is given; an explicit :class:`RankCache` is
        used as-is (attach the store to it yourself if you want the disk
        tier).
    store:
        Optional :class:`~repro.store.SnapshotStore`: rankings persist as
        snapshots through the cache, and — when ``name`` is also given —
        the crowd's triples persist after each rank of a changed crowd
        (write-behind, off the critical path), so the crowd itself
        survives a restart.  See :meth:`restore`.
    name:
        The crowd's durable name inside ``store``.  Without it the
        session still snapshots rankings (they are content-addressed,
        name-free) but the triples are not persisted.
    """

    def __init__(
        self,
        *,
        num_items: Optional[int] = None,
        num_options: Optional[Union[Sequence[int], int]] = None,
        num_users: Optional[int] = None,
        execution: Optional[ExecutionPolicy] = None,
        cache: Optional[Union[RankCache, int]] = None,
        store: "Optional[SnapshotStore]" = None,
        name: Optional[str] = None,
    ) -> None:
        self._builder = ResponseBuilder(num_items=num_items, num_options=num_options)
        self._min_users = None if num_users is None else int(num_users)
        self.execution = execution if execution is not None else ExecutionPolicy()
        if isinstance(cache, RankCache):
            self.cache = cache
        else:
            maxsize = 128 if cache is None else cache
            self.cache = RankCache(maxsize=maxsize, store=store)
        self.store = store
        self.name = name
        # Content hash of the last crowd state handed to the store, so an
        # unchanged crowd is never re-persisted.
        self._persisted_hash: Optional[str] = None
        self._matrix: Optional[ResponseMatrix] = None
        # Reentrant: rank() holds the lock across the matrix property and
        # the nested top_k -> rank path.  See the class docstring for the
        # (deliberately coarse) contract.
        self._state_lock = threading.RLock()
        # Content hashes of every crowd state this session has ranked: the
        # warm-start lineage.  A shared RankCache holds solver states from
        # unrelated crowds under the same fingerprint; restricting the
        # lookup to this session's own history keeps a foreign state from
        # ever seeding a warm solve.
        self._ranked_hashes: set = set()

    @classmethod
    def from_matrix(cls, matrix: ResponseMatrix, **kwargs) -> "CrowdSession":
        """Start a session pre-loaded with an existing matrix's answers."""
        users, items, options = matrix.triples
        session = cls(
            num_items=matrix.num_items,
            num_options=matrix.num_options,
            num_users=matrix.num_users,
            **kwargs,
        )
        session.add_answers(users, items, options)
        return session

    @classmethod
    def restore(
        cls, store: "SnapshotStore", name: str, **kwargs
    ) -> "Optional[CrowdSession]":
        """Rebuild the persisted crowd ``name`` from ``store``, or ``None``.

        The triples reload through the canonical NPZ path (a restored
        session materializes hash-equal to the pre-restart crowd), and the
        restored content hash seeds both the warm-start lineage and the
        persisted-hash watermark — so the first post-restart rank of
        unchanged data is an exact snapshot hit, the first rank after an
        append warm-starts from the stored solver state, and an unchanged
        crowd is not immediately re-persisted.  A missing *or corrupt*
        persisted crowd answers ``None`` (the store already logged why):
        restoring can degrade to a cold, empty start but never fail.
        """
        matrix = store.load_crowd(name)
        if matrix is None:
            return None
        session = cls.from_matrix(matrix, store=store, name=name, **kwargs)
        restored_hash = matrix.content_hash()
        session._ranked_hashes.add(restored_hash)
        session._persisted_hash = restored_hash
        return session

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def add_answers(self, users, items=None, options=None) -> "CrowdSession":
        """Append a batch of answers; ``O(batch)``, matrix rebuilt lazily.

        Accepts either three parallel arrays ``(users, items, options)`` or
        a single ``(N, 3)`` array of answer *rows*.  A bare tuple is
        rejected rather than guessed at: for a 3 x 3 batch, columns and
        rows are indistinguishable, and silently transposing answers would
        corrupt the crowd.  Empty batches are true no-ops: the
        materialized matrix and every warm cache entry stay valid.
        """
        if items is None and options is None:
            if isinstance(users, tuple):
                raise InvalidResponseMatrixError(
                    "pass the three answer arrays as separate arguments — "
                    "add_answers(users, items, options) — or one (N, 3) "
                    "array of answer rows; a bare tuple is ambiguous "
                    "between the two"
                )
            triples = np.asarray(users)
            if triples.size == 0:
                return self
            if triples.ndim == 2 and triples.shape[1] == 3:
                users, items, options = triples[:, 0], triples[:, 1], triples[:, 2]
            else:
                raise InvalidResponseMatrixError(
                    "add_answers takes (users, items, options) arrays or an "
                    "(N, 3) triples array, got shape %s" % (triples.shape,)
                )
        with self._state_lock:
            before = self._builder.num_answers
            self._builder.add_answers(users, items, options)
            if self._builder.num_answers != before:
                self._matrix = None
        return self

    def add_user(self, items, options) -> int:
        """Append a whole new user's answers; returns the new user index."""
        with self._state_lock:
            user = self._builder.add_user(items, options)
            self._matrix = None  # a new user row changes the shape even if empty
        return user

    # ------------------------------------------------------------------ #
    # Materialized state
    # ------------------------------------------------------------------ #
    @property
    def num_answers(self) -> int:
        # Lock-free snapshot (see the class contract): a plain int read,
        # safe against a concurrent append under the GIL.
        return self._builder.num_answers

    @property
    def num_users(self) -> int:
        seen = self._builder.num_users
        return seen if self._min_users is None else max(seen, self._min_users)

    @property
    def matrix(self) -> ResponseMatrix:
        """The current crowd, materialized through ``from_triples``.

        Rebuilt only when answers arrived since the last build; a chunked
        ingestion history materializes equal (and hash-equal) to a one-shot
        ``from_triples`` of the same answers.  Exact repeated triples
        (replayed ingestion batches) are collapsed, so replays are
        idempotent; *conflicting* repeats (one user, one item, two
        different options) raise here, leaving the ingested state intact.
        """
        with self._state_lock:
            if self._matrix is None:
                self._matrix = self._builder.build(
                    num_users=self.num_users or None, deduplicate=True
                )
            return self._matrix

    def content_hash(self) -> str:
        """The stable digest of the current crowd (the cache's staleness key)."""
        return self.matrix.content_hash()

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def rank(
        self,
        method: str = "HnD",
        *,
        execution: Optional[ExecutionPolicy] = None,
        warm_start: bool = False,
        **params,
    ) -> AbilityRanking:
        """Rank the current crowd; warm cache hits when nothing changed.

        ``execution`` overrides the session default for this call.  The
        session cache is always consulted: identical (data, method,
        parameters) queries are served in ``O(nnz)`` hash time, and a real
        append changes the content hash, forcing a recompute.

        With ``warm_start=True`` that recompute becomes *incremental*: the
        solve restarts from the solver state the cache captured for the
        same method and parameters under the previous content hash, so an
        append of ``b`` answers costs the few iterations the perturbation
        needs instead of a full cold solve (committed numbers in
        ``benchmarks/BENCH_PR5.json``).  The contract relaxes from
        bit-determinism to *convergence equivalence*: the warm result
        induces the same ranking as a cold solve of the current crowd,
        with scores within the method's convergence tolerance — and an
        incompatible or diverging state falls back to a cold solve
        automatically (``diagnostics["warm_start"]``).  Requires a method
        registered ``warm_startable`` and a deterministic, cacheable
        parameter set (``ValueError`` otherwise); a no-op append still
        serves the exact warm cache hit.
        """
        policy = execution if execution is not None else self.execution
        with self._state_lock:
            init_state: Optional[SolverState] = None
            if warm_start:
                init_state = self._warm_state(method, params)
            ranking = _rank(self.matrix, method, execution=policy,
                            cache=self.cache, init_state=init_state, **params)
            # Record this crowd state in the warm-start lineage (the digest
            # is memoized on the matrix, so this costs a dict insert).
            current_hash = self.matrix.content_hash()
            self._ranked_hashes.add(current_hash)
            if (
                self.store is not None
                and self.name is not None
                and current_hash != self._persisted_hash
            ):
                # Persist the crowd that was just ranked, behind the solve:
                # the matrix object is immutable (an append builds a new
                # one), so handing it to the write-behind thread is safe,
                # and the watermark keeps an unchanged crowd from being
                # re-saved on every rank.
                store, name, matrix = self.store, self.name, self._matrix
                self._persisted_hash = current_hash
                store.defer(lambda: store.save_crowd(name, matrix))
        return ranking

    def _warm_state(self, method: str, params: Dict[str, object]) -> Optional[SolverState]:
        """Validate warm-startability and fetch the latest *own* state.

        The lookup is restricted to cache entries produced for this
        session's own crowd history (`_ranked_hashes`): on a shared cache,
        another crowd's converged state under the same fingerprint must
        solve cold here, not masquerade as a warm iterate.
        """
        fingerprint = warm_start_fingerprint(method, params)
        return self.cache.latest_state(fingerprint, hashes=self._ranked_hashes)

    def top_k(
        self,
        count: int,
        method: str = "HnD",
        *,
        execution: Optional[ExecutionPolicy] = None,
        warm_start: bool = False,
        **params,
    ) -> np.ndarray:
        """Indices of the ``count`` highest-ranked users, best first."""
        return self.rank(method, execution=execution, warm_start=warm_start,
                         **params).top_users(count)

    def stats(self) -> Dict[str, object]:
        """Session counters: crowd size plus the cache's hit/miss/bypass.

        Lock-free (see the class contract): a stats probe must answer
        instantly even while another thread holds the lock through a
        solve, so these are atomic snapshot reads, not a locked view.
        """
        info: Dict[str, object] = {
            "num_users": self.num_users,
            "num_answers": self.num_answers,
            "materialized": self._matrix is not None,
        }
        info.update({"cache_%s" % key: value
                     for key, value in self.cache.stats().items()})
        return info

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "CrowdSession(num_users=%d, num_answers=%d)" % (
            self.num_users, self.num_answers,
        )
