"""Majority vote: the simplest truth-discovery baseline.

The discovered "truth" of each item is its most frequently chosen option;
users are ranked by how often they agree with the majority.  The paper's
code repository includes majority vote as a reference method, and it also
serves as the initialization of the Dawid–Skene EM baseline.

Both statistics are *mergeable* over user-range shards: the per-item option
histogram behind the majority choice is a sum of integer partial histograms,
and the agreement counts are per-user (disjoint across shards), which is why
:mod:`repro.engine` can evaluate this ranker shard-parallel with bit-identical
scores.  :func:`agreement_counts` is the shared hook both paths call.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_ranker
from repro.core.ranking import AbilityRanker, AbilityRanking
from repro.core.response import ResponseMatrix


def agreement_counts(
    users: np.ndarray,
    items: np.ndarray,
    options: np.ndarray,
    majority: np.ndarray,
    num_users: int,
    *,
    user_offset: int = 0,
) -> np.ndarray:
    """Per-user count of answers agreeing with the per-item majority option.

    ``O(batch)`` over any slice of answer triples; ``user_offset`` lets a
    user-range shard count into local row coordinates.  Integer-valued, so
    shard results concatenate into exactly the single-process counts.
    """
    agreeing = np.asarray(users)[np.asarray(options) == majority[np.asarray(items)]]
    return np.bincount(agreeing - user_offset, minlength=num_users)


@register_ranker(
    "MajorityVote",
    params=("normalize_by_answers",),
    summary="Agreement rate with the per-item majority option",
)
class MajorityVoteRanker(AbilityRanker):
    """Rank users by their agreement rate with the per-item majority option."""

    name = "MajorityVote"

    def __init__(self, *, normalize_by_answers: bool = True) -> None:
        self.normalize_by_answers = normalize_by_answers

    def rank(self, response: ResponseMatrix) -> AbilityRanking:
        majority = response.majority_choices()
        # Agreement counting on the flat answer triples: O(nnz), no dense
        # (m, n) comparison matrix.
        users, items, options = response.triples
        agreements = agreement_counts(
            users, items, options, majority, response.num_users
        )
        if self.normalize_by_answers:
            scores = agreements / np.maximum(response.answers_per_user, 1)
        else:
            scores = agreements.astype(float)
        return AbilityRanking(
            scores=scores,
            method=self.name,
            diagnostics={"discovered_truths": majority},
        )
