"""Majority vote: the simplest truth-discovery baseline.

The discovered "truth" of each item is its most frequently chosen option;
users are ranked by how often they agree with the majority.  The paper's
code repository includes majority vote as a reference method, and it also
serves as the initialization of the Dawid–Skene EM baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core.ranking import AbilityRanker, AbilityRanking
from repro.core.response import ResponseMatrix


class MajorityVoteRanker(AbilityRanker):
    """Rank users by their agreement rate with the per-item majority option."""

    name = "MajorityVote"

    def __init__(self, *, normalize_by_answers: bool = True) -> None:
        self.normalize_by_answers = normalize_by_answers

    def rank(self, response: ResponseMatrix) -> AbilityRanking:
        majority = response.majority_choices()
        # Agreement counting on the flat answer triples: O(nnz), no dense
        # (m, n) comparison matrix.
        users, items, options = response.triples
        agreements = np.bincount(
            users[options == majority[items]], minlength=response.num_users
        )
        if self.normalize_by_answers:
            scores = agreements / np.maximum(response.answers_per_user, 1)
        else:
            scores = agreements.astype(float)
        return AbilityRanking(
            scores=scores,
            method=self.name,
            diagnostics={"discovered_truths": majority},
        )
