"""Investment and PooledInvestment (Pasternack & Roth 2010).

Both baselines let each user "invest" their current trust uniformly across
the options they chose.  An option's credibility is a non-linear function of
the total investment it received, and users earn back trust proportional to
their share of each chosen option's credibility.

* **Investment** applies the growth function ``G(x) = x^g`` directly to the
  invested amount (``g = 1.2`` in the original paper).
* **PooledInvestment** additionally normalizes the credibility within each
  item's mutually exclusive options (``g = 1.4``).

Neither method converges in general; following Section IV-A of the paper,
they run a fixed number of iterations (default 10).
"""

from __future__ import annotations

import numpy as np

from repro.core.response import ResponseMatrix
from repro.truth_discovery.base import IterativeTruthRanker


class InvestmentRanker(IterativeTruthRanker):
    """Investment algorithm; ranks users by their final invested trust."""

    name = "Invest"

    def __init__(self, *, growth_exponent: float = 1.2,
                 num_iterations: int = 10) -> None:
        super().__init__(max_iterations=num_iterations, tolerance=None)
        self.growth_exponent = growth_exponent

    # ------------------------------------------------------------------ #
    def _invested_amounts(self, response: ResponseMatrix,
                          user_scores: np.ndarray) -> np.ndarray:
        """Per-user amount invested into each chosen option: ``s_u / n_u``."""
        answers = np.maximum(response.answers_per_user, 1)
        return user_scores / answers

    def update_option_weights(self, response: ResponseMatrix,
                              user_scores: np.ndarray) -> np.ndarray:
        per_user = self._invested_amounts(response, user_scores)
        invested = np.asarray(response.binary.T @ per_user).ravel()
        return np.power(np.maximum(invested, 0.0), self.growth_exponent)

    def update_user_scores(self, response: ResponseMatrix,
                           option_weights: np.ndarray,
                           previous_scores: np.ndarray) -> np.ndarray:
        per_user = self._invested_amounts(response, previous_scores)
        total_invested = np.asarray(response.binary.T @ per_user).ravel()
        # Each user's return from an option is proportional to their share of
        # the total investment into that option.
        share_denominator = np.where(total_invested > 0, total_invested, 1.0)
        option_return = option_weights / share_denominator
        per_option_return = np.asarray(response.binary @ option_return).ravel()
        return per_user * per_option_return

    def normalize_scores(self, scores: np.ndarray) -> np.ndarray:
        peak = scores.max()
        return scores / peak if peak > 0 else scores


class PooledInvestmentRanker(InvestmentRanker):
    """PooledInvestment: Investment with per-item pooling of option credibility."""

    name = "PooledInv"

    def __init__(self, *, growth_exponent: float = 1.4,
                 num_iterations: int = 10) -> None:
        super().__init__(growth_exponent=growth_exponent, num_iterations=num_iterations)

    def update_option_weights(self, response: ResponseMatrix,
                              user_scores: np.ndarray) -> np.ndarray:
        per_user = self._invested_amounts(response, user_scores)
        invested = np.asarray(response.binary.T @ per_user).ravel()
        grown = np.power(np.maximum(invested, 0.0), self.growth_exponent)
        weights = np.zeros_like(invested)
        offsets = response.column_offsets
        for item in range(response.num_items):
            start, stop = offsets[item], offsets[item + 1]
            block_grown = grown[start:stop]
            block_invested = invested[start:stop]
            total = block_grown.sum()
            if total > 0:
                weights[start:stop] = block_invested * block_grown / total
        return weights
