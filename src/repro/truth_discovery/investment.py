"""Investment and PooledInvestment (Pasternack & Roth 2010).

Both baselines let each user "invest" their current trust uniformly across
the options they chose.  An option's credibility is a non-linear function of
the total investment it received, and users earn back trust proportional to
their share of each chosen option's credibility.

* **Investment** applies the growth function ``G(x) = x^g`` directly to the
  invested amount (``g = 1.2`` in the original paper).
* **PooledInvestment** additionally normalizes the credibility within each
  item's mutually exclusive options (``g = 1.4``).

Neither method converges in general; following Section IV-A of the paper,
they run a fixed number of iterations (default 10).  That fixed schedule is
also why the Investment family is **not warm-startable** (the registry
leaves ``warm_startable=False``): with no convergence criterion, "resume
from the previous solution" does not re-converge faster — it computes a
*different* 10-step trajectory, i.e. a different answer.  The shared
:class:`~repro.truth_discovery.base.IterativeTruthRanker` therefore treats
any offered state as incompatible when ``tolerance`` is ``None`` and runs
the paper's schedule cold.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import Param, register_ranker
from repro.core.response import ResponseMatrix
from repro.truth_discovery.base import IterativeTruthRanker


@register_ranker(
    "Invest",
    params=("growth_exponent", Param("num_iterations", attr="max_iterations")),
    summary="Investment algorithm (credibility grows as invested trust)",
)
class InvestmentRanker(IterativeTruthRanker):
    """Investment algorithm; ranks users by their final invested trust."""

    name = "Invest"

    def __init__(self, *, growth_exponent: float = 1.2,
                 num_iterations: int = 10) -> None:
        super().__init__(max_iterations=num_iterations, tolerance=None)
        self.growth_exponent = growth_exponent

    # ------------------------------------------------------------------ #
    def _invested_amounts(self, response: ResponseMatrix,
                          user_scores: np.ndarray) -> np.ndarray:
        """Per-user amount invested into each chosen option: ``s_u / n_u``."""
        answers = np.maximum(response.answers_per_user, 1)
        return user_scores / answers

    def update_option_weights(self, response: ResponseMatrix,
                              user_scores: np.ndarray) -> np.ndarray:
        per_user = self._invested_amounts(response, user_scores)
        invested = response.compiled.option_sums(per_user)
        return np.power(np.maximum(invested, 0.0), self.growth_exponent)

    def update_user_scores(self, response: ResponseMatrix,
                           option_weights: np.ndarray,
                           previous_scores: np.ndarray) -> np.ndarray:
        per_user = self._invested_amounts(response, previous_scores)
        total_invested = response.compiled.option_sums(per_user)
        # Each user's return from an option is proportional to their share of
        # the total investment into that option.
        share_denominator = np.where(total_invested > 0, total_invested, 1.0)
        option_return = option_weights / share_denominator
        per_option_return = response.compiled.user_sums(option_return)
        return per_user * per_option_return

    def normalize_scores(self, scores: np.ndarray) -> np.ndarray:
        peak = scores.max()
        return scores / peak if peak > 0 else scores


@register_ranker(
    "PooledInv",
    params=("growth_exponent", Param("num_iterations", attr="max_iterations")),
    summary="PooledInvestment (per-item pooling of grown credibility)",
)
class PooledInvestmentRanker(InvestmentRanker):
    """PooledInvestment: Investment with per-item pooling of option credibility."""

    name = "PooledInv"

    def __init__(self, *, growth_exponent: float = 1.4,
                 num_iterations: int = 10) -> None:
        super().__init__(growth_exponent=growth_exponent, num_iterations=num_iterations)

    def update_option_weights(self, response: ResponseMatrix,
                              user_scores: np.ndarray) -> np.ndarray:
        compiled = response.compiled
        per_user = self._invested_amounts(response, user_scores)
        invested = compiled.option_sums(per_user)
        grown = np.power(np.maximum(invested, 0.0), self.growth_exponent)
        # Pool the grown credibility within each item's option block: one
        # segment sum over the column -> item map replaces the per-item loop.
        totals = np.bincount(
            compiled.column_item, weights=grown, minlength=response.num_items
        )
        # grown >= 0, so a zero block total forces every weight in the block
        # to zero on its own; the where() only guards the division.
        safe_totals = np.where(totals > 0, totals, 1.0)[compiled.column_item]
        return invested * grown / safe_totals
