"""Truth-discovery baselines the paper compares HITSnDIFFS against."""

from repro.truth_discovery.base import IterativeTruthRanker, discovered_truths
from repro.truth_discovery.hits import HITSRanker
from repro.truth_discovery.truthfinder import TruthFinderRanker
from repro.truth_discovery.investment import InvestmentRanker, PooledInvestmentRanker
from repro.truth_discovery.majority import MajorityVoteRanker
from repro.truth_discovery.cheating import GRMEstimatorRanker, TrueAnswerRanker
from repro.truth_discovery.dawid_skene import DawidSkeneRanker
from repro.truth_discovery.glad import GLADRanker
from repro.truth_discovery.reference import (
    ReferenceDawidSkeneRanker,
    ReferenceGLADRanker,
)

__all__ = [
    "IterativeTruthRanker",
    "discovered_truths",
    "HITSRanker",
    "TruthFinderRanker",
    "InvestmentRanker",
    "PooledInvestmentRanker",
    "MajorityVoteRanker",
    "TrueAnswerRanker",
    "GRMEstimatorRanker",
    "DawidSkeneRanker",
    "GLADRanker",
    "ReferenceDawidSkeneRanker",
    "ReferenceGLADRanker",
]
