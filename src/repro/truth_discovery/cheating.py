"""The paper's two "cheating" baselines.

Both receive ground-truth information about the items that an unsupervised
ability-discovery method never has (Section IV-A):

* :class:`TrueAnswerRanker` knows the correct option of every item and ranks
  users by the number of correctly answered items.
* :class:`GRMEstimatorRanker` knows the correctness *order* of every item's
  options, converts the responses into graded scores, fits a Graded Response
  Model with :class:`~repro.irt.estimation.GRMEstimator`, and ranks users by
  the estimated abilities.  This replaces the GIRTH package the paper used.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.api.registry import register_ranker
from repro.core.ranking import AbilityRanking, SupervisedAbilityRanker
from repro.core.response import ResponseMatrix, score_against_truth
from repro.irt.estimation import GRMEstimator, grade_response_matrix


@register_ranker(
    "True-Answer",
    params=("correct_options",),
    supervised=True,
    summary="Cheating baseline: rank by number of correct answers",
)
class TrueAnswerRanker(SupervisedAbilityRanker):
    """Rank users by the number of items they answered correctly."""

    name = "True-Answer"

    def __init__(self, correct_options: Sequence[int]) -> None:
        self.correct_options = np.asarray(correct_options, dtype=int)

    def rank(self, response: ResponseMatrix) -> AbilityRanking:
        scores = score_against_truth(response, self.correct_options).astype(float)
        return AbilityRanking(scores=scores, method=self.name,
                              diagnostics={"correct_options": self.correct_options})


@register_ranker(
    "GRM-estimator",
    params=("option_order", "estimator"),
    supervised=True,
    # A live GRMEstimator object cannot be fingerprinted faithfully, so
    # this method always bypasses the rank cache.
    cacheable=False,
    summary="Cheating baseline: abilities of a fitted Graded Response Model",
)
class GRMEstimatorRanker(SupervisedAbilityRanker):
    """Rank users by the EAP abilities of a fitted Graded Response Model.

    Parameters
    ----------
    option_order:
        ``(n, k)`` array listing each item's option indices from worst to
        best.  When omitted, options are assumed to already be numbered in
        increasing correctness (true for GRM-generated data and for the C1P
        generator).
    estimator:
        A configured :class:`GRMEstimator`; a default instance is created
        when omitted.
    """

    name = "GRM-estimator"

    def __init__(self, option_order: Optional[np.ndarray] = None,
                 estimator: Optional[GRMEstimator] = None) -> None:
        self.option_order = None if option_order is None else np.asarray(option_order, dtype=int)
        self.estimator = estimator or GRMEstimator()

    def rank(self, response: ResponseMatrix) -> AbilityRanking:
        # Both branches hand the estimator a ResponseMatrix, which it
        # consumes item-major off the answer triples — no dense (m, n)
        # choices matrix is materialized anywhere on this path.  The graded
        # matrix re-infers num_options from the observed grades (max + 1
        # per item, floor 2): the estimator must size each item's category
        # set from the data, not from the response's declared option count,
        # or never-picked trailing options would add spurious thresholds.
        if self.option_order is None:
            users, items, options = response.triples
            graded = ResponseMatrix.from_triples(
                users, items, options,
                shape=(response.num_users, response.num_items),
            )
        else:
            graded = grade_response_matrix(response, self.option_order)
        estimate = self.estimator.fit(graded)
        return AbilityRanking(
            scores=estimate.abilities,
            method=self.name,
            diagnostics={
                "iterations": estimate.iterations,
                "converged": estimate.converged,
                "log_likelihood": estimate.log_likelihood,
            },
        )
