"""Dawid–Skene EM for homogeneous-label aggregation (Appendix E-A).

The Dawid–Skene model assigns each user a latent ``k x k`` confusion matrix
(probability of reporting label ``h`` when the truth is ``l``) and jointly
estimates confusion matrices, class priors, and per-item truth posteriors
with EM.  The paper discusses it as the dominant model for *homogeneous*
items and contrasts it with IRT; we include it so the library covers that
comparison point and so examples can demonstrate where it breaks down on
heterogeneous MCQs.

Users are ranked by the prior-weighted mean of their confusion-matrix
diagonal, i.e. their estimated probability of labelling an item correctly.

Both EM steps are pure scatter/gather sums over the ``(user, item, choice)``
answer triples, so this implementation expresses them as two products with
one sparse indicator matrix ``M`` of shape ``(m*k, n)`` (a 1 at row
``u*k + h``, column ``i`` for every answer ``(u, i, h)``):

* M-step confusion counts: ``M @ posteriors`` accumulates the truth
  posterior of every answered item into the answering user's ``(h, l)``
  cell — the former per-user ``np.add.at`` loop.
* E-step log posteriors:   ``M^T @ log_confusion`` accumulates the
  answering users' log confusion rows into each item — the former second
  per-user loop.

``M`` is built once per ``rank()`` call in ``O(nnz)``; each EM iteration
then costs ``O(nnz * k)`` with no Python loop.  The seed loop formulation
is preserved in :mod:`repro.truth_discovery.reference` as the oracle the
equivalence tests compare against (scores match element-wise).
"""

from __future__ import annotations

from typing import Dict

import numpy as np
import scipy.sparse as sp

from repro.core.ranking import AbilityRanker, AbilityRanking
from repro.core.response import ResponseMatrix


class DawidSkeneRanker(AbilityRanker):
    """EM estimation of per-user confusion matrices; ranks by diagonal mass.

    Parameters
    ----------
    max_iterations, tolerance:
        EM stopping rule on the change of the truth posteriors.
    smoothing:
        Additive (Laplace) smoothing applied to confusion-matrix counts so
        that users with few answers keep proper distributions.
    """

    name = "Dawid-Skene"

    def __init__(self, *, max_iterations: int = 100, tolerance: float = 1e-6,
                 smoothing: float = 0.01) -> None:
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.smoothing = smoothing

    def rank(self, response: ResponseMatrix) -> AbilityRanking:
        compiled = response.compiled
        num_users = response.num_users
        num_items = response.num_items
        num_classes = response.max_options
        user_idx = compiled.user_index
        item_idx = compiled.item_index
        choice_idx = compiled.option_index

        # Sparse answer indicator: row u*k + h, column i for answer (u, i, h).
        indicator = sp.csr_matrix(
            (
                np.ones(user_idx.size),
                (user_idx * num_classes + choice_idx, item_idx),
            ),
            shape=(num_users * num_classes, num_items),
        )
        indicator_t = indicator.T.tocsr()

        # Initialization: soft majority vote posteriors per item.
        counts = np.bincount(
            item_idx * num_classes + choice_idx,
            minlength=num_items * num_classes,
        ).reshape(num_items, num_classes).astype(float)
        totals = counts.sum(axis=1, keepdims=True)
        posteriors = np.where(
            totals > 0,
            (counts + self.smoothing) / (totals + self.smoothing * num_classes),
            1.0 / num_classes,
        )

        confusion = np.zeros((num_users, num_classes, num_classes))
        priors = np.full(num_classes, 1.0 / num_classes)
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            # M-step: class priors and per-user confusion matrices.
            priors = posteriors.mean(axis=0)
            priors = priors / priors.sum()
            # (m*k, l) -> (u, h, l) -> transpose to (u, l, h) to match the
            # "truth l, reported h" convention.
            counts_flat = np.asarray(indicator @ posteriors)
            confusion = counts_flat.reshape(
                num_users, num_classes, num_classes
            ).transpose(0, 2, 1) + self.smoothing
            confusion /= confusion.sum(axis=2, keepdims=True)

            # E-step: truth posterior per item.
            log_confusion = np.log(np.clip(confusion, 1e-12, 1.0))
            log_confusion_flat = np.ascontiguousarray(
                log_confusion.transpose(0, 2, 1)
            ).reshape(num_users * num_classes, num_classes)
            new_posteriors = np.log(np.clip(priors, 1e-12, 1.0))[np.newaxis, :] + (
                np.asarray(indicator_t @ log_confusion_flat)
            )
            new_posteriors -= new_posteriors.max(axis=1, keepdims=True)
            np.exp(new_posteriors, out=new_posteriors)
            new_posteriors /= new_posteriors.sum(axis=1, keepdims=True)

            change = float(np.abs(new_posteriors - posteriors).max())
            posteriors = new_posteriors
            if change < self.tolerance:
                converged = True
                break

        accuracies = np.einsum("ukk,k->u", confusion, priors)
        truths = posteriors.argmax(axis=1)
        diagnostics: Dict[str, object] = {
            "iterations": iterations,
            "converged": converged,
            "discovered_truths": truths,
            "class_priors": priors,
        }
        return AbilityRanking(scores=accuracies, method=self.name, diagnostics=diagnostics)
