"""Dawid–Skene EM for homogeneous-label aggregation (Appendix E-A).

The Dawid–Skene model assigns each user a latent ``k x k`` confusion matrix
(probability of reporting label ``h`` when the truth is ``l``) and jointly
estimates confusion matrices, class priors, and per-item truth posteriors
with EM.  The paper discusses it as the dominant model for *homogeneous*
items and contrasts it with IRT; we include it so the library covers that
comparison point and so examples can demonstrate where it breaks down on
heterogeneous MCQs.

Users are ranked by the prior-weighted mean of their confusion-matrix
diagonal, i.e. their estimated probability of labelling an item correctly.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.ranking import AbilityRanker, AbilityRanking
from repro.core.response import NO_ANSWER, ResponseMatrix


class DawidSkeneRanker(AbilityRanker):
    """EM estimation of per-user confusion matrices; ranks by diagonal mass.

    Parameters
    ----------
    max_iterations, tolerance:
        EM stopping rule on the change of the truth posteriors.
    smoothing:
        Additive (Laplace) smoothing applied to confusion-matrix counts so
        that users with few answers keep proper distributions.
    """

    name = "Dawid-Skene"

    def __init__(self, *, max_iterations: int = 100, tolerance: float = 1e-6,
                 smoothing: float = 0.01) -> None:
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.smoothing = smoothing

    def rank(self, response: ResponseMatrix) -> AbilityRanking:
        choices = response.choices
        answered = choices != NO_ANSWER
        num_users, num_items = choices.shape
        num_classes = response.max_options

        # Initialization: soft majority vote posteriors per item.
        posteriors = np.full((num_items, num_classes), 1.0 / num_classes)
        for item in range(num_items):
            counts = np.bincount(choices[answered[:, item], item],
                                 minlength=num_classes).astype(float)
            total = counts.sum()
            if total > 0:
                posteriors[item] = (counts + self.smoothing) / (total + self.smoothing * num_classes)

        confusion = np.zeros((num_users, num_classes, num_classes))
        priors = np.full(num_classes, 1.0 / num_classes)
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            # M-step: class priors and per-user confusion matrices.
            priors = posteriors.mean(axis=0)
            priors = priors / priors.sum()
            confusion.fill(self.smoothing)
            for user in range(num_users):
                items = np.flatnonzero(answered[user])
                if items.size == 0:
                    continue
                reported = choices[user, items]
                np.add.at(confusion[user], (slice(None), reported),
                          posteriors[items].T)
            confusion /= confusion.sum(axis=2, keepdims=True)

            # E-step: truth posterior per item.
            log_confusion = np.log(np.clip(confusion, 1e-12, 1.0))
            new_posteriors = np.tile(np.log(np.clip(priors, 1e-12, 1.0)), (num_items, 1))
            for user in range(num_users):
                items = np.flatnonzero(answered[user])
                if items.size == 0:
                    continue
                reported = choices[user, items]
                new_posteriors[items] += log_confusion[user][:, reported].T
            new_posteriors -= new_posteriors.max(axis=1, keepdims=True)
            new_posteriors = np.exp(new_posteriors)
            new_posteriors /= new_posteriors.sum(axis=1, keepdims=True)

            change = float(np.abs(new_posteriors - posteriors).max())
            posteriors = new_posteriors
            if change < self.tolerance:
                converged = True
                break

        accuracies = np.einsum("ukk,k->u", confusion, priors)
        truths = posteriors.argmax(axis=1)
        diagnostics: Dict[str, object] = {
            "iterations": iterations,
            "converged": converged,
            "discovered_truths": truths,
            "class_priors": priors,
        }
        return AbilityRanking(scores=accuracies, method=self.name, diagnostics=diagnostics)
