"""Dawid–Skene EM for homogeneous-label aggregation (Appendix E-A).

The Dawid–Skene model assigns each user a latent ``k x k`` confusion matrix
(probability of reporting label ``h`` when the truth is ``l``) and jointly
estimates confusion matrices, class priors, and per-item truth posteriors
with EM.  The paper discusses it as the dominant model for *homogeneous*
items and contrasts it with IRT; we include it so the library covers that
comparison point and so examples can demonstrate where it breaks down on
heterogeneous MCQs.

Users are ranked by the prior-weighted mean of their confusion-matrix
diagonal, i.e. their estimated probability of labelling an item correctly.

Both EM steps are pure scatter/gather sums over the ``(user, item, choice)``
answer triples, so this implementation expresses them as two products with
one sparse indicator matrix ``M`` of shape ``(m*k, n)`` (a 1 at row
``u*k + h``, column ``i`` for every answer ``(u, i, h)``):

* M-step confusion counts: ``M @ posteriors`` accumulates the truth
  posterior of every answered item into the answering user's ``(h, l)``
  cell — the former per-user ``np.add.at`` loop.
* E-step log posteriors:   ``M^T @ log_confusion`` accumulates the
  answering users' log confusion rows into each item — the former second
  per-user loop.

``M`` is built once per ``rank()`` call in ``O(nnz)``; each EM iteration
then costs ``O(nnz * k)`` with no Python loop.  The seed loop formulation
is preserved in :mod:`repro.truth_discovery.reference` as the oracle the
equivalence tests compare against (scores match element-wise).

Mergeable sufficient statistics
-------------------------------
Both EM steps reduce over *per-user* contributions, so they distribute over
user-range shards: the M-step counts of a user depend only on that user's
answers (shards produce disjoint row blocks of ``M @ posteriors``), and the
E-step accumulates per-item sums of per-answer terms.  :func:`dawid_skene_em`
therefore factors the EM loop over two pluggable accumulators — the sparse
matmuls here, or the shard-parallel bincount kernels in
:mod:`repro.engine.kernels` — while every surrounding operation (priors,
smoothing, normalization, convergence) is shared, so the two execution
engines produce bit-identical scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.api.registry import register_ranker
from repro.core.ranking import AbilityRanker, AbilityRanking
from repro.core.response import ResponseMatrix
from repro.core.solver_state import SolverState, warm_table


def initial_posteriors(
    item_index: np.ndarray,
    option_index: np.ndarray,
    num_items: int,
    num_classes: int,
    smoothing: float,
) -> np.ndarray:
    """Soft majority-vote truth posteriors — the EM initialization.

    A pure function of the per-item option histogram, which is an *integer*
    statistic: shards can histogram their own answers and the partial counts
    add exactly, so every execution engine starts EM from the same point.
    """
    counts = np.bincount(
        np.asarray(item_index) * num_classes + np.asarray(option_index),
        minlength=num_items * num_classes,
    ).reshape(num_items, num_classes).astype(float)
    totals = counts.sum(axis=1, keepdims=True)
    return np.where(
        totals > 0,
        (counts + smoothing) / (totals + smoothing * num_classes),
        1.0 / num_classes,
    )


@dataclass(frozen=True)
class DawidSkeneEMResult:
    """Converged state of one Dawid–Skene EM run.

    ``residual`` is the final max-change of the truth posteriors — the
    quantity the stopping rule thresholds, captured into the
    :class:`~repro.core.solver_state.SolverState` for warm restarts.
    """

    accuracies: np.ndarray
    posteriors: np.ndarray
    priors: np.ndarray
    confusion: np.ndarray
    iterations: int
    converged: bool
    residual: float = float("inf")


def dawid_skene_em(
    *,
    count_accumulator: Callable[[np.ndarray], np.ndarray],
    loglik_accumulator: Callable[[np.ndarray], np.ndarray],
    posteriors: np.ndarray,
    num_users: int,
    num_classes: int,
    max_iterations: int,
    tolerance: float,
    smoothing: float,
) -> DawidSkeneEMResult:
    """The Dawid–Skene EM loop over pluggable sufficient-statistic kernels.

    Parameters
    ----------
    count_accumulator:
        ``posteriors (n, k) -> counts (m*k, k)``: row ``u*k + h`` holds the
        summed truth posteriors of the items user ``u`` answered with option
        ``h`` (the product ``M @ posteriors``).
    loglik_accumulator:
        ``log_confusion_flat (m*k, k) -> sums (n, k)``: per-item sums of the
        answering users' log-confusion rows (the product
        ``M^T @ log_confusion_flat``).
    posteriors:
        Initial truth posteriors, from :func:`initial_posteriors`.

    Every floating-point operation outside the two accumulators is performed
    here, once, identically for all execution engines; an engine is
    bit-identical to another iff its accumulators are.
    """
    confusion = np.zeros((num_users, num_classes, num_classes))
    priors = np.full(num_classes, 1.0 / num_classes)
    iterations = 0
    converged = False
    change = float("inf")
    for iterations in range(1, max_iterations + 1):
        # M-step: class priors and per-user confusion matrices.
        priors = posteriors.mean(axis=0)
        priors = priors / priors.sum()
        # (m*k, l) -> (u, h, l) -> transpose to (u, l, h) to match the
        # "truth l, reported h" convention.
        counts_flat = count_accumulator(posteriors)
        confusion = counts_flat.reshape(
            num_users, num_classes, num_classes
        ).transpose(0, 2, 1) + smoothing
        confusion /= confusion.sum(axis=2, keepdims=True)

        # E-step: truth posterior per item.
        log_confusion = np.log(np.clip(confusion, 1e-12, 1.0))
        log_confusion_flat = np.ascontiguousarray(
            log_confusion.transpose(0, 2, 1)
        ).reshape(num_users * num_classes, num_classes)
        new_posteriors = np.log(np.clip(priors, 1e-12, 1.0))[np.newaxis, :] + (
            loglik_accumulator(log_confusion_flat)
        )
        new_posteriors -= new_posteriors.max(axis=1, keepdims=True)
        np.exp(new_posteriors, out=new_posteriors)
        new_posteriors /= new_posteriors.sum(axis=1, keepdims=True)

        change = float(np.abs(new_posteriors - posteriors).max())
        posteriors = new_posteriors
        if change < tolerance:
            converged = True
            break
        if not np.isfinite(change):
            # Residual blow-up (e.g. a poisoned warm-start posterior table):
            # further iterations cannot recover, so report non-convergence
            # immediately and let warm-start callers rerun cold.
            break

    accuracies = np.einsum("ukk,k->u", confusion, priors)
    return DawidSkeneEMResult(
        accuracies=accuracies,
        posteriors=posteriors,
        priors=priors,
        confusion=confusion,
        iterations=iterations,
        converged=converged,
        residual=change,
    )


def dawid_skene_solve(
    *,
    count_accumulator: Callable[[np.ndarray], np.ndarray],
    loglik_accumulator: Callable[[np.ndarray], np.ndarray],
    item_index: np.ndarray,
    option_index: np.ndarray,
    num_items: int,
    num_users: int,
    num_classes: int,
    max_iterations: int,
    tolerance: float,
    smoothing: float,
    init_state: Optional[SolverState] = None,
) -> Tuple[DawidSkeneEMResult, SolverState, str]:
    """Run :func:`dawid_skene_em` with an optional warm start; all backends.

    The warm iterate is the truth-posterior table — the only EM state the
    loop needs (priors and confusion matrices are recomputed from it by the
    first M-step).  Stored rows overwrite the head of the cold (soft
    majority-vote) initialization, so appended items start cold while known
    items resume where the previous solve converged.  Returns
    ``(result, state, warm_mode)`` with the same ``warm_mode`` convention as
    :func:`repro.core.hitsndiffs.hnd_power_solve`: an incompatible state
    (different class count, shrunk item axis) solves cold up front, and a
    warm attempt whose residual blows up (non-finite — a poisoned state)
    falls back to a cold rerun, so a stale state costs time, never
    correctness.  Mere budget exhaustion with a finite residual keeps the
    warm iterate — a cold rerun with the same budget would land no closer.
    """
    cold = initial_posteriors(
        item_index, option_index, num_items, num_classes, smoothing
    )
    warm = warm_table(init_state, "Dawid-Skene", "posteriors", cold)
    warm_mode = "cold"
    if init_state is not None:
        warm_mode = "warm" if warm is not None else "incompatible-cold"
    result = dawid_skene_em(
        count_accumulator=count_accumulator,
        loglik_accumulator=loglik_accumulator,
        posteriors=cold if warm is None else warm,
        num_users=num_users,
        num_classes=num_classes,
        max_iterations=max_iterations,
        tolerance=tolerance,
        smoothing=smoothing,
    )
    if warm is not None and not np.isfinite(result.residual):
        result = dawid_skene_em(
            count_accumulator=count_accumulator,
            loglik_accumulator=loglik_accumulator,
            posteriors=cold,
            num_users=num_users,
            num_classes=num_classes,
            max_iterations=max_iterations,
            tolerance=tolerance,
            smoothing=smoothing,
        )
        warm_mode = "fallback-cold"
    state = SolverState(
        "Dawid-Skene",
        {"posteriors": result.posteriors},
        iterations=result.iterations,
        residual=result.residual,
    )
    return result, state, warm_mode


@register_ranker(
    "Dawid-Skene",
    params=("max_iterations", "tolerance", "smoothing"),
    warm_startable=True,
    summary="Dawid-Skene EM over per-user confusion matrices",
)
class DawidSkeneRanker(AbilityRanker):
    """EM estimation of per-user confusion matrices; ranks by diagonal mass.

    Parameters
    ----------
    max_iterations, tolerance:
        EM stopping rule on the change of the truth posteriors.
    smoothing:
        Additive (Laplace) smoothing applied to confusion-matrix counts so
        that users with few answers keep proper distributions.
    """

    name = "Dawid-Skene"

    def __init__(self, *, max_iterations: int = 100, tolerance: float = 1e-6,
                 smoothing: float = 0.01) -> None:
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.smoothing = smoothing

    def rank(
        self,
        response: ResponseMatrix,
        *,
        init_state: Optional[SolverState] = None,
    ) -> AbilityRanking:
        compiled = response.compiled
        num_users = response.num_users
        num_items = response.num_items
        num_classes = response.max_options
        user_idx = compiled.user_index
        item_idx = compiled.item_index
        choice_idx = compiled.option_index

        # Sparse answer indicator: row u*k + h, column i for answer (u, i, h).
        indicator = sp.csr_matrix(
            (
                np.ones(user_idx.size),
                (user_idx * num_classes + choice_idx, item_idx),
            ),
            shape=(num_users * num_classes, num_items),
        )
        indicator_t = indicator.T.tocsr()

        result, state, warm_mode = dawid_skene_solve(
            count_accumulator=lambda posteriors: np.asarray(
                indicator @ posteriors
            ),
            loglik_accumulator=lambda flat: np.asarray(indicator_t @ flat),
            item_index=item_idx,
            option_index=choice_idx,
            num_items=num_items,
            num_users=num_users,
            num_classes=num_classes,
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
            smoothing=self.smoothing,
            init_state=init_state,
        )

        truths = result.posteriors.argmax(axis=1)
        diagnostics: Dict[str, object] = {
            "iterations": result.iterations,
            "converged": result.converged,
            "discovered_truths": truths,
            "class_priors": result.priors,
            "warm_start": warm_mode,
        }
        return AbilityRanking(
            scores=result.accuracies, method=self.name,
            diagnostics=diagnostics, state=state,
        )
