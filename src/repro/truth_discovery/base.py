"""Shared machinery for the iterative truth-discovery baselines.

HITS, TruthFinder, Investment and PooledInvestment (Section III-A of the
paper) all follow the same template: alternate between updating per-user
trust scores from option weights and option weights from user scores, then
rank users by their final scores.  :class:`IterativeTruthRanker` factors the
loop, the convergence bookkeeping, and the extraction of "discovered truths"
(the highest-weight option per item) so the individual baselines only
implement their two update rules.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.ranking import AbilityRanker, AbilityRanking
from repro.core.response import ResponseMatrix
from repro.core.solver_state import SolverState, warm_vector


class IterativeTruthRanker(AbilityRanker):
    """Base class for HITS-style alternating user/option score iterations.

    Parameters
    ----------
    max_iterations:
        Iteration budget.  Investment and PooledInvestment do not converge
        in general (the paper fixes them at 10 iterations); convergent
        methods stop earlier via ``tolerance``.
    tolerance:
        L2 threshold on the change of the user score vector between
        iterations; ``None`` disables early stopping.
    """

    name = "iterative"

    def __init__(self, *, max_iterations: int = 100,
                 tolerance: Optional[float] = 1e-6) -> None:
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    # ------------------------------------------------------------------ #
    # Hooks for subclasses
    # ------------------------------------------------------------------ #
    def initial_scores(self, response: ResponseMatrix) -> np.ndarray:
        """Initial per-user trust scores (default: all ones)."""
        return np.ones(response.num_users)

    def update_option_weights(self, response: ResponseMatrix,
                              user_scores: np.ndarray) -> np.ndarray:
        """Compute option weights (length ``sum_i k_i``) from user scores."""
        raise NotImplementedError

    def update_user_scores(self, response: ResponseMatrix,
                           option_weights: np.ndarray,
                           previous_scores: np.ndarray) -> np.ndarray:
        """Compute user scores (length ``m``) from option weights."""
        raise NotImplementedError

    def normalize_scores(self, scores: np.ndarray) -> np.ndarray:
        """Normalization applied after each user-score update (default: max-norm)."""
        peak = np.max(np.abs(scores))
        if peak == 0:
            return scores
        return scores / peak

    # ------------------------------------------------------------------ #
    def rank(
        self,
        response: ResponseMatrix,
        *,
        init_state: Optional[SolverState] = None,
    ) -> AbilityRanking:
        """Run the alternating iteration, optionally warm-started.

        ``init_state`` resumes from a previously converged user score
        vector (appended users start from the method's cold initial
        value).  Warm starts are only honoured for methods with a real
        stopping rule (``tolerance`` set): for the fixed-schedule methods
        (Investment family) a different initial vector would change the
        answer, not the cost, so their state is treated as incompatible
        and the solve runs cold.  A warm attempt whose residual blows up
        (non-finite — a poisoned state) is rerun cold; plain budget
        exhaustion keeps the warm iterate, which a same-budget cold rerun
        could not beat.
        """
        cold = np.asarray(self.initial_scores(response), dtype=float)
        initial = None
        warm_mode = "cold"
        if init_state is not None:
            if self.tolerance is not None:
                initial = warm_vector(
                    init_state, self.name, "user_scores", cold.size, cold
                )
            warm_mode = "warm" if initial is not None else "incompatible-cold"
        scores, weights, iterations, converged, change = self._iterate(
            response, cold if initial is None else initial
        )
        if initial is not None and not np.isfinite(change):
            scores, weights, iterations, converged, change = self._iterate(
                response, cold
            )
            warm_mode = "fallback-cold"
        diagnostics: Dict[str, object] = {
            "iterations": iterations,
            "converged": converged,
            "discovered_truths": discovered_truths(response, weights),
            "warm_start": warm_mode,
        }
        state = SolverState(
            self.name, {"user_scores": scores},
            iterations=iterations, residual=change,
        )
        return AbilityRanking(scores=scores, method=self.name,
                              diagnostics=diagnostics, state=state)

    def _iterate(
        self, response: ResponseMatrix, scores: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, int, bool, float]:
        """One full solve from ``scores``; returns the loop's final state."""
        weights = np.zeros(response.num_option_columns)
        iterations = 0
        converged = False
        change = float("inf")
        for iterations in range(1, self.max_iterations + 1):
            weights = np.asarray(
                self.update_option_weights(response, scores), dtype=float
            )
            new_scores = np.asarray(
                self.update_user_scores(response, weights, scores), dtype=float
            )
            new_scores = self.normalize_scores(new_scores)
            change = float(np.linalg.norm(new_scores - scores))
            scores = new_scores
            if self.tolerance is not None and change < self.tolerance:
                converged = True
                break
            if not np.isfinite(change):
                # Residual blow-up: bail out so warm-start callers can
                # rerun cold instead of burning the iteration budget.
                break
        return scores, weights, iterations, converged, change


def discovered_truths(response: ResponseMatrix, option_weights: np.ndarray) -> np.ndarray:
    """Highest-weight option per item — the baseline's "truth" output.

    Ability discovery only needs the user ranking, but the truth-discovery
    baselines produce item labels as a by-product; exposing them lets the
    examples show the duality between the two problems.
    """
    option_weights = np.asarray(option_weights, dtype=float).ravel()
    num_items = response.num_items
    k = response.max_options
    offsets = np.asarray(response.column_offsets)
    # Spread the ragged option blocks into an (n, k_max) table padded with
    # -inf, so one argmax call replaces the per-item block scan.  Ties break
    # towards the lower option index, exactly like the per-block argmax.
    table = np.full((num_items, k), -np.inf)
    column_item = response.compiled.column_item
    option_of_column = np.arange(offsets[-1]) - offsets[:-1][column_item]
    table[column_item, option_of_column] = option_weights
    return table.argmax(axis=1).astype(int)


def option_choice_matrix(response: ResponseMatrix) -> sp.csr_matrix:
    """Alias for the sparse one-hot response matrix (kept for readability)."""
    return response.binary
