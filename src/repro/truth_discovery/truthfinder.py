"""TruthFinder (Yin, Han & Yu 2008) adapted to ability discovery.

TruthFinder interprets a user's score as the probability of being correct on
any item; an option's confidence is the probability that it is true given
the independent trust of the users who chose it:

* ``s <- C_row w`` (average confidence of the chosen options), and
* ``w <- 1 - exp(C^T log(1 - s))`` (noisy-or over the supporting users).

User scores are clipped away from 1 to keep ``log(1 - s)`` finite, and the
original TruthFinder dampening factor ``gamma`` (default 0.05) squashes the
aggregated confidence through a logistic so that options supported by many
trusted users do not all saturate at weight 1 — without it every user's
trust collapses to the same value and the ranking carries no signal.
Setting ``dampening=None`` recovers the undampened noisy-or formulation
exactly as printed in the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.api.registry import register_ranker
from repro.core.response import ResponseMatrix
from repro.irt.dichotomous import sigmoid
from repro.truth_discovery.base import IterativeTruthRanker

_MAX_TRUST = 1.0 - 1e-9


@register_ranker(
    "TruthFinder",
    params=("initial_trust", "dampening", "max_iterations", "tolerance"),
    warm_startable=True,
    summary="TruthFinder trust propagation with implication dampening",
)
class TruthFinderRanker(IterativeTruthRanker):
    """TruthFinder; ranks users by their converged trustworthiness."""

    name = "TruthFinder"

    def __init__(self, *, initial_trust: float = 0.9, dampening: Optional[float] = 0.05,
                 max_iterations: int = 100, tolerance: float = 1e-6) -> None:
        if not 0 < initial_trust < 1:
            raise ValueError("initial_trust must lie strictly between 0 and 1")
        if dampening is not None and dampening <= 0:
            raise ValueError("dampening must be positive (or None to disable)")
        super().__init__(max_iterations=max_iterations, tolerance=tolerance)
        self.initial_trust = initial_trust
        self.dampening = dampening

    def initial_scores(self, response: ResponseMatrix) -> np.ndarray:
        return np.full(response.num_users, self.initial_trust)

    def update_option_weights(self, response: ResponseMatrix,
                              user_scores: np.ndarray) -> np.ndarray:
        trust = np.clip(user_scores, 0.0, _MAX_TRUST)
        log_distrust = np.log1p(-trust)
        aggregated = response.compiled.option_sums(log_distrust)
        if self.dampening is None:
            return 1.0 - np.exp(aggregated)
        # Original TruthFinder: confidence score sigma = -sum(log(1 - trust)),
        # squashed by a logistic with dampening factor gamma.
        return sigmoid(-self.dampening * aggregated)

    def update_user_scores(self, response: ResponseMatrix,
                           option_weights: np.ndarray,
                           previous_scores: np.ndarray) -> np.ndarray:
        return np.asarray(response.row_normalized() @ option_weights).ravel()

    def normalize_scores(self, scores: np.ndarray) -> np.ndarray:
        # TruthFinder scores are probabilities; no rescaling is needed, but we
        # keep them inside [0, 1) for numerical safety of the next iteration.
        return np.clip(scores, 0.0, _MAX_TRUST)
