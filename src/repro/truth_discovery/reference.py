"""Seed-faithful loop implementations of the EM baselines (test oracles).

PR 1 replaced the per-user/per-item Python loops of
:class:`~repro.truth_discovery.dawid_skene.DawidSkeneRanker` and
:class:`~repro.truth_discovery.glad.GLADRanker` with batched
einsum/bincount/sparse-matmul updates.  The original loop formulations are
preserved here, operation for operation, as the cross-check oracle:

* the equivalence tests in ``tests/test_fast_kernels.py`` assert that the
  vectorized rankers reproduce these references, and
* ``benchmarks/bench_perf.py`` can time them to demonstrate the speedup on
  any machine, independent of the numbers committed in ``BENCH_PR1.json``.

Do **not** use these classes in production code paths; they exist to be
slow in exactly the way the seed implementation was.

A note on GLAD: its EM + inner-gradient-ascent dynamics are chaotic — a
``1e-12`` perturbation of the initial abilities changes the converged
scores by ``O(1)`` (verified empirically; the rank ordering stays highly
correlated).  Any reordering of floating-point operations therefore
produces different *scores*, so the vectorized GLAD is validated against
this reference at the ranking level (rank correlation and truth recovery),
not element-wise.  Dawid–Skene is contractive and matches element-wise.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.ranking import AbilityRanker, AbilityRanking
from repro.core.response import NO_ANSWER, ResponseMatrix
from repro.irt.dichotomous import sigmoid


class ReferenceDawidSkeneRanker(AbilityRanker):
    """The seed Dawid–Skene EM with explicit per-user loops (oracle)."""

    name = "Dawid-Skene-reference"

    def __init__(self, *, max_iterations: int = 100, tolerance: float = 1e-6,
                 smoothing: float = 0.01) -> None:
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.smoothing = smoothing

    def rank(self, response: ResponseMatrix) -> AbilityRanking:
        choices = response.choices
        answered = choices != NO_ANSWER
        num_users, num_items = choices.shape
        num_classes = response.max_options

        # Initialization: soft majority vote posteriors per item.
        posteriors = np.full((num_items, num_classes), 1.0 / num_classes)
        for item in range(num_items):
            counts = np.bincount(choices[answered[:, item], item],
                                 minlength=num_classes).astype(float)
            total = counts.sum()
            if total > 0:
                posteriors[item] = (counts + self.smoothing) / (total + self.smoothing * num_classes)

        confusion = np.zeros((num_users, num_classes, num_classes))
        priors = np.full(num_classes, 1.0 / num_classes)
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            # M-step: class priors and per-user confusion matrices.
            priors = posteriors.mean(axis=0)
            priors = priors / priors.sum()
            confusion.fill(self.smoothing)
            for user in range(num_users):
                items = np.flatnonzero(answered[user])
                if items.size == 0:
                    continue
                reported = choices[user, items]
                np.add.at(confusion[user], (slice(None), reported),
                          posteriors[items].T)
            confusion /= confusion.sum(axis=2, keepdims=True)

            # E-step: truth posterior per item.
            log_confusion = np.log(np.clip(confusion, 1e-12, 1.0))
            new_posteriors = np.tile(np.log(np.clip(priors, 1e-12, 1.0)), (num_items, 1))
            for user in range(num_users):
                items = np.flatnonzero(answered[user])
                if items.size == 0:
                    continue
                reported = choices[user, items]
                new_posteriors[items] += log_confusion[user][:, reported].T
            new_posteriors -= new_posteriors.max(axis=1, keepdims=True)
            new_posteriors = np.exp(new_posteriors)
            new_posteriors /= new_posteriors.sum(axis=1, keepdims=True)

            change = float(np.abs(new_posteriors - posteriors).max())
            posteriors = new_posteriors
            if change < self.tolerance:
                converged = True
                break

        accuracies = np.einsum("ukk,k->u", confusion, priors)
        truths = posteriors.argmax(axis=1)
        diagnostics: Dict[str, object] = {
            "iterations": iterations,
            "converged": converged,
            "discovered_truths": truths,
            "class_priors": priors,
        }
        return AbilityRanking(scores=accuracies, method=self.name, diagnostics=diagnostics)


class ReferenceGLADRanker(AbilityRanker):
    """The seed GLAD EM with explicit per-item loops (oracle)."""

    name = "GLAD-reference"

    def __init__(self, *, max_iterations: int = 30, gradient_steps: int = 10,
                 learning_rate: float = 0.05, prior_precision: float = 0.01,
                 tolerance: float = 1e-5) -> None:
        self.max_iterations = max_iterations
        self.gradient_steps = gradient_steps
        self.learning_rate = learning_rate
        self.prior_precision = prior_precision
        self.tolerance = tolerance

    # ------------------------------------------------------------------ #
    def _correct_probability(self, alpha: np.ndarray, log_beta: np.ndarray) -> np.ndarray:
        return np.clip(
            sigmoid(alpha[:, np.newaxis] * np.exp(log_beta)[np.newaxis, :]),
            1e-6, 1.0 - 1e-6,
        )

    def _truth_posteriors(self, response: ResponseMatrix, alpha: np.ndarray,
                          log_beta: np.ndarray) -> np.ndarray:
        choices = response.choices
        answered = response.answered_mask
        num_items = response.num_items
        num_classes = response.max_options
        correct = self._correct_probability(alpha, log_beta)
        log_posterior = np.zeros((num_items, num_classes))
        for item in range(num_items):
            k_i = int(response.num_options[item])
            users = np.flatnonzero(answered[:, item])
            if users.size == 0:
                continue
            labels = choices[users, item]
            p_correct = correct[users, item]
            wrong_share = (1.0 - p_correct) / max(k_i - 1, 1)
            for candidate in range(k_i):
                match = labels == candidate
                log_posterior[item, candidate] = float(
                    np.sum(np.log(np.where(match, p_correct, wrong_share)))
                )
            log_posterior[item, k_i:] = -np.inf
        log_posterior -= log_posterior.max(axis=1, keepdims=True)
        posterior = np.exp(log_posterior)
        posterior /= posterior.sum(axis=1, keepdims=True)
        return posterior

    def _m_step(self, response: ResponseMatrix, posterior: np.ndarray,
                alpha: np.ndarray, log_beta: np.ndarray) -> tuple:
        choices = response.choices
        answered = response.answered_mask
        agreement = np.zeros(choices.shape)
        for item in range(response.num_items):
            users = np.flatnonzero(answered[:, item])
            if users.size == 0:
                continue
            agreement[users, item] = posterior[item, choices[users, item]]
        for _ in range(self.gradient_steps):
            correct = self._correct_probability(alpha, log_beta)
            residual = np.where(answered, agreement - correct, 0.0)
            beta = np.exp(log_beta)
            grad_alpha = residual @ beta - self.prior_precision * alpha
            grad_log_beta = (alpha @ residual) * beta - self.prior_precision * log_beta
            alpha = alpha + self.learning_rate * grad_alpha
            log_beta = log_beta + self.learning_rate * grad_log_beta
            log_beta = np.clip(log_beta, -4.0, 4.0)
            alpha = np.clip(alpha, -10.0, 10.0)
        return alpha, log_beta

    # ------------------------------------------------------------------ #
    def rank(self, response: ResponseMatrix) -> AbilityRanking:
        num_users = response.num_users
        num_items = response.num_items
        alpha = np.ones(num_users)
        log_beta = np.zeros(num_items)

        posterior = self._truth_posteriors(response, alpha, log_beta)
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            alpha, log_beta = self._m_step(response, posterior, alpha, log_beta)
            new_posterior = self._truth_posteriors(response, alpha, log_beta)
            change = float(np.abs(new_posterior - posterior).max())
            posterior = new_posterior
            if change < self.tolerance:
                converged = True
                break

        diagnostics: Dict[str, object] = {
            "iterations": iterations,
            "converged": converged,
            "discovered_truths": posterior.argmax(axis=1),
            "item_log_difficulty": -log_beta,
        }
        return AbilityRanking(scores=alpha, method=self.name, diagnostics=diagnostics)
