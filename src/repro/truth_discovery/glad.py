"""GLAD: Generative model of Labels, Abilities and Difficulties.

Whitehill et al. (NeurIPS 2009) propose a crowdsourcing model that the paper
discusses as the binary-IRT special case with all difficulties tied to zero
(Appendix C-A): worker ``j`` labels item ``i`` correctly with probability
``sigma(alpha_j * beta_i)`` where ``alpha_j`` is the worker's ability and
``beta_i > 0`` the item's (inverse) difficulty; an incorrect worker picks one
of the remaining options uniformly at random.

This module implements the multi-class EM estimation of that model so GLAD
can be used as an additional ability-discovery baseline:

* E-step: posterior over each item's true option given current parameters.
* M-step: gradient ascent on the expected complete-data log-likelihood with
  respect to ``alpha`` (per worker) and ``log beta`` (per item).

Users are ranked by their estimated ability ``alpha_j``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.ranking import AbilityRanker, AbilityRanking
from repro.core.response import NO_ANSWER, ResponseMatrix
from repro.irt.dichotomous import sigmoid


class GLADRanker(AbilityRanker):
    """EM estimation of the GLAD model; ranks users by estimated ability.

    Parameters
    ----------
    max_iterations:
        Number of EM rounds.
    gradient_steps, learning_rate:
        Inner gradient-ascent schedule of each M-step.
    prior_precision:
        Strength of the zero-mean Gaussian prior on ``alpha`` and
        ``log beta`` that keeps the parameters bounded (the original paper
        uses such priors as well).
    tolerance:
        Early-stopping threshold on the change of the truth posteriors.
    """

    name = "GLAD"

    def __init__(self, *, max_iterations: int = 30, gradient_steps: int = 10,
                 learning_rate: float = 0.05, prior_precision: float = 0.01,
                 tolerance: float = 1e-5) -> None:
        self.max_iterations = max_iterations
        self.gradient_steps = gradient_steps
        self.learning_rate = learning_rate
        self.prior_precision = prior_precision
        self.tolerance = tolerance

    # ------------------------------------------------------------------ #
    def _correct_probability(self, alpha: np.ndarray, log_beta: np.ndarray) -> np.ndarray:
        """``P(worker j labels item i correctly)``, shape (m, n)."""
        return np.clip(
            sigmoid(alpha[:, np.newaxis] * np.exp(log_beta)[np.newaxis, :]),
            1e-6, 1.0 - 1e-6,
        )

    def _truth_posteriors(self, response: ResponseMatrix, alpha: np.ndarray,
                          log_beta: np.ndarray) -> np.ndarray:
        """Posterior over each item's true option, shape (n, k_max)."""
        choices = response.choices
        answered = response.answered_mask
        num_items = response.num_items
        num_classes = response.max_options
        correct = self._correct_probability(alpha, log_beta)
        log_posterior = np.zeros((num_items, num_classes))
        for item in range(num_items):
            k_i = int(response.num_options[item])
            users = np.flatnonzero(answered[:, item])
            if users.size == 0:
                continue
            labels = choices[users, item]
            p_correct = correct[users, item]
            wrong_share = (1.0 - p_correct) / max(k_i - 1, 1)
            for candidate in range(k_i):
                match = labels == candidate
                log_posterior[item, candidate] = float(
                    np.sum(np.log(np.where(match, p_correct, wrong_share)))
                )
            log_posterior[item, k_i:] = -np.inf
        log_posterior -= log_posterior.max(axis=1, keepdims=True)
        posterior = np.exp(log_posterior)
        posterior /= posterior.sum(axis=1, keepdims=True)
        return posterior

    def _m_step(self, response: ResponseMatrix, posterior: np.ndarray,
                alpha: np.ndarray, log_beta: np.ndarray) -> tuple:
        """Gradient ascent on the expected log-likelihood."""
        choices = response.choices
        answered = response.answered_mask
        # q[j, i]: probability (under the posterior) that worker j's label of
        # item i equals the true option.
        agreement = np.zeros(choices.shape)
        for item in range(response.num_items):
            users = np.flatnonzero(answered[:, item])
            if users.size == 0:
                continue
            agreement[users, item] = posterior[item, choices[users, item]]
        for _ in range(self.gradient_steps):
            correct = self._correct_probability(alpha, log_beta)
            # d/dz of [q log sigma(z) + (1-q) log(1-sigma(z))] = q - sigma(z).
            residual = np.where(answered, agreement - correct, 0.0)
            beta = np.exp(log_beta)
            grad_alpha = residual @ beta - self.prior_precision * alpha
            grad_log_beta = (alpha @ residual) * beta - self.prior_precision * log_beta
            alpha = alpha + self.learning_rate * grad_alpha
            log_beta = log_beta + self.learning_rate * grad_log_beta
            log_beta = np.clip(log_beta, -4.0, 4.0)
            alpha = np.clip(alpha, -10.0, 10.0)
        return alpha, log_beta

    # ------------------------------------------------------------------ #
    def rank(self, response: ResponseMatrix) -> AbilityRanking:
        num_users = response.num_users
        num_items = response.num_items
        alpha = np.ones(num_users)
        log_beta = np.zeros(num_items)

        posterior = self._truth_posteriors(response, alpha, log_beta)
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            alpha, log_beta = self._m_step(response, posterior, alpha, log_beta)
            new_posterior = self._truth_posteriors(response, alpha, log_beta)
            change = float(np.abs(new_posterior - posterior).max())
            posterior = new_posterior
            if change < self.tolerance:
                converged = True
                break

        diagnostics: Dict[str, object] = {
            "iterations": iterations,
            "converged": converged,
            "discovered_truths": posterior.argmax(axis=1),
            "item_log_difficulty": -log_beta,
        }
        return AbilityRanking(scores=alpha, method=self.name, diagnostics=diagnostics)
