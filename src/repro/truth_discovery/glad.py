"""GLAD: Generative model of Labels, Abilities and Difficulties.

Whitehill et al. (NeurIPS 2009) propose a crowdsourcing model that the paper
discusses as the binary-IRT special case with all difficulties tied to zero
(Appendix C-A): worker ``j`` labels item ``i`` correctly with probability
``sigma(alpha_j * beta_i)`` where ``alpha_j`` is the worker's ability and
``beta_i > 0`` the item's (inverse) difficulty; an incorrect worker picks one
of the remaining options uniformly at random.

This module implements the multi-class EM estimation of that model so GLAD
can be used as an additional ability-discovery baseline:

* E-step: posterior over each item's true option given current parameters.
* M-step: gradient ascent on the expected complete-data log-likelihood with
  respect to ``alpha`` (per worker) and ``log beta`` (per item).

Users are ranked by their estimated ability ``alpha_j``.

Implementation notes (PR 1, reworked in PR 7): the E-step runs as two
``np.bincount`` scatter-adds over the flat ``(user, item, choice)`` answer
triples instead of a per-item/per-candidate Python loop.  The M-step is
**O(nnz) per gradient step**: the expected log-likelihood only involves
answered ``(worker, item)`` pairs — unanswered cells contribute a zero
residual — so the sigmoid, the residual, and both gradient reductions are
evaluated on the answer triples alone (per-answer gathers plus two
``np.bincount`` scatter-adds), never on a dense ``(m, n)`` grid.  Nothing
on the hot path allocates ``O(m * n)`` memory; the dense formulation
survives only in the seed-faithful oracle
(:mod:`repro.truth_discovery.reference`).  The ``dtype`` parameter
optionally drops the per-answer work buffers to ``float32`` — measured to
cost real ranking quality on hard instances, so ``float64`` stays the
default; the EM parameters ``alpha``/``log beta`` and the truth
posteriors — including the convergence check — always stay ``float64``.

GLAD's EM/gradient dynamics are chaotic — a ``1e-12`` input perturbation
changes the converged scores by ``O(1)`` — so any reordering of float ops
(including the sparse M-step, at either precision) yields different
scores; the equivalence tests therefore compare *rankings* against the
seed-faithful oracle in :mod:`repro.truth_discovery.reference`, not raw
scores.

The same chaos is why GLAD is **not warm-startable** (the registry leaves
``warm_startable=False``, and ``CrowdSession.rank(..., warm_start=True)`` /
``repro.cli rank --warm-start`` reject it with a clear error): restarting
the gradient EM from a previous solution is an ``O(1)`` perturbation of
the trajectory, so the warm result would not be convergence-equivalent to
a cold solve — it would be a different attractor, violating the warm-start
contract that only the iteration count may change.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.api.registry import register_ranker
from repro.core.ranking import AbilityRanker, AbilityRanking
from repro.core.response import ResponseMatrix


@register_ranker(
    "GLAD",
    params=("max_iterations", "gradient_steps", "learning_rate",
            "prior_precision", "tolerance", "dtype"),
    summary="GLAD EM (per-user ability x per-item difficulty, binary graded)",
)
class GLADRanker(AbilityRanker):
    """EM estimation of the GLAD model; ranks users by estimated ability.

    Parameters
    ----------
    max_iterations:
        Number of EM rounds.
    gradient_steps, learning_rate:
        Inner gradient-ascent schedule of each M-step.
    prior_precision:
        Strength of the zero-mean Gaussian prior on ``alpha`` and
        ``log beta`` that keeps the parameters bounded (the original paper
        uses such priors as well).
    tolerance:
        Early-stopping threshold on the change of the truth posteriors.
    dtype:
        Floating dtype of the per-answer sigmoid/residual work buffers.
        ``float32`` cuts the gradient-loop cost further but measurably
        degrades ranking quality on hard instances, so the default is
        ``float64``; parameters and posteriors remain ``float64`` either
        way.
    """

    name = "GLAD"

    def __init__(self, *, max_iterations: int = 30, gradient_steps: int = 10,
                 learning_rate: float = 0.05, prior_precision: float = 0.01,
                 tolerance: float = 1e-5, dtype: "np.typing.DTypeLike" = np.float64) -> None:
        self.max_iterations = max_iterations
        self.gradient_steps = gradient_steps
        self.learning_rate = learning_rate
        self.prior_precision = prior_precision
        self.tolerance = tolerance
        self.dtype = np.dtype(dtype)
        if self.dtype.kind != "f":
            raise ValueError("dtype must be a floating dtype")

    # ------------------------------------------------------------------ #
    def rank(self, response: ResponseMatrix) -> AbilityRanking:
        compiled = response.compiled
        num_users = response.num_users
        num_items = response.num_items
        num_classes = response.max_options
        num_options = response.num_options
        dtype = self.dtype
        user_idx = compiled.user_index
        item_idx = compiled.item_index
        choice_idx = compiled.option_index
        num_answers = user_idx.size
        # Flat row-major positions of the answers inside the (n, k_max)
        # posterior table.
        flat_item_choice = item_idx * num_classes + choice_idx
        # Items someone answered keep the seed behaviour of masking the
        # out-of-range candidate columns to -inf; fully unanswered items
        # stay uniform over all k_max columns, exactly like the original
        # per-item loop (which `continue`d before the mask assignment).
        has_answers = compiled.answers_per_item > 0
        invalid_candidate = (
            np.arange(num_classes)[np.newaxis, :] >= num_options[:, np.newaxis]
        ) & has_answers[:, np.newaxis]
        wrong_denominator = np.maximum(num_options[item_idx] - 1, 1).astype(dtype)

        # Preallocated O(nnz) per-answer work buffers.  The likelihood only
        # involves answered (worker, item) pairs — unanswered cells have a
        # zero residual — so nothing here is (m, n).
        work = np.empty(num_answers, dtype=dtype)
        alpha_at = np.empty(num_answers, dtype=dtype)
        beta_at = np.empty(num_answers, dtype=dtype)
        agreement = np.empty(num_answers, dtype=dtype)

        def answer_correct_probability(alpha_work: np.ndarray,
                                       beta_work: np.ndarray) -> np.ndarray:
            """``P(worker of answer a labeled its item correctly)`` into ``work``.

            ``sigma(z) = 1 / (1 + exp(-z))`` written as in-place ufuncs over
            the per-answer gathers; overflow of ``exp`` saturates to ``inf``
            whose reciprocal is 0, which the clip then maps to the same
            1e-6 floor the seed used.
            """
            np.take(alpha_work, user_idx, out=alpha_at)
            np.take(beta_work, item_idx, out=beta_at)
            np.multiply(alpha_at, beta_at, out=work)
            np.negative(work, out=work)
            np.exp(work, out=work)
            np.add(work, 1.0, out=work)
            np.reciprocal(work, out=work)
            np.clip(work, 1e-6, 1.0 - 1e-6, out=work)
            return work

        def truth_posteriors(alpha: np.ndarray, log_beta: np.ndarray) -> np.ndarray:
            """Posterior over each item's true option, shape (n, k_max).

            For item ``i`` and candidate ``c`` the log posterior is
            ``sum_u log(wrong_u)  +  sum_{u: label=c} (log p_u - log wrong_u)``
            over the users who answered ``i`` — two bincount passes over the
            answer triples instead of a per-item/per-candidate loop.
            """
            probability = answer_correct_probability(
                alpha.astype(dtype, copy=False),
                np.exp(log_beta).astype(dtype, copy=False),
            )
            wrong_share = (1.0 - probability) / wrong_denominator
            log_wrong = np.log(wrong_share)
            log_correct = np.log(probability)
            base = np.bincount(item_idx, weights=log_wrong, minlength=num_items)
            adjustment = np.bincount(
                flat_item_choice,
                weights=log_correct - log_wrong,
                minlength=num_items * num_classes,
            ).reshape(num_items, num_classes)
            log_posterior = base[:, np.newaxis] + adjustment
            log_posterior[invalid_candidate] = -np.inf
            log_posterior -= log_posterior.max(axis=1, keepdims=True)
            posterior = np.exp(log_posterior)
            posterior /= posterior.sum(axis=1, keepdims=True)
            return posterior

        def m_step(posterior, alpha, log_beta):
            """Gradient ascent on the expected log-likelihood, O(nnz) per step.

            The dense gradient ``(q - sigma) * answered`` is zero wherever
            nobody answered, so both reductions collapse to scatter-adds
            over the answers: ``grad alpha[j] = sum_{a of j} r_a beta_i(a)``
            and ``grad log beta[i] = beta_i sum_{a of i} r_a alpha_j(a)``.
            """
            # q[a]: probability (under the posterior) that answer a's label
            # equals its item's true option.  (The posterior stays float64;
            # the assignment casts into the dtype-policy buffer.)
            if agreement.dtype == posterior.dtype:
                np.take(posterior.ravel(), flat_item_choice, out=agreement)
            else:
                agreement[...] = posterior.ravel().take(flat_item_choice)
            for _ in range(self.gradient_steps):
                beta = np.exp(log_beta)
                residual = answer_correct_probability(
                    alpha.astype(dtype, copy=False),
                    beta.astype(dtype, copy=False),
                )
                # d/dz of [q log sigma(z) + (1-q) log(1-sigma(z))] = q - sigma(z).
                np.subtract(agreement, residual, out=residual)
                # The gathers alpha_at/beta_at still hold this step's
                # parameter values; fold the residual in for the weights.
                np.multiply(residual, beta_at, out=beta_at)
                grad_alpha = (
                    np.bincount(user_idx, weights=beta_at, minlength=num_users)
                    - self.prior_precision * alpha
                )
                np.multiply(residual, alpha_at, out=alpha_at)
                grad_log_beta = (
                    np.bincount(item_idx, weights=alpha_at, minlength=num_items)
                    * beta
                    - self.prior_precision * log_beta
                )
                alpha = alpha + self.learning_rate * grad_alpha
                log_beta = log_beta + self.learning_rate * grad_log_beta
                log_beta = np.clip(log_beta, -4.0, 4.0)
                alpha = np.clip(alpha, -10.0, 10.0)
            return alpha, log_beta

        alpha = np.ones(num_users)
        log_beta = np.zeros(num_items)
        with np.errstate(over="ignore"):
            posterior = truth_posteriors(alpha, log_beta)
            iterations = 0
            converged = False
            for iterations in range(1, self.max_iterations + 1):
                alpha, log_beta = m_step(posterior, alpha, log_beta)
                new_posterior = truth_posteriors(alpha, log_beta)
                change = float(np.abs(new_posterior - posterior).max())
                posterior = new_posterior
                if change < self.tolerance:
                    converged = True
                    break

        diagnostics: Dict[str, object] = {
            "iterations": iterations,
            "converged": converged,
            "discovered_truths": posterior.argmax(axis=1),
            "item_log_difficulty": -log_beta,
        }
        return AbilityRanking(scores=alpha, method=self.name, diagnostics=diagnostics)
