"""The original HITS algorithm applied to truth/ability discovery.

Kleinberg's Hubs-and-Authorities on the user-option bipartite graph
(Section III-A of the paper): user scores are proportional to the *sum* of
the weights of the options they chose and option weights to the sum of the
scores of the users choosing them.  The user scores converge to the
dominant eigenvector of ``C C^T``.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_ranker
from repro.core.response import ResponseMatrix
from repro.truth_discovery.base import IterativeTruthRanker


@register_ranker(
    "HITS",
    params=("max_iterations", "tolerance"),
    warm_startable=True,
    summary="Kleinberg HITS on the user-option bipartite graph",
)
class HITSRanker(IterativeTruthRanker):
    """Classic HITS; ranks users by their converged hub scores."""

    name = "HITS"

    def __init__(self, *, max_iterations: int = 200, tolerance: float = 1e-8) -> None:
        super().__init__(max_iterations=max_iterations, tolerance=tolerance)

    def update_option_weights(self, response: ResponseMatrix,
                              user_scores: np.ndarray) -> np.ndarray:
        weights = response.compiled.option_sums(user_scores)
        norm = np.linalg.norm(weights)
        return weights / norm if norm else weights

    def update_user_scores(self, response: ResponseMatrix,
                           option_weights: np.ndarray,
                           previous_scores: np.ndarray) -> np.ndarray:
        return response.compiled.user_sums(option_weights)

    def normalize_scores(self, scores: np.ndarray) -> np.ndarray:
        norm = np.linalg.norm(scores)
        return scores / norm if norm else scores
