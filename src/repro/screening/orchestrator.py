"""Resumable mass screening: registry methods x scenarios x scales.

The screening orchestrator sweeps every cell of a
``scenario x scale x method`` grid, scores the ranking each method
produces on the scenario's planted truth, and persists **one artifact per
cell** under ``<out_dir>/cells/``.  Two properties carry the whole
design:

**Checkpoint after every cell, resume by scanning.**  Each cell artifact
is written atomically (tmp file + ``os.replace``) the moment the cell
finishes, so a run killed at any instant — including ``SIGKILL``
mid-write — leaves only complete artifacts behind.  A rerun scans the
output directory, verifies each existing artifact against the plan (same
identity fields, same plan seed), and recomputes only what is missing.
This is the ExplorePipolin mass-screening shape: the corpus iteration is
restartable because the per-item artifact *is* the checkpoint.

**Byte-identical artifacts.**  Cell artifacts contain no timestamps, no
durations, no hostnames — only plan-derived identity and deterministic
results — and are serialized with sorted keys.  A resumed run therefore
produces byte-for-byte the artifacts the uninterrupted run would have
(CI kills a run mid-sweep and diffs the two output trees to enforce
exactly that).  Wall-clock telemetry lives in a ``progress.json``
sidecar that is explicitly outside the identity contract.

Per-cell seeds derive from ``blake2b(plan_seed, scenario, scale, trial)``
— method deliberately excluded, so every method in a cell row faces the
*same* generated crowd and the per-method numbers are comparable.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.api import REGISTRY, rank
from repro.evaluation.metrics import (
    kendall_accuracy,
    normalized_displacement,
    pairwise_ranking_accuracy,
    ranking_inversion_gap,
    spearman_accuracy,
    top_fraction_precision,
)
from repro.scenarios import SCENARIOS

#: The accuracy numbers every cell artifact records (name -> computation).
METRIC_NAMES = (
    "spearman",
    "kendall",
    "pairwise",
    "displacement",
    "inversion_gap",
    "top_quarter_precision",
)

#: Artifact schema version; bumped when the cell layout changes so stale
#: artifacts are recomputed instead of silently trusted.
ARTIFACT_VERSION = 1

ProgressCallback = Optional[Callable[[str, str], None]]


@dataclass(frozen=True)
class ScreeningCell:
    """One (scenario, scale, method) point of the sweep grid."""

    scenario: str
    num_users: int
    num_items: int
    method: str

    @property
    def cell_id(self) -> str:
        return "%s-%dx%d-%s" % (
            self.scenario, self.num_users, self.num_items, self.method,
        )


@dataclass(frozen=True)
class ScreeningPlan:
    """A validated sweep specification.

    Scenario and method names are resolved against their registries at
    construction time, so a typo fails here — with the registry's
    did-you-mean hint — not three hours into a sweep.  Supervised methods
    are rejected: screening scores rankings against planted truth the
    method must not have seen.
    """

    scenarios: Tuple[str, ...]
    methods: Tuple[str, ...]
    scales: Tuple[Tuple[int, int], ...]
    trials: int = 1
    seed: int = 7

    def __post_init__(self) -> None:
        if not self.scenarios or not self.methods or not self.scales:
            raise ValueError("a screening plan needs at least one scenario, "
                             "method and scale")
        if self.trials < 1:
            raise ValueError("trials must be >= 1, got %d" % self.trials)
        # Canonicalize names through the registries (case-insensitive
        # rescue included) and fail loudly on unknowns.
        object.__setattr__(
            self, "scenarios",
            tuple(SCENARIOS.get(name).name for name in self.scenarios),
        )
        resolved = []
        for name in self.methods:
            spec = REGISTRY.get(name)
            if spec.supervised:
                raise ValueError(
                    "method %r is supervised — screening scores rankings "
                    "against planted truth the method must not see" % spec.name
                )
            resolved.append(spec.name)
        object.__setattr__(self, "methods", tuple(resolved))
        for scale in self.scales:
            num_users, num_items = scale
            if num_users < 4 or num_items < 4:
                raise ValueError("scale %r is too small to screen" % (scale,))
        object.__setattr__(
            self, "scales",
            tuple((int(m), int(n)) for m, n in self.scales),
        )

    def cells(self) -> Iterator[ScreeningCell]:
        """The sweep grid in deterministic scenario-major order.

        Methods iterate innermost so the per-(scenario, scale) dataset cache
        in :func:`run_screening` stays hot across a full method row.
        """
        for scenario in self.scenarios:
            for num_users, num_items in self.scales:
                for method in self.methods:
                    yield ScreeningCell(scenario, num_users, num_items, method)

    def cell_count(self) -> int:
        return len(self.scenarios) * len(self.scales) * len(self.methods)


def derive_seed(base_seed: int, *parts) -> int:
    """A stable 63-bit seed from the plan seed and cell coordinates.

    ``blake2b`` over the repr-tuple: collision-free in practice, identical
    across processes and platforms (unlike ``hash()``, which is salted).
    """
    payload = repr((int(base_seed),) + tuple(parts)).encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1


def _score_ranking(scores, truth) -> Dict[str, float]:
    return {
        "spearman": float(spearman_accuracy(scores, truth)),
        "kendall": float(kendall_accuracy(scores, truth)),
        "pairwise": float(pairwise_ranking_accuracy(scores, truth)),
        "displacement": float(normalized_displacement(scores, truth)),
        "inversion_gap": float(ranking_inversion_gap(truth, scores)),
        "top_quarter_precision": float(
            top_fraction_precision(scores, truth, fraction=0.25)
        ),
    }


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Serialize deterministically and publish atomically.

    ``sort_keys`` plus CPython's repr-based float formatting makes the
    byte stream a pure function of the payload; the tmp + ``os.replace``
    dance makes a ``SIGKILL`` at any instant leave either the old file or
    the new file, never a torn one.
    """
    text = json.dumps(payload, sort_keys=True, indent=2) + "\n"
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _cell_identity(cell: ScreeningCell, plan: ScreeningPlan) -> dict:
    return {
        "version": ARTIFACT_VERSION,
        "cell_id": cell.cell_id,
        "scenario": cell.scenario,
        "num_users": cell.num_users,
        "num_items": cell.num_items,
        "method": cell.method,
        "trials": plan.trials,
        "seed": plan.seed,
    }


def _load_valid_artifact(path: Path, identity: dict) -> Optional[dict]:
    """The existing artifact, iff it matches the plan's identity fields."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    for key, value in identity.items():
        if payload.get(key) != value:
            return None
    if not isinstance(payload.get("metrics"), dict):
        return None
    return payload


@dataclass
class ScreeningResult:
    """Everything one :func:`run_screening` call produced or reused."""

    cells: Dict[str, dict] = field(default_factory=dict)
    computed: List[str] = field(default_factory=list)
    resumed: List[str] = field(default_factory=list)

    def metric(self, cell_id: str, name: str) -> float:
        return float(self.cells[cell_id]["metrics"][name])


def run_screening(
    plan: ScreeningPlan,
    out_dir,
    *,
    execution=None,
    progress: ProgressCallback = None,
) -> ScreeningResult:
    """Run (or resume) the sweep, one atomic artifact per cell.

    Cells whose artifact already exists *and* matches the plan identity
    are loaded, not recomputed — that is the whole resume story.  The
    ``progress`` callback receives ``(cell_id, "computed" | "resumed")``
    after each cell.
    """
    out_dir = Path(out_dir)
    cells_dir = out_dir / "cells"
    cells_dir.mkdir(parents=True, exist_ok=True)
    result = ScreeningResult()
    dataset_cache: Dict[tuple, list] = {}
    started = time.monotonic()
    for cell in plan.cells():
        identity = _cell_identity(cell, plan)
        artifact_path = cells_dir / ("%s.json" % cell.cell_id)
        existing = _load_valid_artifact(artifact_path, identity)
        if existing is not None:
            result.cells[cell.cell_id] = existing
            result.resumed.append(cell.cell_id)
            if progress:
                progress(cell.cell_id, "resumed")
            continue
        cell_started = time.monotonic()
        dataset_key = (cell.scenario, cell.num_users, cell.num_items)
        if dataset_key not in dataset_cache:
            # One generated crowd per (scenario, scale, trial), shared by
            # every method in the row: the seed excludes the method on
            # purpose, so per-method numbers are comparable.  Keep only
            # the current row's datasets — the grid is scenario-major.
            dataset_cache.clear()
            dataset_cache[dataset_key] = [
                SCENARIOS.get(cell.scenario).generate(
                    cell.num_users,
                    cell.num_items,
                    random_state=derive_seed(
                        plan.seed, cell.scenario, cell.num_users,
                        cell.num_items, trial,
                    ),
                )
                for trial in range(plan.trials)
            ]
        # Methods with a seedable solver (e.g. HnD's power-iteration init)
        # get a derived per-cell seed: an unseeded random init can flip the
        # eigenvector sign, and when the decile-entropy orientation ties
        # (a unanimous bloc makes both extremes zero-entropy) that sign
        # leaks into the ranking.  The artifact contract is byte-identity,
        # so every stochastic knob must be pinned.  The solver seed *does*
        # include the method — it seeds the solver, not the crowd.
        method_spec = REGISTRY.get(cell.method)
        rank_params = {}
        if method_spec.takes("random_state"):
            rank_params["random_state"] = derive_seed(
                plan.seed, "solver", cell.scenario, cell.num_users,
                cell.num_items, cell.method,
            )
        per_trial = []
        for instance in dataset_cache[dataset_key]:
            ranking = rank(instance.response, cell.method,
                           execution=execution, **rank_params)
            per_trial.append(_score_ranking(ranking.scores,
                                            instance.abilities))
        payload = dict(identity)
        payload["per_trial"] = per_trial
        payload["metrics"] = {
            name: sum(trial[name] for trial in per_trial) / len(per_trial)
            for name in METRIC_NAMES
        }
        _atomic_write_json(artifact_path, payload)
        result.cells[cell.cell_id] = payload
        result.computed.append(cell.cell_id)
        # Wall-clock telemetry rides the sidecar, never the artifact:
        # durations differ between an interrupted and a clean run, and the
        # artifacts must not.
        _atomic_write_json(out_dir / "progress.json", {
            "completed": len(result.cells),
            "total": plan.cell_count(),
            "resumed": len(result.resumed),
            "last_cell": cell.cell_id,
            "last_cell_seconds": round(time.monotonic() - cell_started, 3),
            "elapsed_seconds": round(time.monotonic() - started, 3),
        })
        if progress:
            progress(cell.cell_id, "computed")
    return result


# --------------------------------------------------------------------------- #
# The accuracy-floor gate
# --------------------------------------------------------------------------- #
#: The metric the CI gate floors.  Spearman is the paper's headline
#: accuracy number and every method/scenario produces it.
GATE_METRIC = "spearman"


def write_baseline(
    result: ScreeningResult,
    plan: ScreeningPlan,
    path,
    *,
    floor_margin: float = 0.05,
) -> dict:
    """Freeze per-cell accuracy floors from a screening run.

    The floor is ``observed - floor_margin`` (clamped to [-1, 1]): tight
    enough that a real regression — a method suddenly mis-ranking a
    scenario it used to handle — trips the gate, loose enough that seed-
    stable numerical jitter does not.  The observed values ride along so
    a failing gate can show the drift, not just the breach.
    """
    if floor_margin < 0:
        raise ValueError("floor_margin must be >= 0, got %r" % (floor_margin,))
    floors = {}
    observed = {}
    for cell_id, payload in sorted(result.cells.items()):
        value = float(payload["metrics"][GATE_METRIC])
        observed[cell_id] = value
        floors[cell_id] = max(-1.0, min(1.0, value - floor_margin))
    payload = {
        "version": ARTIFACT_VERSION,
        "metric": GATE_METRIC,
        "floor_margin": floor_margin,
        "plan": {
            "scenarios": list(plan.scenarios),
            "methods": list(plan.methods),
            "scales": [list(scale) for scale in plan.scales],
            "trials": plan.trials,
            "seed": plan.seed,
        },
        "floors": floors,
        "observed": observed,
    }
    _atomic_write_json(Path(path), payload)
    return payload


def check_baseline(result: ScreeningResult, baseline: dict) -> List[str]:
    """Accuracy-floor violations for every cell the run and baseline share.

    Gating happens on the *intersection* so a reduced CI smoke plan (fewer
    methods, one scale) checks against the full committed baseline without
    demanding a full sweep — but zero overlap is an error, not a pass:
    a gate that silently checks nothing is worse than no gate.
    """
    metric = baseline.get("metric", GATE_METRIC)
    floors = baseline.get("floors", {})
    shared = sorted(set(result.cells) & set(floors))
    if not shared:
        raise ValueError(
            "screening run and baseline share no cells — the floor gate "
            "would vacuously pass (run cells: %d, baseline cells: %d)"
            % (len(result.cells), len(floors))
        )
    violations = []
    for cell_id in shared:
        value = result.metric(cell_id, metric)
        floor = float(floors[cell_id])
        if value < floor:
            violations.append(
                "%s: %s %.4f fell below floor %.4f (baseline observed %.4f)"
                % (cell_id, metric, value, floor,
                   float(baseline.get("observed", {}).get(cell_id, floor)))
            )
    return violations


def load_baseline(path) -> dict:
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload.get("floors"), dict):
        raise ValueError("%s is not a screening baseline (no floors)" % path)
    return payload
