"""Resumable mass screening of ranking methods over stress scenarios (PR 10).

``repro.screening`` sweeps ``scenario x scale x method`` grids built from
:mod:`repro.scenarios` and the ranker registry, checkpointing one
byte-deterministic artifact per cell so a killed sweep resumes to
identical outputs, and gates accuracy against committed per-cell floors
(``benchmarks/BENCH_PR10.json``).
"""

from repro.screening.orchestrator import (
    ARTIFACT_VERSION,
    GATE_METRIC,
    METRIC_NAMES,
    ScreeningCell,
    ScreeningPlan,
    ScreeningResult,
    check_baseline,
    derive_seed,
    load_baseline,
    run_screening,
    write_baseline,
)

__all__ = [
    "ARTIFACT_VERSION",
    "GATE_METRIC",
    "METRIC_NAMES",
    "ScreeningCell",
    "ScreeningPlan",
    "ScreeningResult",
    "check_baseline",
    "derive_seed",
    "load_baseline",
    "run_screening",
    "write_baseline",
]
