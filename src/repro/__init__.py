"""HITSnDIFFs reproduction: ability discovery via the consecutive ones property.

This library reproduces "HITSnDIFFs: From Truth Discovery to Ability
Discovery by Recovering Matrices with the Consecutive Ones Property"
(Chen, Mitra, Ravi & Gatterbauer, ICDE 2024).

Quickstart
----------
>>> from repro import generate_dataset, rank, spearman_accuracy
>>> dataset = generate_dataset("grm", num_users=50, num_items=80, random_state=0)
>>> ranking = rank(dataset.response, "HnD", random_state=0)
>>> accuracy = spearman_accuracy(ranking, dataset.abilities)

The public API re-exports the most commonly used pieces; see the subpackages
for the full surface:

* :mod:`repro.core` — response matrices and the HITSnDIFFS algorithm family
* :mod:`repro.c1p` — consecutive ones property tools (PQ-trees, ABH)
* :mod:`repro.irt` — Item Response Theory models, generators, estimation
* :mod:`repro.truth_discovery` — HITS-style and cheating baselines
* :mod:`repro.datasets` — the real-world-shaped benchmark datasets
* :mod:`repro.evaluation` — metrics, accuracy sweeps, stability and timing
* :mod:`repro.engine` — sharded execution: user-range shards, streaming
  ingestion, thread/process dispatch, and the hash-keyed rank cache
* :mod:`repro.api` — the unified entry point: the ranker registry,
  :func:`~repro.api.execution.rank` + :class:`~repro.api.execution.ExecutionPolicy`,
  and the stateful :class:`~repro.api.session.CrowdSession`

Unified API
-----------
>>> from repro import CrowdSession, ExecutionPolicy, rank
>>> ranking = rank(dataset.response, "HnD", random_state=0)
>>> sharded = rank(dataset.response, "HnD", random_state=0,
...                execution=ExecutionPolicy(backend="threads", shards=8))
"""

from repro.core import (
    NO_ANSWER,
    AbilityRanker,
    AbilityRanking,
    HNDDeflation,
    HNDDirect,
    HNDPower,
    ResponseBuilder,
    ResponseMatrix,
    SolverState,
    hits_n_diffs,
    score_against_truth,
)
from repro.c1p import (
    ABHDirect,
    ABHPower,
    find_c1p_ordering,
    is_p_matrix,
    is_pre_p_matrix,
)
from repro.irt import (
    GRMEstimator,
    SyntheticDataset,
    generate_c1p_dataset,
    generate_dataset,
)
from repro.truth_discovery import (
    DawidSkeneRanker,
    GLADRanker,
    GRMEstimatorRanker,
    HITSRanker,
    InvestmentRanker,
    MajorityVoteRanker,
    PooledInvestmentRanker,
    TrueAnswerRanker,
    TruthFinderRanker,
)
from repro.datasets import list_datasets, load_dataset
from repro.engine import (
    ProcessEngine,
    RankCache,
    ShardedDawidSkeneRanker,
    ShardedHNDPower,
    ShardedMajorityVoteRanker,
    ShardedResponse,
    load_sharded,
    load_streaming,
)
from repro.api import (
    REGISTRY,
    CrowdSession,
    ExecutionPolicy,
    RankerRegistry,
    SessionManager,
    rank,
    register_ranker,
)
from repro.evaluation import (
    accuracy_sweep,
    default_ranker_suite,
    evaluate_rankers,
    kendall_accuracy,
    measure_scalability,
    spearman_accuracy,
    stability_experiment,
)
from repro.exceptions import (
    CircuitOpenError,
    ConvergenceError,
    CrowdExistsError,
    DatasetError,
    DisconnectedGraphError,
    EngineError,
    EstimationError,
    InvalidResponseMatrixError,
    NotC1PError,
    ProtocolError,
    RateLimitedError,
    ReproError,
    SchemaError,
    ServeError,
    ServerOverloadedError,
    UnknownCrowdError,
    WorkerTimeoutError,
    WorkerUnavailableError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "ResponseMatrix",
    "ResponseBuilder",
    "NO_ANSWER",
    "score_against_truth",
    "AbilityRanker",
    "AbilityRanking",
    "SolverState",
    "HNDPower",
    "HNDDirect",
    "HNDDeflation",
    "hits_n_diffs",
    # c1p
    "ABHDirect",
    "ABHPower",
    "is_p_matrix",
    "is_pre_p_matrix",
    "find_c1p_ordering",
    # irt
    "SyntheticDataset",
    "generate_dataset",
    "generate_c1p_dataset",
    "GRMEstimator",
    # truth discovery
    "HITSRanker",
    "TruthFinderRanker",
    "InvestmentRanker",
    "PooledInvestmentRanker",
    "MajorityVoteRanker",
    "TrueAnswerRanker",
    "GRMEstimatorRanker",
    "DawidSkeneRanker",
    "GLADRanker",
    # datasets
    "list_datasets",
    "load_dataset",
    # engine
    "ShardedResponse",
    "ShardedHNDPower",
    "ShardedDawidSkeneRanker",
    "ShardedMajorityVoteRanker",
    "ProcessEngine",
    "RankCache",
    "load_streaming",
    "load_sharded",
    # api
    "REGISTRY",
    "RankerRegistry",
    "register_ranker",
    "rank",
    "ExecutionPolicy",
    "CrowdSession",
    "SessionManager",
    # evaluation
    "spearman_accuracy",
    "kendall_accuracy",
    "evaluate_rankers",
    "default_ranker_suite",
    "accuracy_sweep",
    "stability_experiment",
    "measure_scalability",
    # exceptions
    "ReproError",
    "InvalidResponseMatrixError",
    "DisconnectedGraphError",
    "ConvergenceError",
    "NotC1PError",
    "EstimationError",
    "DatasetError",
    "EngineError",
    "WorkerUnavailableError",
    "WorkerTimeoutError",
    "ProtocolError",
    "CircuitOpenError",
    "ServeError",
    "SchemaError",
    "UnknownCrowdError",
    "CrowdExistsError",
    "RateLimitedError",
    "ServerOverloadedError",
]
