"""Registry of the real-world MCQ benchmark datasets (Figure 10 of the paper).

The six datasets (Chinese, English, IT, Medicine, Pokemon, Science) come
from Li, Baba & Kashima (CIKM 2017) and are not redistributable here, so the
registry records their published shapes and regenerates *simulated
stand-ins* with identical (users, questions, options) dimensions from a
mixed-ability Samejima process.  The Figure 7 / Figure 11 experiments only
compare rankers against the "True-answer" reference ranking, a protocol the
stand-ins support identically (the substitution is documented on
:class:`DatasetSpec` below).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.exceptions import DatasetError
from repro.irt.generators import SyntheticDataset, generate_dataset

RandomState = Optional[Union[int, np.random.Generator]]


@dataclass(frozen=True)
class DatasetSpec:
    """Published shape of one real MCQ dataset (paper Figure 10)."""

    name: str
    num_users: int
    num_questions: int
    num_options: int
    #: Deterministic seed so every caller regenerates the identical stand-in.
    seed: int
    #: Discrimination ceiling used for the stand-in.  Real quiz questions are
    #: reasonably discriminative; a ceiling of 8 reproduces the paper's
    #: qualitative Figure 7 shape (HnD competitive with the HITS family and
    #: occasionally edged out on these small datasets, ABH far behind).
    discrimination_max: float = 8.0


#: Figure 10 of the paper: users / questions / options per dataset.
REAL_DATASET_SPECS: Dict[str, DatasetSpec] = {
    "chinese": DatasetSpec("chinese", 50, 24, 5, seed=1101),
    "english": DatasetSpec("english", 63, 30, 5, seed=1102),
    "it": DatasetSpec("it", 36, 25, 4, seed=1103),
    "medicine": DatasetSpec("medicine", 45, 36, 4, seed=1104),
    "pokemon": DatasetSpec("pokemon", 55, 20, 6, seed=1105),
    "science": DatasetSpec("science", 111, 20, 5, seed=1106),
}


def list_datasets() -> Tuple[str, ...]:
    """Names of all registered real-world-shaped datasets."""
    return tuple(sorted(REAL_DATASET_SPECS))


def dataset_spec(name: str) -> DatasetSpec:
    """Look up the spec of a registered dataset (case-insensitive)."""
    try:
        return REAL_DATASET_SPECS[name.lower()]
    except KeyError:
        raise DatasetError(
            "unknown dataset %r; available: %s" % (name, ", ".join(list_datasets()))
        ) from None


def load_dataset(name: str, *, random_state: RandomState = None) -> SyntheticDataset:
    """Load (i.e. deterministically regenerate) a registered dataset stand-in.

    Parameters
    ----------
    name:
        One of :func:`list_datasets`.
    random_state:
        Override the registry's fixed seed (e.g. for robustness studies that
        want several replicas of the same shape).
    """
    spec = dataset_spec(name)
    seed = spec.seed if random_state is None else random_state
    dataset = generate_dataset(
        "samejima",
        spec.num_users,
        spec.num_questions,
        spec.num_options,
        discrimination_range=(0.0, spec.discrimination_max),
        random_state=seed,
    )
    dataset.model_name = "real/%s" % spec.name
    dataset.metadata["spec"] = spec
    return dataset


def load_all_datasets(*, random_state: RandomState = None) -> Dict[str, SyntheticDataset]:
    """Load every registered dataset, keyed by name."""
    return {name: load_dataset(name, random_state=random_state) for name in list_datasets()}


def dataset_summary_table() -> Tuple[Tuple[str, int, int, int], ...]:
    """Rows of the Figure 10 summary table: (name, #users, #questions, #options)."""
    return tuple(
        (spec.name, spec.num_users, spec.num_questions, spec.num_options)
        for spec in (REAL_DATASET_SPECS[name] for name in list_datasets())
    )
