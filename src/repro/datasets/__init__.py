"""Dataset registry: simulated stand-ins for the paper's six real MCQ datasets."""

from repro.datasets.registry import (
    REAL_DATASET_SPECS,
    DatasetSpec,
    dataset_spec,
    dataset_summary_table,
    list_datasets,
    load_all_datasets,
    load_dataset,
)

__all__ = [
    "DatasetSpec",
    "REAL_DATASET_SPECS",
    "dataset_spec",
    "dataset_summary_table",
    "list_datasets",
    "load_dataset",
    "load_all_datasets",
]
