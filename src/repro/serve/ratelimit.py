"""Token-bucket rate limiting for the serving front end.

One :class:`TokenBucket` per client connection: tokens refill continuously
at ``rate`` per second up to a ``burst`` cap, and every admitted request
spends one.  An empty bucket answers with the seconds until the next token
— the server turns that into a typed ``rate_limited`` rejection with a
``retry_after`` hint, *immediately*, instead of parking the request in a
queue (a parked request is hidden memory growth and a hidden latency bomb;
the 429-style refusal keeps the degradation visible and client-steerable).

The bucket is lazy — no timers, no background refill task: the token
count is reconstructed from the elapsed monotonic time at each
:meth:`try_acquire`, so ten thousand idle connections cost nothing.
Single-threaded by design (the asyncio event loop is the only caller);
the clock is injectable so tests don't sleep.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class TokenBucket:
    """A lazily-refilled token bucket.

    Parameters
    ----------
    rate:
        Steady-state tokens (requests) per second.
    burst:
        Bucket capacity — how many requests may land back-to-back after an
        idle period before the steady rate applies.  Defaults to ``rate``
        (one second of traffic), with a floor of one token on the default
        only.  An explicit ``burst`` must be positive (``ValueError``
        otherwise — a non-positive capacity is a misconfiguration, not a
        request for a 1-token bucket) and is used as given; a fractional
        capacity below 1.0 builds a bucket that can never grant a whole
        token.
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0 tokens/s, got %r" % (rate,))
        if burst is not None and burst <= 0:
            raise ValueError("burst must be > 0 tokens, got %r" % (burst,))
        self.rate = float(rate)
        self.burst = max(1.0, self.rate) if burst is None else float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._refilled = clock()
        self.granted = 0
        self.rejected = 0

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._refilled
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._refilled = now

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Spend ``tokens`` if available; return the wait otherwise.

        Returns ``0.0`` on grant, else the seconds until the bucket will
        hold ``tokens`` — the ``retry_after`` the rejection carries.
        Never blocks.
        """
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            self.granted += 1
            return 0.0
        self.rejected += 1
        return (tokens - self._tokens) / self.rate
