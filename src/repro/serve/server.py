"""The asyncio serving front end: many named crowds, one event loop.

:class:`CrowdServer` hosts a :class:`~repro.api.manager.SessionManager`
behind a TCP endpoint speaking the framed protocol of
:mod:`repro.engine.remote.protocol` with the request/response schema of
:mod:`repro.serve.schema`.  The mechanics that make it safe under
concurrent load, in dependency order:

**Micro-batched appends.**  ``add_answers`` never touches the session on
the event loop: batches land in a per-crowd pending buffer (``O(batch)``
list append under a thread lock) and are acknowledged immediately; the
*next solve* flushes the buffer into the session's
:class:`~repro.core.response.ResponseBuilder` before ranking, so a burst
of appends between two ranks costs one matrix re-materialization, not one
per batch.  Consistency: a rank admitted after an append was acknowledged
always observes that append (the flush drains everything buffered before
the solve starts).

**Single-flight rank coalescing.**  Identical concurrent ranks — same
crowd state (append epoch), same method-parameter fingerprint (the rank
cache's own :func:`~repro.engine.cache.ranker_fingerprint`), same
warm-start flag — await one in-flight solve and all receive the *same*
ranking object, hence bit-identical scores.  The epoch is a faithful
stand-in for the content hash the cache keys on: equal epochs mean the
same materialized matrix object, and cross-epoch duplicates (an append
that turned out to be a no-op) still collapse in the
:class:`~repro.engine.cache.RankCache` underneath.  Nondeterministic
configurations (``random_state=None``) have no fingerprint and never
coalesce — two such requests legitimately differ, matching the cache's
bypass semantics.

**Solves off the loop.**  Every session-lock-taking operation (flush +
solve) runs on a bounded worker-thread pool, so the event loop keeps
accepting requests — and serving cache hits for *other* crowds — while a
cold solve grinds.  Sessions serialize their own operations internally
(:class:`~repro.api.session.CrowdSession`'s coarse lock), so concurrency
comes from hosting many crowds, exactly the serving workload.

**Rate limiting + backpressure.**  Each connection gets a
:class:`~repro.serve.ratelimit.TokenBucket`; an exhausted bucket is a
typed ``rate_limited`` rejection with ``retry_after`` — never a queued
wait.  Globally, at most ``max_queue`` solves may be dispatched-or-running
at once; past that, rank requests get a typed ``overloaded`` rejection
immediately (coalesced joiners ride free — they add no work).  Pending
append buffers are bounded the same way (``max_pending_answers``).  The
discipline is the remote backend's: degrade loudly and boundedly, never
hang, never grow an unbounded queue.

**Diagnostics.**  The ``server_stats`` op snapshots every counter —
queue depth, coalesced/rejected counts, aggregate cache hit rate — from
lock-free or short-lock sources only, so observability never blocks on a
solve in flight.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api.execution import ExecutionPolicy, warm_start_fingerprint
from repro.api.manager import SessionManager
from repro.api.registry import REGISTRY
from repro.api.session import CrowdSession
from repro.engine.cache import ranker_fingerprint
from repro.engine.remote import protocol
from repro.engine.remote.protocol import ConnectionClosed
from repro.exceptions import (
    InvalidResponseMatrixError,
    ProtocolError,
    RateLimitedError,
    SchemaError,
    ServeError,
    ServerOverloadedError,
)
from repro.serve.ratelimit import TokenBucket
from repro.serve.schema import (
    PROTOCOL_VERSION,
    RANK_OPS,
    ServeRequest,
    error_frame,
    ok_frame,
)

Frame = Tuple[str, Dict[str, object], Dict[str, np.ndarray]]


@dataclass
class ServeConfig:
    """Operational knobs of a :class:`CrowdServer`.

    Attributes
    ----------
    host, port:
        Bind address; port ``0`` picks an ephemeral port (read it back
        from ``server.port`` / the CLI's ``READY`` line).
    max_queue:
        Bound on solves dispatched-or-running at once; rank requests past
        it are rejected with the typed ``overloaded`` error.  Coalesced
        requests do not count against it.
    solver_threads:
        Worker threads executing flushes + solves.  Sessions serialize
        internally, so threads beyond the number of concurrently-active
        crowds buy nothing.
    rate, burst:
        Per-connection token-bucket rate limit (requests/s and bucket
        capacity).  ``rate=0`` disables limiting; ``burst=None`` defaults
        to one second of traffic.
    max_pending_answers:
        Per-crowd bound on buffered (acknowledged but not yet flushed)
        answers; appends past it are rejected ``overloaded``.
    max_sessions:
        Resident-crowd LRU bound, forwarded to
        :class:`~repro.api.manager.SessionManager` when the server builds
        its own manager.
    max_request_bytes:
        Per-frame payload cap for *this* endpoint (the transport's own
        2 GiB cap is a corruption guard, not an admission policy); larger
        frames drop the connection.
    execution:
        Default :class:`ExecutionPolicy` for crowds the server creates.
    cache_size:
        Per-crowd rank-cache capacity (session default when ``None``).
    store_dir:
        Optional durable-store directory.  When set (and the server
        builds its own manager), crowds and rankings persist to a
        :class:`~repro.store.SnapshotStore` there, persisted crowds
        re-register on startup, and the first post-restart rank of
        unchanged data is served from a snapshot — see the README's
        "Durable state" walkthrough.
    allow_shutdown:
        Whether the wire ``shutdown`` op stops the server (the remote
        worker's convention; disable for fleets where only the operator
        may stop the process).
    overload_retry_after:
        The ``retry_after`` hint on ``overloaded`` rejections — a backoff
        suggestion, not a reservation.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_queue: int = 32
    solver_threads: int = 4
    rate: float = 0.0
    burst: Optional[float] = None
    max_pending_answers: int = 1_000_000
    max_sessions: int = 64
    max_request_bytes: int = 256 << 20
    execution: Optional[ExecutionPolicy] = None
    cache_size: Optional[int] = None
    store_dir: Optional[str] = None
    allow_shutdown: bool = True
    overload_retry_after: float = 0.5

    def __post_init__(self) -> None:
        if int(self.max_queue) < 1:
            raise ValueError("max_queue must be >= 1, got %r" % (self.max_queue,))
        if int(self.solver_threads) < 1:
            raise ValueError(
                "solver_threads must be >= 1, got %r" % (self.solver_threads,)
            )
        if float(self.rate) < 0:
            raise ValueError("rate must be >= 0 (0 disables), got %r"
                             % (self.rate,))
        if int(self.max_pending_answers) < 1:
            raise ValueError(
                "max_pending_answers must be >= 1, got %r"
                % (self.max_pending_answers,)
            )
        self.max_queue = int(self.max_queue)
        self.solver_threads = int(self.solver_threads)
        self.max_pending_answers = int(self.max_pending_answers)


class ServerStats:
    """Monotonic serving counters, safe across the loop + solver threads."""

    _NAMES = (
        "connections",
        "requests",
        "errors",
        "protocol_errors",
        "appends",
        "answers_buffered",
        "flush_failures",
        "solves",
        "coalesced",
        "rate_limited",
        "overloaded",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {name: 0 for name in self._NAMES}

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] += amount

    def __getitem__(self, name: str) -> int:
        with self._lock:
            return self._counts[name]

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)


class _Crowd:
    """Server-side serving state of one resident crowd.

    The session itself lives in the manager; this wrapper adds what only
    the server needs: the pending append buffer (mutated on the event
    loop, drained by solver threads — hence the thread lock), the append
    ``epoch`` the coalescing key uses, and the in-flight solve table.
    """

    __slots__ = ("session", "pending", "pending_answers", "epoch",
                 "inflight", "lock")

    def __init__(self, session: CrowdSession) -> None:
        self.session = session
        self.pending: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self.pending_answers = 0
        self.epoch = 0
        self.inflight: Dict[Tuple, asyncio.Future] = {}
        self.lock = threading.Lock()


async def read_frame(reader: asyncio.StreamReader,
                     max_payload: Optional[int] = None) -> Frame:
    """Receive one frame from an asyncio stream.

    Same failure taxonomy as the blocking receiver: clean EOF between
    frames raises :class:`ConnectionClosed`, anything malformed raises
    :class:`~repro.exceptions.ProtocolError`.
    """
    try:
        prefix = await reader.readexactly(protocol.PREFIX_SIZE)
    except asyncio.IncompleteReadError as err:
        if not err.partial:
            raise ConnectionClosed("connection closed by peer") from err
        raise ProtocolError(
            "connection closed mid-frame (%d of %d prefix bytes missing)"
            % (protocol.PREFIX_SIZE - len(err.partial), protocol.PREFIX_SIZE)
        ) from err
    checksum, length = protocol.parse_prefix(prefix)
    if max_payload is not None and length > max_payload:
        raise ProtocolError(
            "frame payload of %d bytes exceeds this endpoint's %d-byte cap"
            % (length, max_payload)
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as err:
        raise ProtocolError(
            "connection closed mid-frame (%d of %d bytes missing)"
            % (length - len(err.partial), length)
        ) from err
    return protocol.decode_payload(payload, checksum)


async def write_frame(writer: asyncio.StreamWriter, frame: Frame) -> None:
    op, meta, arrays = frame
    writer.write(protocol.encode_message(op, meta, arrays))
    await writer.drain()


class CrowdServer:
    """Asyncio TCP server over a named-crowd :class:`SessionManager`.

    >>> server = CrowdServer(config=ServeConfig(port=0))
    >>> # async with server: ... (binds on enter, closes on exit)

    Use :meth:`start` / :meth:`aclose` (or the async context manager) from
    a running loop; :meth:`serve_forever` runs until the wire ``shutdown``
    op or :meth:`aclose`.
    """

    def __init__(
        self,
        manager: Optional[SessionManager] = None,
        *,
        config: Optional[ServeConfig] = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self._owned_store = None
        if manager is not None:
            self.manager = manager
        else:
            store = None
            if self.config.store_dir is not None:
                from repro.store import SnapshotStore

                store = SnapshotStore(self.config.store_dir)
                self._owned_store = store
            self.manager = SessionManager(
                max_sessions=self.config.max_sessions,
                execution=self.config.execution,
                cache_size=self.config.cache_size,
                store=store,
            )
        self.stats = ServerStats()
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._crowds: Dict[str, _Crowd] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._shutdown = asyncio.Event()
        self._active_solves = 0
        self._open_connections = 0
        self._started = time.monotonic()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "CrowdServer":
        if self._server is not None:
            return self
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.solver_threads,
            thread_name_prefix="repro-serve",
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        self._started = time.monotonic()
        return self

    async def aclose(self) -> None:
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            # Queued-but-unstarted solves are cancelled; a running solve
            # finishes (it holds a session lock and cannot be interrupted
            # safely mid-iteration).
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        store = getattr(self.manager, "store", None)
        if store is not None:
            # Drain the write-behind queue so a clean shutdown leaves every
            # computed snapshot on disk; only a store this server built is
            # closed (an injected manager may outlive us).
            store.flush()
            if store is self._owned_store:
                store.close()

    async def serve_forever(self) -> None:
        """Serve until the wire ``shutdown`` op (or :meth:`aclose`)."""
        await self.start()
        await self._shutdown.wait()
        await self.aclose()

    async def __aenter__(self) -> "CrowdServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.inc("connections")
        self._open_connections += 1
        bucket = (
            TokenBucket(self.config.rate, self.config.burst)
            if self.config.rate > 0 else None
        )
        try:
            while not self._shutdown.is_set():
                try:
                    op, meta, arrays = await read_frame(
                        reader, self.config.max_request_bytes
                    )
                except ConnectionClosed:
                    return
                except ProtocolError:
                    # The stream can no longer be trusted (bad magic, CRC
                    # mismatch, truncation): drop this connection only.
                    self.stats.inc("protocol_errors")
                    return
                frame = await self._handle_frame(op, meta, arrays, bucket)
                try:
                    await write_frame(writer, frame)
                except (ConnectionError, OSError):
                    return
                if frame[0] == "ok" and frame[1].get("op") == "shutdown":
                    self._shutdown.set()
                    return
        finally:
            self._open_connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _handle_frame(
        self,
        op: str,
        meta: Dict[str, object],
        arrays: Dict[str, np.ndarray],
        bucket: Optional[TokenBucket],
    ) -> Frame:
        self.stats.inc("requests")
        request: Optional[ServeRequest] = None
        try:
            request = ServeRequest.from_frame(op, meta, arrays)
            if bucket is not None:
                wait = bucket.try_acquire()
                if wait > 0.0:
                    self.stats.inc("rate_limited")
                    raise RateLimitedError(
                        "client exceeded %g requests/s (burst %g); retry in "
                        "%.3f s" % (bucket.rate, bucket.burst, wait),
                        retry_after=wait,
                    )
            return await self._dispatch(request)
        except Exception as error:  # every failure becomes a typed reply
            if not isinstance(error, ServeError):
                self.stats.inc("errors")
            return error_frame(error, request)

    # ------------------------------------------------------------------ #
    # Request dispatch
    # ------------------------------------------------------------------ #
    async def _dispatch(self, request: ServeRequest) -> Frame:
        op = request.op
        if op == "ping":
            return ok_frame(request, {"server": "repro.serve",
                                      "uptime": time.monotonic() - self._started})
        if op == "create":
            self.manager.create(
                request.crowd,
                exist_ok=request.exist_ok,
                num_items=request.num_items,
                num_options=request.num_options,
                num_users=request.num_users,
            )
            # Manager eviction may have displaced older crowds: drop their
            # serving state so the server does not pin evicted sessions.
            for name in [n for n in self._crowds if n not in self.manager]:
                del self._crowds[name]
            return ok_frame(request, {"resident": len(self.manager)})
        if op == "drop":
            dropped = self.manager.drop(request.crowd)
            self._crowds.pop(request.crowd, None)
            return ok_frame(request, {"dropped": dropped})
        if op == "list":
            return ok_frame(request, {"crowds": self.manager.describe()})
        if op == "stats":
            entry = self._entry(request.crowd)
            stats = dict(entry.session.stats())
            stats["pending_answers"] = entry.pending_answers
            stats["epoch"] = entry.epoch
            return ok_frame(request, {"stats": stats})
        if op == "server_stats":
            return ok_frame(request, {"stats": self.server_stats()})
        if op == "add_answers":
            return self._buffer_answers(request)
        if op in RANK_OPS:
            return await self._serve_rank(request)
        if op == "shutdown":
            if not self.config.allow_shutdown:
                raise SchemaError(
                    "the shutdown op is disabled on this server "
                    "(ServeConfig.allow_shutdown=False)"
                )
            return ok_frame(request)
        raise SchemaError("unhandled op %r" % op)  # pragma: no cover

    def _entry(self, name: str) -> _Crowd:
        """The serving state for crowd ``name`` (typed error if absent).

        Re-keyed by session identity: if the manager evicted and a client
        re-created the crowd, the stale buffer/epoch state must not leak
        into the new session.
        """
        session = self.manager.get(name)
        entry = self._crowds.get(name)
        if entry is None or entry.session is not session:
            entry = _Crowd(session)
            self._crowds[name] = entry
        return entry

    # ------------------------------------------------------------------ #
    # Appends: buffer on the loop, flush in the solve
    # ------------------------------------------------------------------ #
    def _buffer_answers(self, request: ServeRequest) -> Frame:
        entry = self._entry(request.crowd)
        users, items, options = request.answers
        batch = users.size
        with entry.lock:
            if entry.pending_answers + batch > self.config.max_pending_answers:
                self.stats.inc("overloaded")
                raise ServerOverloadedError(
                    "crowd %r has %d answers buffered (cap %d); rank to "
                    "flush, or retry later"
                    % (request.crowd, entry.pending_answers,
                       self.config.max_pending_answers),
                    retry_after=self.config.overload_retry_after,
                )
            # The arrays are views over the request payload; keeping them
            # keeps that one bytes object alive, which is exactly the
            # O(batch) cost micro-batching promises.
            entry.pending.append((users, items, options))
            entry.pending_answers += batch
            entry.epoch += 1
        self.stats.inc("appends")
        self.stats.inc("answers_buffered", batch)
        return ok_frame(request, {
            "buffered": batch,
            "pending_answers": entry.pending_answers,
            "epoch": entry.epoch,
        })

    def _flush(self, entry: _Crowd) -> None:
        """Drain the pending buffer into the session (solver thread).

        Batches passing the wire schema can still be *semantically* bad —
        an out-of-range item for the crowd's declared shape, or a user
        answering one item twice with different options.  Those surface
        at the session's own validation (append or materialization inside
        the rank that triggered the flush), typed ``bad_request`` on the
        triggering rank and counted in ``flush_failures``.  The buffer
        itself is drained either way (never retried forever), but per the
        :class:`CrowdSession` contract a *conflicting* answer already
        ingested poisons the crowd's materialization until the crowd is
        dropped and re-created — the server surfaces that state on every
        rank rather than guessing which answer to discard.
        """
        with entry.lock:
            batches = entry.pending
            entry.pending = []
            entry.pending_answers = 0
        try:
            for users, items, options in batches:
                entry.session.add_answers(users, items, options)
        except Exception:
            self.stats.inc("flush_failures")
            raise

    def _solve_sync(self, entry: _Crowd, request: ServeRequest):
        """Flush buffered appends, then solve — on a worker thread."""
        self._flush(entry)
        try:
            return entry.session.rank(
                request.method, warm_start=request.warm_start,
                **request.params
            )
        except InvalidResponseMatrixError:
            # Ingested (already-flushed) answers failed materialization:
            # count it with the flush failures — the request was fine,
            # the crowd's data is not.
            self.stats.inc("flush_failures")
            raise

    # ------------------------------------------------------------------ #
    # Ranks: single-flight coalescing onto executor solves
    # ------------------------------------------------------------------ #
    def _solve_key(self, request: ServeRequest) -> Optional[Tuple]:
        """The method-parameter half of the coalescing key.

        ``None`` — never coalesce — for nondeterministic configurations,
        mirroring the rank cache's bypass.  Raises :class:`SchemaError`
        for parameter *values* the method's constructor rejects (names
        were already validated by the wire schema).
        """
        try:
            ranker = REGISTRY.get(request.method).create(**request.params)
        except (TypeError, ValueError) as error:
            raise SchemaError(str(error)) from error
        return ranker_fingerprint(ranker)

    async def _serve_rank(self, request: ServeRequest) -> Frame:
        entry = self._entry(request.crowd)
        if request.warm_start:
            try:
                warm_start_fingerprint(request.method, request.params)
            except ValueError as error:
                raise SchemaError(str(error)) from error
        fingerprint = self._solve_key(request)
        key = (
            None if fingerprint is None
            else (entry.epoch, fingerprint, request.warm_start)
        )
        future = entry.inflight.get(key) if key is not None else None
        coalesced = future is not None
        if coalesced:
            self.stats.inc("coalesced")
        else:
            if self._active_solves >= self.config.max_queue:
                self.stats.inc("overloaded")
                raise ServerOverloadedError(
                    "solve queue is full (%d in flight, cap %d); retry later"
                    % (self._active_solves, self.config.max_queue),
                    retry_after=self.config.overload_retry_after,
                )
            self._active_solves += 1
            self.stats.inc("solves")
            future = asyncio.get_running_loop().run_in_executor(
                self._executor, self._solve_sync, entry, request
            )
            if key is not None:
                entry.inflight[key] = future

            def _finished(done_future, key=key, entry=entry) -> None:
                self._active_solves -= 1
                if key is not None:
                    entry.inflight.pop(key, None)

            future.add_done_callback(_finished)
        ranking = await future
        return self._rank_frame(request, ranking, coalesced)

    def _rank_frame(self, request: ServeRequest, ranking, coalesced: bool) -> Frame:
        meta: Dict[str, object] = {
            "method": ranking.method,
            "num_users": int(ranking.scores.size),
            "served": "coalesced" if coalesced else "computed",
        }
        iterations = ranking.diagnostics.get("iterations")
        if iterations is not None:
            meta["iterations"] = int(iterations)
        warm_mode = ranking.diagnostics.get("warm_start")
        if request.warm_start and warm_mode is not None:
            meta["warm_start"] = warm_mode
        if ranking.diagnostics.get("snapshot_hit"):
            # Served from the durable store (post-restart warm path): the
            # client — and the persistence benchmark — can tell a ~ms
            # snapshot replay from a fresh solve.
            meta["snapshot_hit"] = True
        if request.op == "top_k":
            top = ranking.top_users(request.count)
            arrays = {
                "users": np.asarray(top, dtype=np.int64),
                "scores": np.ascontiguousarray(ranking.scores[top]),
            }
        else:
            arrays = {"scores": np.ascontiguousarray(ranking.scores)}
        return ok_frame(request, meta, arrays)

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def server_stats(self) -> Dict[str, object]:
        """The ``server_stats`` payload — observability that never blocks.

        Built exclusively from lock-free reads and short-lock counters
        (the rank caches' own stats locks are never held across a solve),
        so this answers instantly even while every solver thread grinds.
        """
        cache = {"hits": 0, "misses": 0, "bypasses": 0, "disk_hits": 0}
        crowds = []
        for name, entry in list(self._crowds.items()):
            if name not in self.manager:
                continue
            for key, value in entry.session.cache.stats().items():
                if key in cache:
                    cache[key] += value
            crowds.append({
                "name": name,
                "num_answers": entry.session.num_answers,
                "pending_answers": entry.pending_answers,
                "epoch": entry.epoch,
                "inflight": len(entry.inflight),
            })
        lookups = cache["hits"] + cache["misses"]
        cache["hit_rate"] = cache["hits"] / lookups if lookups else 0.0
        store = getattr(self.manager, "store", None)
        store_stats = store.stats() if store is not None else None
        return {
            "v": PROTOCOL_VERSION,
            "counters": self.stats.snapshot(),
            "queue": {
                "active_solves": self._active_solves,
                "max_queue": self.config.max_queue,
                "solver_threads": self.config.solver_threads,
                "open_connections": self._open_connections,
            },
            "sessions": self.manager.stats(),
            "cache": cache,
            "store": store_stats,
            "crowds": crowds,
            "uptime": time.monotonic() - self._started,
        }
