"""Versioned wire schema for the ``repro.serve`` protocol.

One request or response is one frame of the remote backend's transport
(:mod:`repro.engine.remote.protocol`: ``MAGIC | crc32 | length | payload``,
payload = JSON header + raw array buffers).  This module is the *meaning*
of those frames — typed dataclasses plus validation — and deliberately
knows nothing about sockets, so the whole schema is testable from plain
``(op, meta, arrays)`` triples:

* a **request** frame's op is the operation name (:data:`OPS`); its JSON
  meta carries ``v`` (the protocol version — mandatory, checked first),
  the crowd name, and the per-op fields; answer batches travel as int64
  array buffers (``users`` / ``items`` / ``options``), never as JSON
  lists, so a million-answer append costs no JSON parsing.
* a **response** frame's op is ``"ok"`` or ``"error"``; error metas carry
  the stable ``code`` of the :class:`~repro.exceptions.ServeError`
  taxonomy plus prose (and ``retry_after`` for the throttling codes).

Every validation failure raises :class:`~repro.exceptions.SchemaError`
naming the offending field.  Unknown *operations* get a did-you-mean hint
over :data:`OPS`; unknown ranking *methods* are resolved through the
ranker registry, so its did-you-mean prose (and the supervised-method
rejection) reaches the wire unchanged.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.registry import REGISTRY
from repro.exceptions import SchemaError, ServeError

#: Protocol version this build speaks.  Versioning is strict equality for
#: now: there is exactly one deployed version, and a silent best-effort
#: parse of a future frame would be worse than a typed rejection.
PROTOCOL_VERSION = 1

#: The request surface.  ``shutdown`` mirrors the remote worker's op of
#: the same name (harnesses stop the server over its own protocol).
OPS = (
    "ping",
    "create",
    "drop",
    "list",
    "add_answers",
    "rank",
    "top_k",
    "stats",
    "server_stats",
    "shutdown",
)

#: Ops that operate on one named crowd (``crowd`` is mandatory).
CROWD_OPS = ("create", "drop", "add_answers", "rank", "top_k", "stats")

#: Ops that request a solve — the ones the server rate-budgets hardest.
RANK_OPS = ("rank", "top_k")

#: JSON-scalar types a ranking-method parameter may carry on the wire.
_SCALAR = (bool, int, float, str, type(None))


def _field(meta: Dict[str, object], name: str, types, *, required: bool = False,
           default=None, label: str = "") -> object:
    """Fetch + type-check one meta field; :class:`SchemaError` otherwise."""
    value = meta.get(name, None)
    if value is None:
        if required:
            raise SchemaError("request field %r is required%s"
                              % (name, (" for op %r" % label) if label else ""))
        return default
    type_tuple = types if isinstance(types, tuple) else (types,)
    # bool is an int subclass in JSON-land too; only accept it when asked.
    if not isinstance(value, type_tuple) or (
        isinstance(value, bool) and bool not in type_tuple
    ):
        raise SchemaError(
            "request field %r must be %s, got %r"
            % (name, "/".join(t.__name__ for t in type_tuple), value)
        )
    return value


def _int_field(meta, name, *, required=False, default=None, minimum=None,
               label=""):
    value = _field(meta, name, int, required=required, default=default,
                   label=label)
    if value is not None and minimum is not None and value < minimum:
        raise SchemaError("request field %r must be >= %d, got %d"
                          % (name, minimum, value))
    return value


def _answer_arrays(
    arrays: Dict[str, np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate the three answer buffers of an ``add_answers`` request.

    Structural checks only (present, integer, equal length, non-negative):
    range checks against the crowd's item/option counts belong to the
    session's own ``from_triples`` validation at materialization.
    """
    out = []
    length = None
    for name in ("users", "items", "options"):
        array = arrays.get(name)
        if array is None:
            raise SchemaError(
                "add_answers needs the %r array buffer (int64 answer column)"
                % name
            )
        array = np.asarray(array)
        if array.ndim != 1 or array.dtype.kind not in "iu":
            raise SchemaError(
                "add_answers array %r must be a 1-D integer array, got "
                "dtype %s shape %s" % (name, array.dtype, array.shape)
            )
        if length is None:
            length = array.size
        elif array.size != length:
            raise SchemaError(
                "add_answers arrays must have equal length (users has %d, "
                "%s has %d)" % (length, name, array.size)
            )
        array = array.astype(np.int64, copy=False)
        if array.size and int(array.min()) < 0:
            raise SchemaError(
                "add_answers array %r contains negative indices" % name
            )
        out.append(array)
    return tuple(out)


def _validate_method(method: str, params: Dict[str, object]) -> None:
    """Resolve ``method`` through the ranker registry, typed for the wire.

    A typo'd method name surfaces the registry's did-you-mean hint; a
    supervised baseline is rejected exactly like the CLI rejects it; a
    typo'd *parameter* name surfaces the registry's parameter hint.
    """
    try:
        spec = REGISTRY.get(method)
    except KeyError as error:
        raise SchemaError(error.args[0]) from error
    if spec.supervised:
        raise SchemaError(
            "method %r is a supervised (cheating) baseline and needs ground "
            "truth; serving methods: %s"
            % (spec.name, ", ".join(sorted(REGISTRY.names(supervised=False))))
        )
    try:
        spec.validate_params(params)
    except TypeError as error:
        raise SchemaError(str(error)) from error


@dataclass(frozen=True)
class ServeRequest:
    """One parsed, validated request.

    Construct via :meth:`from_frame` (server side) or the keyword
    constructor + :meth:`frame` (client side); both ends share the same
    validation, so a client cannot emit a frame the server would reject
    on schema grounds.
    """

    op: str
    crowd: Optional[str] = None
    request_id: Optional[Union[int, str]] = None
    # create
    num_items: Optional[int] = None
    num_options: Optional[Union[int, Tuple[int, ...]]] = None
    num_users: Optional[int] = None
    exist_ok: bool = False
    # add_answers — three equal-length int64 arrays (users, items, options)
    answers: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
    # rank / top_k
    method: str = "HnD"
    params: Dict[str, object] = field(default_factory=dict)
    warm_start: bool = False
    count: Optional[int] = None

    @classmethod
    def from_frame(
        cls,
        op: str,
        meta: Dict[str, object],
        arrays: Dict[str, np.ndarray],
    ) -> "ServeRequest":
        """Parse + validate one received frame into a request."""
        if not isinstance(meta, dict):
            raise SchemaError("request meta must be a JSON object, got %r"
                              % type(meta).__name__)
        version = meta.get("v")
        if version != PROTOCOL_VERSION:
            raise SchemaError(
                "unsupported protocol version %r (this server speaks v%d)"
                % (version, PROTOCOL_VERSION)
            )
        if op not in OPS:
            close = difflib.get_close_matches(str(op), OPS, n=3, cutoff=0.4)
            hint = ("; did you mean %s?"
                    % " or ".join(repr(c) for c in close) if close else "")
            raise SchemaError(
                "unknown op %r%s (ops: %s)" % (op, hint, ", ".join(OPS))
            )
        request_id = _field(meta, "id", (int, str))
        crowd = _field(meta, "crowd", str, required=op in CROWD_OPS, label=op)

        if op == "create":
            num_options = meta.get("num_options")
            if num_options is not None:
                if isinstance(num_options, int) and not isinstance(num_options, bool):
                    pass
                elif isinstance(num_options, (list, tuple)) and all(
                    isinstance(k, int) and not isinstance(k, bool)
                    for k in num_options
                ):
                    num_options = tuple(num_options)
                else:
                    raise SchemaError(
                        "request field 'num_options' must be an int or a "
                        "list of ints, got %r" % (num_options,)
                    )
            return cls(
                op=op, crowd=crowd, request_id=request_id,
                num_items=_int_field(meta, "num_items", minimum=1),
                num_options=num_options,
                num_users=_int_field(meta, "num_users", minimum=0),
                exist_ok=bool(_field(meta, "exist_ok", bool, default=False)),
            )

        if op == "add_answers":
            return cls(op=op, crowd=crowd, request_id=request_id,
                       answers=_answer_arrays(arrays))

        if op in RANK_OPS:
            method = _field(meta, "method", str, default="HnD")
            params = _field(meta, "params", dict, default={})
            for name, value in params.items():
                if not isinstance(name, str) or not isinstance(value, _SCALAR):
                    raise SchemaError(
                        "method parameter %r must map a string name to a "
                        "JSON scalar, got %r" % (name, value)
                    )
            _validate_method(method, params)
            count = _int_field(meta, "count", required=op == "top_k",
                               minimum=1, label=op)
            return cls(
                op=op, crowd=crowd, request_id=request_id,
                method=method, params=dict(params),
                warm_start=bool(_field(meta, "warm_start", bool, default=False)),
                count=count,
            )

        # ping / drop / list / stats / server_stats / shutdown: no payload
        return cls(op=op, crowd=crowd, request_id=request_id)

    def frame(self) -> Tuple[str, Dict[str, object], Dict[str, np.ndarray]]:
        """Encode this request as an ``(op, meta, arrays)`` frame triple."""
        meta: Dict[str, object] = {"v": PROTOCOL_VERSION}
        if self.request_id is not None:
            meta["id"] = self.request_id
        if self.crowd is not None:
            meta["crowd"] = self.crowd
        arrays: Dict[str, np.ndarray] = {}
        if self.op == "create":
            for name in ("num_items", "num_users"):
                value = getattr(self, name)
                if value is not None:
                    meta[name] = int(value)
            if self.num_options is not None:
                meta["num_options"] = (
                    int(self.num_options)
                    if isinstance(self.num_options, int)
                    else [int(k) for k in self.num_options]
                )
            if self.exist_ok:
                meta["exist_ok"] = True
        elif self.op == "add_answers":
            if self.answers is None:
                raise SchemaError("add_answers request carries no answers")
            users, items, options = self.answers
            arrays = {
                "users": np.asarray(users, dtype=np.int64),
                "items": np.asarray(items, dtype=np.int64),
                "options": np.asarray(options, dtype=np.int64),
            }
        elif self.op in RANK_OPS:
            meta["method"] = self.method
            if self.params:
                meta["params"] = dict(self.params)
            if self.warm_start:
                meta["warm_start"] = True
            if self.count is not None:
                meta["count"] = int(self.count)
        return self.op, meta, arrays


@dataclass(frozen=True)
class ServeResponse:
    """One parsed response: either a result or a typed error.

    ``ok`` responses carry the per-op result fields in ``meta`` and any
    bulk output (scores, top-user indices) in ``arrays``; ``error``
    responses carry the taxonomy ``code``, the prose ``message``, and —
    for the throttling codes — a ``retry_after`` hint in seconds.
    """

    ok: bool
    meta: Dict[str, object] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    code: Optional[str] = None
    message: Optional[str] = None
    retry_after: Optional[float] = None

    @property
    def request_id(self) -> Optional[Union[int, str]]:
        return self.meta.get("id")

    @classmethod
    def from_frame(
        cls,
        op: str,
        meta: Dict[str, object],
        arrays: Dict[str, np.ndarray],
    ) -> "ServeResponse":
        if op == "ok":
            return cls(ok=True, meta=meta, arrays=arrays)
        if op == "error":
            retry_after = meta.get("retry_after")
            return cls(
                ok=False, meta=meta,
                code=str(meta.get("code", "error")),
                message=str(meta.get("message", "")),
                retry_after=None if retry_after is None else float(retry_after),
            )
        raise SchemaError("response frames are 'ok' or 'error', got %r" % op)

    def frame(self) -> Tuple[str, Dict[str, object], Dict[str, np.ndarray]]:
        if self.ok:
            return "ok", self.meta, self.arrays
        meta = dict(self.meta)
        meta["code"] = self.code or "error"
        meta["message"] = self.message or ""
        if self.retry_after is not None:
            meta["retry_after"] = float(self.retry_after)
        return "error", meta, {}


def ok_frame(
    request: Optional[ServeRequest],
    meta: Optional[Dict[str, object]] = None,
    arrays: Optional[Dict[str, np.ndarray]] = None,
) -> Tuple[str, Dict[str, object], Dict[str, np.ndarray]]:
    """An ``ok`` response frame echoing the request's id and op."""
    out: Dict[str, object] = {"v": PROTOCOL_VERSION}
    if request is not None:
        out["op"] = request.op
        if request.request_id is not None:
            out["id"] = request.request_id
    out.update(meta or {})
    return "ok", out, dict(arrays or {})


def error_frame(
    error: Exception,
    request: Optional[ServeRequest] = None,
) -> Tuple[str, Dict[str, object], Dict[str, np.ndarray]]:
    """An ``error`` response frame for any exception a request raised.

    :class:`~repro.exceptions.ServeError` subclasses put their stable
    ``code`` (and ``retry_after``, when they carry one) on the wire;
    everything else maps to a coarse code so a client can at least tell a
    bad request from a server-side failure.  The exception class name
    rides along as ``etype`` for debugging, mirroring the remote worker's
    error replies.
    """
    from repro.exceptions import EngineError, InvalidResponseMatrixError

    meta: Dict[str, object] = {"v": PROTOCOL_VERSION}
    if request is not None:
        meta["op"] = request.op
        if request.request_id is not None:
            meta["id"] = request.request_id
    if isinstance(error, ServeError):
        meta["code"] = error.code
        retry_after = getattr(error, "retry_after", None)
        if retry_after is not None:
            meta["retry_after"] = float(retry_after)
    elif isinstance(error, (InvalidResponseMatrixError, ValueError, TypeError,
                            KeyError)):
        meta["code"] = "bad_request"
    elif isinstance(error, EngineError):
        meta["code"] = "engine_error"
    else:
        meta["code"] = "internal"
    meta["message"] = (error.args[0] if isinstance(error, KeyError)
                       and error.args else str(error))
    meta["etype"] = type(error).__name__
    return "error", meta, {}
