"""Blocking client for a :class:`~repro.serve.server.CrowdServer`.

One :class:`ServeClient` is one TCP connection speaking the serve schema
over the framed transport — the counterpart the CI smoke test, the
benchmark harness, and user scripts drive.  It is deliberately *blocking*
(plain sockets, no asyncio): serving clients are usually load generators,
notebooks, or worker processes, and a synchronous call-per-request surface
is what those want.  Drive concurrency with threads or many clients — the
server multiplexes connections; one client multiplexing requests would
re-implement the server's job badly.

Error replies hydrate back into the same typed exceptions the server
raised, keyed on the wire ``code`` — so ``client.rank(...)`` raises
:class:`~repro.exceptions.RateLimitedError` with its ``retry_after``
exactly as server-side code would see it, and retry loops are written
against exception types, not string matching.

>>> with ServeClient("127.0.0.1", port) as client:   # doctest: +SKIP
...     client.create("quiz", num_items=100, num_options=4)
...     client.add_answers("quiz", users, items, options)
...     scores = client.rank("quiz", "HnD", random_state=0)
"""

from __future__ import annotations

import dataclasses
import socket
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.remote import protocol
from repro.exceptions import (
    CrowdExistsError,
    EngineError,
    RateLimitedError,
    SchemaError,
    ServeError,
    ServerOverloadedError,
    UnknownCrowdError,
)
from repro.serve.schema import ServeRequest, ServeResponse

#: Wire code -> the exception a failed call raises client-side.  Codes
#: outside the taxonomy (``engine_error``, ``internal``, future additions)
#: fall back to the :class:`ServeError` base so callers can still catch
#: everything serving-related in one clause.
_CODE_TO_ERROR = {
    "bad_request": SchemaError,
    "unknown_crowd": UnknownCrowdError,
    "crowd_exists": CrowdExistsError,
    "rate_limited": RateLimitedError,
    "overloaded": ServerOverloadedError,
}


def raise_for_response(response: ServeResponse) -> ServeResponse:
    """Hydrate an ``error`` response into its typed exception; pass ``ok``."""
    if response.ok:
        return response
    message = response.message or "server error"
    code = response.code or "error"
    cls = _CODE_TO_ERROR.get(code)
    if cls in (RateLimitedError, ServerOverloadedError):
        raise cls(message, retry_after=response.retry_after)
    if cls is not None:
        raise cls(message)
    if code == "engine_error":
        raise EngineError(message)
    error = ServeError(message)
    error.code = code
    raise error


class ServeClient:
    """One blocking connection to a serving endpoint.

    Parameters
    ----------
    host, port:
        The server's bind address (the CLI prints both on its ``READY``
        line).
    timeout:
        Socket timeout in seconds for connect and each reply (``None``
        waits forever — fine for a harness, unwise for production).
    """

    def __init__(self, host: str, port: int, *,
                 timeout: Optional[float] = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self._sock = socket.create_connection((host, self.port),
                                              timeout=timeout)
        self._requests = 0

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def call(self, request: ServeRequest) -> ServeResponse:
        """Send one request, wait for its reply, raise typed errors."""
        if request.request_id is None:
            self._requests += 1
            request = dataclasses.replace(request, request_id=self._requests)
        op, meta, arrays = request.frame()
        protocol.send_message(self._sock, op, meta, arrays)
        reply_op, reply_meta, reply_arrays = protocol.recv_message(self._sock)
        return raise_for_response(
            ServeResponse.from_frame(reply_op, reply_meta, reply_arrays)
        )

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Convenience surface (one method per wire op)
    # ------------------------------------------------------------------ #
    def ping(self) -> Dict[str, object]:
        return self.call(ServeRequest(op="ping")).meta

    def create(
        self,
        crowd: str,
        *,
        num_items: Optional[int] = None,
        num_options: Optional[Union[int, Sequence[int]]] = None,
        num_users: Optional[int] = None,
        exist_ok: bool = False,
    ) -> Dict[str, object]:
        return self.call(ServeRequest(
            op="create", crowd=crowd, num_items=num_items,
            num_options=(tuple(num_options)
                         if isinstance(num_options, (list, tuple))
                         else num_options),
            num_users=num_users, exist_ok=exist_ok,
        )).meta

    def drop(self, crowd: str) -> bool:
        return bool(self.call(ServeRequest(op="drop", crowd=crowd))
                    .meta.get("dropped"))

    def list(self) -> Tuple[Dict[str, object], ...]:
        return tuple(self.call(ServeRequest(op="list")).meta.get("crowds", ()))

    def add_answers(self, crowd: str, users, items, options) -> Dict[str, object]:
        """Buffer a batch of answers; returns the server's buffering ack."""
        answers = (
            np.asarray(users, dtype=np.int64),
            np.asarray(items, dtype=np.int64),
            np.asarray(options, dtype=np.int64),
        )
        return self.call(ServeRequest(op="add_answers", crowd=crowd,
                                      answers=answers)).meta

    def rank(self, crowd: str, method: str = "HnD", *,
             warm_start: bool = False, **params) -> "RankResult":
        response = self.call(ServeRequest(
            op="rank", crowd=crowd, method=method,
            params=params, warm_start=warm_start,
        ))
        return RankResult(response)

    def top_k(self, crowd: str, count: int, method: str = "HnD", *,
              warm_start: bool = False, **params) -> "RankResult":
        response = self.call(ServeRequest(
            op="top_k", crowd=crowd, method=method, count=int(count),
            params=params, warm_start=warm_start,
        ))
        return RankResult(response)

    def stats(self, crowd: str) -> Dict[str, object]:
        return dict(self.call(ServeRequest(op="stats", crowd=crowd))
                    .meta.get("stats", {}))

    def server_stats(self) -> Dict[str, object]:
        return dict(self.call(ServeRequest(op="server_stats"))
                    .meta.get("stats", {}))

    def shutdown(self) -> None:
        """Ask the server to stop (it replies ``ok``, then exits its loop)."""
        self.call(ServeRequest(op="shutdown"))


class RankResult:
    """A rank/top_k reply: score arrays plus serving diagnostics."""

    def __init__(self, response: ServeResponse) -> None:
        self.meta = response.meta
        self.scores: np.ndarray = response.arrays.get(
            "scores", np.empty(0, dtype=float))
        #: Only on ``top_k`` replies: the selected user indices, best first.
        self.users: Optional[np.ndarray] = response.arrays.get("users")
        self.method: str = str(response.meta.get("method", ""))
        #: ``"computed"`` if this reply's solve ran for it, ``"coalesced"``
        #: if it shared another request's in-flight solve.
        self.served: str = str(response.meta.get("served", ""))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "RankResult(method=%r, served=%r, num_users=%d)" % (
            self.method, self.served, self.scores.size,
        )
