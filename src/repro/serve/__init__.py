"""``repro.serve`` — the async serving front end over named crowds.

An asyncio TCP server (:class:`CrowdServer`) hosting many
:class:`~repro.api.session.CrowdSession` crowds behind a
:class:`~repro.api.manager.SessionManager`, speaking the framed protocol
of the remote backend with the versioned request schema of
:mod:`repro.serve.schema`.  The serving mechanics — micro-batched
appends, single-flight rank coalescing, token-bucket rate limiting,
bounded-queue backpressure — live in :mod:`repro.serve.server`;
:class:`ServeClient` is the blocking counterpart.

Start a server from the CLI::

    python -m repro.cli serve --port 8642

and talk to it::

    from repro.serve import ServeClient
    with ServeClient("127.0.0.1", 8642) as client:
        client.create("quiz", num_items=100, num_options=4)
        client.add_answers("quiz", users, items, options)
        result = client.rank("quiz", "HnD", random_state=0)
"""

from repro.serve.client import RankResult, ServeClient, raise_for_response
from repro.serve.ratelimit import TokenBucket
from repro.serve.schema import (
    OPS,
    PROTOCOL_VERSION,
    ServeRequest,
    ServeResponse,
    error_frame,
    ok_frame,
)
from repro.serve.server import CrowdServer, ServeConfig, ServerStats

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "ServeRequest",
    "ServeResponse",
    "ok_frame",
    "error_frame",
    "TokenBucket",
    "CrowdServer",
    "ServeConfig",
    "ServerStats",
    "ServeClient",
    "RankResult",
    "raise_for_response",
]
