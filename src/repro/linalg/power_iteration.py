"""Power iteration with convergence tracking.

Both HND-power (Algorithm 1) and ABH-power (Algorithm 2) are power
iterations whose matrix-vector product is expressed as a sequence of cheap
sparse products rather than a materialized matrix.  The generic driver here
accepts either an explicit matrix or an arbitrary ``matvec`` callable, uses
the L2 norm of the iterate change as its convergence criterion (the paper
uses a tolerance of ``1e-5``), and reports the number of iterations — the
quantity analysed in Figure 14b of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConvergenceError
from repro.linalg.normalize import l2_normalize

DEFAULT_TOLERANCE = 1e-5
DEFAULT_MAX_ITERATIONS = 10_000


@dataclass(frozen=True)
class PowerIterationResult:
    """Outcome of a power iteration run.

    Attributes
    ----------
    vector:
        The converged (unit-norm) dominant eigenvector estimate.
    eigenvalue:
        Rayleigh-quotient estimate of the dominant eigenvalue.
    iterations:
        Number of iterations actually performed.
    converged:
        Whether the change between successive iterates fell below the
        tolerance before the iteration budget ran out.
    residual:
        L2 norm of the final change between iterates.
    """

    vector: np.ndarray
    eigenvalue: float
    iterations: int
    converged: bool
    residual: float


def _as_matvec(
    operator: Union[np.ndarray, sp.spmatrix, Callable[[np.ndarray], np.ndarray]],
) -> Callable[[np.ndarray], np.ndarray]:
    """Wrap a matrix (dense or sparse) or callable into a matvec callable."""
    if callable(operator) and not sp.issparse(operator) and not isinstance(operator, np.ndarray):
        return operator
    matrix = operator

    def matvec(vector: np.ndarray) -> np.ndarray:
        return np.asarray(matrix @ vector).ravel()

    return matvec


def power_iteration_matvec(
    matvec: Callable[[np.ndarray], np.ndarray],
    size: int,
    *,
    initial: Optional[np.ndarray] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    raise_on_failure: bool = False,
    random_state: Optional[Union[int, np.random.Generator]] = None,
) -> PowerIterationResult:
    """Run the power method on an operator given only as a ``matvec``.

    Parameters
    ----------
    matvec:
        Callable computing ``A @ v`` for the implicit operator ``A``.
    size:
        Dimension of the vectors ``A`` acts on.
    initial:
        Starting vector.  A random vector is drawn when omitted.
    tolerance:
        Convergence threshold on the L2 norm of the iterate change
        (the paper's criterion, default ``1e-5``).
    max_iterations:
        Iteration budget.
    raise_on_failure:
        When True, raise :class:`ConvergenceError` instead of returning a
        non-converged result.
    random_state:
        Seed or generator for the random initial vector.

    Returns
    -------
    PowerIterationResult
    """
    if size < 1:
        raise ValueError("power iteration needs size >= 1")
    rng = np.random.default_rng(random_state)
    if initial is None:
        vector = rng.standard_normal(size)
    else:
        vector = np.asarray(initial, dtype=float).copy()
        if vector.shape != (size,):
            raise ValueError(
                "initial vector has shape %s, expected (%d,)" % (vector.shape, size)
            )
    vector = l2_normalize(vector)
    if not np.any(vector):
        vector = l2_normalize(np.ones(size))

    residual = np.inf
    eigenvalue = 0.0
    iterations = 0
    converged = False
    # Fixed buffer set reused across iterations: the matvec output is copied
    # into an internal double buffer immediately, so the driver never holds a
    # reference to matvec-owned memory across iterations (a matvec may reuse
    # a retained buffer, or return a read-only view) and all normalization /
    # sign alignment runs in place with no per-iteration allocations.  The
    # matvec must not mutate its input vector — the Rayleigh quotient below
    # needs the pre-update iterate.
    scratch = np.empty(size, dtype=float)
    buffers = (np.empty(size, dtype=float), np.empty(size, dtype=float))
    for iterations in range(1, max_iterations + 1):
        raw = np.asarray(matvec(vector), dtype=float).ravel()
        product = buffers[iterations % 2]
        np.copyto(product, raw)
        eigenvalue = float(np.dot(vector, product))
        norm = float(np.linalg.norm(product))
        if norm == 0.0:
            # The operator annihilated the iterate; restart from a fresh
            # random direction rather than silently returning zeros.
            np.copyto(product, l2_normalize(rng.standard_normal(size)))
        else:
            product /= norm
        # Eigenvectors are defined up to sign; align before measuring change.
        if np.dot(product, vector) < 0:
            np.negative(product, out=product)
        np.subtract(product, vector, out=scratch)
        residual = float(np.linalg.norm(scratch))
        vector = product
        if residual < tolerance:
            converged = True
            break
        if not np.isfinite(residual):
            # Residual blow-up: the iterate left the representable range
            # (e.g. a poisoned warm-start vector).  Burning the rest of the
            # budget cannot recover — report non-convergence immediately so
            # warm-start callers can fall back to a cold solve.
            break

    if not converged and raise_on_failure:
        raise ConvergenceError(
            "power iteration did not converge in %d iterations (residual %.3g)"
            % (max_iterations, residual),
            iterations=iterations,
            residual=residual,
        )
    return PowerIterationResult(
        vector=vector,
        eigenvalue=eigenvalue,
        iterations=iterations,
        converged=converged,
        residual=residual,
    )


def power_iteration(
    matrix: Union[np.ndarray, sp.spmatrix],
    *,
    initial: Optional[np.ndarray] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    raise_on_failure: bool = False,
    random_state: Optional[Union[int, np.random.Generator]] = None,
) -> PowerIterationResult:
    """Run the power method on an explicit (dense or sparse) square matrix."""
    shape = matrix.shape
    if len(shape) != 2 or shape[0] != shape[1]:
        raise ValueError("power_iteration expects a square matrix, got shape %s" % (shape,))
    return power_iteration_matvec(
        _as_matvec(matrix),
        shape[0],
        initial=initial,
        tolerance=tolerance,
        max_iterations=max_iterations,
        raise_on_failure=raise_on_failure,
        random_state=random_state,
    )
