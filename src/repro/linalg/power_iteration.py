"""Power iteration with convergence tracking and opt-in momentum acceleration.

Both HND-power (Algorithm 1) and ABH-power (Algorithm 2) are power
iterations whose matrix-vector product is expressed as a sequence of cheap
sparse products rather than a materialized matrix.  The generic driver here
accepts either an explicit matrix or an arbitrary ``matvec`` callable, uses
the L2 norm of the iterate change as its convergence criterion (the paper
uses a tolerance of ``1e-5``), and reports the number of iterations — the
quantity analysed in Figure 14b of the paper.

Two capabilities sit on top of the classic loop, both off by default:

* **Momentum acceleration** (``acceleration="momentum"``): the heavy-ball /
  Chebyshev-momentum three-term recurrence ``w_{t+1} = A w_t - beta
  w_{t-1}`` with ``beta`` estimated adaptively from the observed residual
  contraction (the optimal ``beta`` is ``mu^2 / 4`` for sub-dominant
  eigenvalue ``mu``).  Momentum changes the float trajectory, so it is
  opt-in and callers gate it behind a ranking-equivalence contract (see
  :func:`repro.core.hitsndiffs.hnd_power_solve`).  With ``acceleration``
  unset the loop is arithmetically identical, op for op, to the plain
  driver — bit-identity pins on the unaccelerated path are unaffected.
* **Chunked execution** (:class:`PowerIterationDriver`): the loop state is
  a small, serializable set of arrays and scalars, so a solve can advance
  in bounded chunks — possibly in another process or on a remote worker —
  and produce the same bits as one uninterrupted run.  This is what the
  engine backends' batched-iteration dispatch is built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConvergenceError
from repro.linalg.normalize import l2_normalize

DEFAULT_TOLERANCE = 1e-5
DEFAULT_MAX_ITERATIONS = 10_000

#: Plain iterations run before momentum engages: the residual-contraction
#: ratio (which estimates the sub-dominant/dominant eigenvalue ratio, the
#: quantity the optimal momentum coefficient depends on) needs a few
#: transient-free samples to be meaningful.
MOMENTUM_WARMUP = 10

#: Accelerated iterations between re-estimation bursts.  The warm-up
#: estimate is biased low on ill-conditioned problems (the early
#: contraction is still transient-dominated), so ``beta`` is periodically
#: re-fit from a short burst of plain iterations deeper in the run.
MOMENTUM_REESTIMATE_EVERY = 30

#: Plain iterations per re-estimation burst.  Plain contraction of a mixed
#: error is bounded above by the true sub-dominant ratio, so burst
#: estimates approach the optimal coefficient from below — they can refine
#: ``beta`` in either direction but cannot systematically overshoot the
#: critical value the way contraction ratios measured *under* momentum can
#: (past critical, the accelerated contraction rate is independent of the
#: sub-dominant eigenvalue, so overshoot is invisible from inside the
#: accelerated regime).
MOMENTUM_BURST = 5

#: Accepted values of the ``acceleration`` knob.
ACCELERATIONS = (None, "momentum")


@dataclass(frozen=True)
class PowerIterationResult:
    """Outcome of a power iteration run.

    Attributes
    ----------
    vector:
        The converged (unit-norm) dominant eigenvector estimate.
    eigenvalue:
        Rayleigh-quotient estimate of the dominant eigenvalue.
    iterations:
        Number of iterations actually performed.
    converged:
        Whether the change between successive iterates fell below the
        tolerance before the iteration budget ran out.
    residual:
        L2 norm of the final change between iterates.
    acceleration:
        The acceleration scheme the run actually used: ``"none"`` or
        ``"momentum"`` (callers that fall back from a diverged accelerated
        attempt re-label the plain rerun, e.g. ``"fallback-plain"``).
    """

    vector: np.ndarray
    eigenvalue: float
    iterations: int
    converged: bool
    residual: float
    acceleration: str = "none"


def _as_matvec(
    operator: Union[np.ndarray, sp.spmatrix, Callable[[np.ndarray], np.ndarray]],
) -> Callable[[np.ndarray], np.ndarray]:
    """Wrap a matrix (dense or sparse) or callable into a matvec callable."""
    if callable(operator) and not sp.issparse(operator) and not isinstance(operator, np.ndarray):
        return operator
    matrix = operator

    def matvec(vector: np.ndarray) -> np.ndarray:
        return np.asarray(matrix @ vector).ravel()

    return matvec


class PowerIterationDriver:
    """Resumable power-iteration loop: advance in chunks, serialize state.

    The classic driver (:func:`power_iteration_matvec`) is a thin wrapper
    that constructs one of these and runs it to completion.  The engine
    backends instead advance the driver ``iteration_batch`` steps at a
    time — exporting the state, running the chunk wherever the data lives,
    and restoring the state — which produces **the same bits as one
    uninterrupted run** because the exported state is complete: the
    iterate, the momentum recurrence terms, the convergence bookkeeping,
    and the generator state used for zero-norm restarts.

    Parameters match :func:`power_iteration_matvec`; ``acceleration`` is
    ``None`` (the plain loop, arithmetically identical to the pre-driver
    implementation) or ``"momentum"`` (adaptive heavy-ball, see the module
    docstring).
    """

    def __init__(
        self,
        matvec: Callable[[np.ndarray], np.ndarray],
        size: int,
        *,
        initial: Optional[np.ndarray] = None,
        tolerance: float = DEFAULT_TOLERANCE,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        random_state: Optional[Union[int, np.random.Generator]] = None,
        acceleration: Optional[str] = None,
    ) -> None:
        if size < 1:
            raise ValueError("power iteration needs size >= 1")
        if acceleration not in ACCELERATIONS:
            raise ValueError(
                "unknown acceleration %r (choose from %s)"
                % (acceleration,
                   ", ".join(repr(name) for name in ACCELERATIONS))
            )
        self.matvec = matvec
        self.size = int(size)
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)
        self.acceleration = acceleration
        self._rng = np.random.default_rng(random_state)
        if initial is None:
            vector = self._rng.standard_normal(size)
        else:
            vector = np.asarray(initial, dtype=float).copy()
            if vector.shape != (size,):
                raise ValueError(
                    "initial vector has shape %s, expected (%d,)"
                    % (vector.shape, size)
                )
        vector = l2_normalize(vector)
        if not np.any(vector):
            vector = l2_normalize(np.ones(size))
        self.vector = vector
        self.eigenvalue = 0.0
        self.residual = np.inf
        self.iterations = 0
        self.converged = False
        self._blown_up = False
        # Momentum recurrence state (inert when acceleration is None).
        self._previous: Optional[np.ndarray] = None
        self._beta = 0.0
        self._warmup_left = MOMENTUM_WARMUP if acceleration == "momentum" else 0
        self._ratio = 0.0
        self._until_burst = 0
        self._burst_left = 0
        self._burst_log_sum = 0.0
        self._burst_samples = 0
        self._fit_residual = np.inf
        self._allocate_buffers()

    def _allocate_buffers(self) -> None:
        # Fixed buffer set reused across iterations: the matvec output is
        # copied into an internal double buffer immediately, so the driver
        # never holds a reference to matvec-owned memory across iterations
        # (a matvec may reuse a retained buffer, or return a read-only
        # view) and all normalization / sign alignment runs in place with
        # no per-iteration allocations.  The matvec must not mutate its
        # input vector — the Rayleigh quotient needs the pre-update iterate.
        self._scratch = np.empty(self.size, dtype=float)
        self._buffers = (
            np.empty(self.size, dtype=float),
            np.empty(self.size, dtype=float),
        )

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    @property
    def finished(self) -> bool:
        """True once converged, blown up, or out of iteration budget."""
        return (
            self.converged
            or self._blown_up
            or self.iterations >= self.max_iterations
        )

    def advance(self, steps: Optional[int] = None) -> bool:
        """Run up to ``steps`` more iterations (the whole budget if None).

        Returns :attr:`finished`, so batched callers can loop
        ``while not driver.advance(k): ...`` — or equivalently check the
        property between chunks.
        """
        remaining = self.max_iterations - self.iterations
        if steps is not None:
            remaining = min(remaining, int(steps))
        for _ in range(max(remaining, 0)):
            self._step()
            if self.converged or self._blown_up:
                break
        return self.finished

    def _step(self) -> None:
        self.iterations += 1
        raw = np.asarray(self.matvec(self.vector), dtype=float).ravel()
        product = self._buffers[self.iterations % 2]
        np.copyto(product, raw)
        self.eigenvalue = float(np.dot(self.vector, product))
        if (
            self._previous is not None
            and self._beta > 0.0
            and self._warmup_left <= 0
            and self._burst_left == 0
        ):
            # Heavy-ball update on the rescaled recurrence: the saved
            # ``previous`` is the prior iterate divided by the norm that
            # normalized the current one, so subtracting ``beta * previous``
            # here is exactly ``A w_t - beta w_{t-1}`` up to the common
            # scaling the normalization below removes again.
            np.multiply(self._previous, self._beta, out=self._scratch)
            np.subtract(product, self._scratch, out=product)
        norm = float(np.linalg.norm(product))
        if norm == 0.0:
            # The operator annihilated the iterate; restart from a fresh
            # random direction rather than silently returning zeros.  The
            # restart also severs the momentum recurrence — the new
            # direction has no meaningful predecessor.
            np.copyto(product, l2_normalize(self._rng.standard_normal(self.size)))
            self._previous = None
            self._beta = 0.0
            if self.acceleration == "momentum":
                self._warmup_left = MOMENTUM_WARMUP
                self._ratio = 0.0
                self._until_burst = 0
                self._burst_left = 0
                self._burst_log_sum = 0.0
                self._burst_samples = 0
                self._fit_residual = np.inf
        else:
            product /= norm
        # Eigenvectors are defined up to sign; align before measuring change.
        flipped = np.dot(product, self.vector) < 0
        if flipped:
            np.negative(product, out=product)
        np.subtract(product, self.vector, out=self._scratch)
        residual = float(np.linalg.norm(self._scratch))
        if self.acceleration == "momentum" and norm != 0.0:
            self._update_momentum(norm, flipped, residual)
        self.vector = product
        self.residual = residual
        if residual < self.tolerance:
            self.converged = True
        elif not np.isfinite(residual):
            # Residual blow-up: the iterate left the representable range
            # (e.g. a poisoned warm-start vector, or runaway momentum).
            # Burning the rest of the budget cannot recover — stop
            # immediately so callers can fall back to a plain cold solve.
            self._blown_up = True

    def _update_momentum(self, norm: float, flipped: bool,
                         residual: float) -> None:
        """Adapt ``beta`` and save the rescaled previous iterate.

        The optimal heavy-ball coefficient is ``mu^2 / 4`` for sub-dominant
        eigenvalue ``mu``, and ``mu / lambda`` is exactly the asymptotic
        contraction ratio of the **plain** iteration — so ``mu`` is only
        ever estimated from plain steps.  Two sources feed it:

        * the warm-up (:data:`MOMENTUM_WARMUP` plain iterations) seeds
          ``beta`` from the smoothed contraction ratio;
        * every :data:`MOMENTUM_REESTIMATE_EVERY` accelerated iterations,
          momentum is suspended for a :data:`MOMENTUM_BURST`-step plain
          burst and ``beta`` is re-fit from the geometric-mean contraction
          across the burst (the first burst ratio spans the regime switch
          and is discarded).

        Plain contraction of a mixed error never exceeds ``mu / lambda``,
        so burst estimates approach the critical coefficient from below as
        transients die out — they correct the warm-up's transient bias on
        ill-conditioned problems without the failure mode of adapting from
        ratios measured *under* momentum (past the critical coefficient
        the accelerated rate no longer depends on ``mu``, so an overshoot
        driven by a noisy ratio is undetectable from inside the
        accelerated regime and permanently stalls the solve).  A *slight*
        overshoot — a burst ratio a hair above the true ``mu / lambda`` —
        is deliberately tolerated: just past critical the error modes turn
        into a decaying oscillation whose rate is still near-optimal, so
        the residual wobbling upward for a few steps is the *normal*
        signature of a well-fit ``beta``, not divergence (reacting to it,
        e.g. by halving ``beta``, is exactly the trap that turns a 2%%
        overshoot into a 50%% undershoot every cycle).  Only a residual
        that climbs two orders of magnitude above its level at the last
        fit triggers an early re-fit burst, and the driver-level blow-up
        stop plus the callers' plain-rerun fallback bound the damage of
        any remaining divergence.
        """
        ratio = -1.0
        if (
            np.isfinite(residual)
            and np.isfinite(self.residual)
            and self.residual > 0.0
            and residual > 0.0
        ):
            ratio = min(residual / self.residual, 0.999)
            self._ratio = (
                ratio if self._ratio == 0.0
                else 0.7 * self._ratio + 0.3 * ratio
            )
        if self._warmup_left > 0:
            self._warmup_left -= 1
            if self._warmup_left == 0 and self._ratio > 0.0:
                self._beta = 0.25 * (self._ratio * abs(self.eigenvalue)) ** 2
                self._until_burst = MOMENTUM_REESTIMATE_EVERY
                self._fit_residual = residual
        elif self._burst_left > 0:
            spans_regime_switch = self._burst_left == MOMENTUM_BURST
            self._burst_left -= 1
            if ratio > 0.0 and not spans_regime_switch:
                self._burst_log_sum += float(np.log(ratio))
                self._burst_samples += 1
            if self._burst_left == 0:
                lam = abs(self.eigenvalue)
                if self._burst_samples > 0 and lam > 0.0:
                    mu = lam * min(
                        float(np.exp(self._burst_log_sum / self._burst_samples)),
                        0.999,
                    )
                    self._beta = 0.25 * mu * mu
                self._burst_log_sum = 0.0
                self._burst_samples = 0
                self._until_burst = MOMENTUM_REESTIMATE_EVERY
                self._fit_residual = residual
        elif self._beta > 0.0:
            self._until_burst -= 1
            diverging = (
                np.isfinite(residual)
                and np.isfinite(self._fit_residual)
                and residual > 100.0 * self._fit_residual
            )
            if self._until_burst <= 0 or diverging:
                self._burst_left = MOMENTUM_BURST
                self._burst_log_sum = 0.0
                self._burst_samples = 0
        if self._previous is None:
            self._previous = np.empty(self.size, dtype=float)
        scale = (-1.0 if flipped else 1.0) / norm
        np.multiply(self.vector, scale, out=self._previous)

    # ------------------------------------------------------------------ #
    # Serialization (chunked / out-of-process execution)
    # ------------------------------------------------------------------ #
    def export_state(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        """The complete loop state as ``(meta, arrays)``.

        ``meta`` is JSON-serializable (plain ints/floats/bools plus the
        generator state dict of Python ints); ``arrays`` holds the float64
        iterate vectors.  ``from_state`` on this pair — in any process —
        continues the run bit-identically.
        """
        meta: Dict[str, object] = {
            "size": self.size,
            "tolerance": self.tolerance,
            "max_iterations": self.max_iterations,
            "acceleration": self.acceleration or "",
            "eigenvalue": self.eigenvalue,
            "residual": self.residual,
            "iterations": self.iterations,
            "converged": bool(self.converged),
            "blown_up": bool(self._blown_up),
            "beta": self._beta,
            "warmup_left": self._warmup_left,
            "ratio": self._ratio,
            "until_burst": self._until_burst,
            "burst_left": self._burst_left,
            "burst_log_sum": self._burst_log_sum,
            "burst_samples": self._burst_samples,
            # inf is not JSON-representable; None marks "no fit yet".
            "fit_residual": (
                self._fit_residual if np.isfinite(self._fit_residual) else None
            ),
            "rng_state": self._rng.bit_generator.state,
        }
        arrays: Dict[str, np.ndarray] = {
            "vector": np.asarray(self.vector, dtype=np.float64)
        }
        if self._previous is not None:
            arrays["previous"] = np.asarray(self._previous, dtype=np.float64)
        return meta, arrays

    def restore_state(self, meta: Dict[str, object],
                      arrays: Dict[str, np.ndarray]) -> None:
        """Adopt an exported state (e.g. one advanced by a worker)."""
        if int(meta["size"]) != self.size:
            raise ValueError(
                "state size %d does not match driver size %d"
                % (int(meta["size"]), self.size)
            )
        self.eigenvalue = float(meta["eigenvalue"])
        self.residual = float(meta["residual"])
        self.iterations = int(meta["iterations"])
        self.converged = bool(meta["converged"])
        self._blown_up = bool(meta["blown_up"])
        self._beta = float(meta["beta"])
        self._warmup_left = int(meta["warmup_left"])
        self._ratio = float(meta["ratio"])
        self._until_burst = int(meta["until_burst"])
        self._burst_left = int(meta["burst_left"])
        self._burst_log_sum = float(meta["burst_log_sum"])
        self._burst_samples = int(meta["burst_samples"])
        fit_residual = meta.get("fit_residual")
        self._fit_residual = (
            np.inf if fit_residual is None else float(fit_residual)
        )
        self._rng = _generator_from_state(meta["rng_state"])
        self.vector = np.array(arrays["vector"], dtype=float, copy=True)
        previous = arrays.get("previous")
        self._previous = (
            None if previous is None
            else np.array(previous, dtype=float, copy=True)
        )

    @classmethod
    def from_state(
        cls,
        matvec: Callable[[np.ndarray], np.ndarray],
        meta: Dict[str, object],
        arrays: Dict[str, np.ndarray],
    ) -> "PowerIterationDriver":
        """Rebuild a driver around ``matvec`` from an exported state."""
        driver = cls.__new__(cls)
        driver.matvec = matvec
        driver.size = int(meta["size"])
        driver.tolerance = float(meta["tolerance"])
        driver.max_iterations = int(meta["max_iterations"])
        driver.acceleration = str(meta["acceleration"]) or None
        driver._allocate_buffers()
        driver.restore_state(meta, arrays)
        return driver

    def result(self) -> PowerIterationResult:
        return PowerIterationResult(
            vector=self.vector,
            eigenvalue=self.eigenvalue,
            iterations=self.iterations,
            converged=self.converged,
            residual=self.residual,
            acceleration=self.acceleration or "none",
        )


def _generator_from_state(state: Dict[str, object]) -> np.random.Generator:
    """Rebuild a Generator from ``bit_generator.state`` (any bit generator)."""
    name = str(state["bit_generator"])
    try:
        bit_generator = getattr(np.random, name)()
    except AttributeError:
        raise ValueError("unknown bit generator %r in driver state" % name)
    generator = np.random.Generator(bit_generator)
    generator.bit_generator.state = state
    return generator


def power_iteration_matvec(
    matvec: Callable[[np.ndarray], np.ndarray],
    size: int,
    *,
    initial: Optional[np.ndarray] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    raise_on_failure: bool = False,
    random_state: Optional[Union[int, np.random.Generator]] = None,
    acceleration: Optional[str] = None,
) -> PowerIterationResult:
    """Run the power method on an operator given only as a ``matvec``.

    Parameters
    ----------
    matvec:
        Callable computing ``A @ v`` for the implicit operator ``A``.
    size:
        Dimension of the vectors ``A`` acts on.
    initial:
        Starting vector.  A random vector is drawn when omitted.
    tolerance:
        Convergence threshold on the L2 norm of the iterate change
        (the paper's criterion, default ``1e-5``).
    max_iterations:
        Iteration budget.
    raise_on_failure:
        When True, raise :class:`ConvergenceError` instead of returning a
        non-converged result.
    random_state:
        Seed or generator for the random initial vector.
    acceleration:
        ``None`` (plain power iteration, the default) or ``"momentum"``
        (adaptive heavy-ball; changes the float trajectory — see the
        module docstring).

    Returns
    -------
    PowerIterationResult
    """
    driver = PowerIterationDriver(
        matvec,
        size,
        initial=initial,
        tolerance=tolerance,
        max_iterations=max_iterations,
        random_state=random_state,
        acceleration=acceleration,
    )
    driver.advance()
    result = driver.result()
    if not result.converged and raise_on_failure:
        raise ConvergenceError(
            "power iteration did not converge in %d iterations (residual %.3g)"
            % (max_iterations, result.residual),
            iterations=result.iterations,
            residual=result.residual,
        )
    return result


def power_iteration(
    matrix: Union[np.ndarray, sp.spmatrix],
    *,
    initial: Optional[np.ndarray] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    raise_on_failure: bool = False,
    random_state: Optional[Union[int, np.random.Generator]] = None,
    acceleration: Optional[str] = None,
) -> PowerIterationResult:
    """Run the power method on an explicit (dense or sparse) square matrix."""
    shape = matrix.shape
    if len(shape) != 2 or shape[0] != shape[1]:
        raise ValueError("power_iteration expects a square matrix, got shape %s" % (shape,))
    return power_iteration_matvec(
        _as_matvec(matrix),
        shape[0],
        initial=initial,
        tolerance=tolerance,
        max_iterations=max_iterations,
        raise_on_failure=raise_on_failure,
        random_state=random_state,
        acceleration=acceleration,
    )
