"""A from-scratch Lanczos eigensolver for symmetric matrices.

The ABH seriation method computes the Fiedler vector of a graph Laplacian;
the original paper (and ours, by default) delegates this to ARPACK through
scipy.  For completeness — and because the paper's complexity discussion
(Section III-F) is phrased in terms of the Lanczos iteration — this module
provides a self-contained Lanczos implementation with full
reorthogonalization that can serve as a drop-in backend:

* :func:`lanczos_tridiagonalize` builds the Krylov basis and the tridiagonal
  projection of a symmetric operator.
* :func:`lanczos_eigsh` returns the algebraically smallest or largest
  eigenpairs, mirroring ``scipy.sparse.linalg.eigsh``'s interface for the
  cases the library needs.
* :func:`fiedler_vector_lanczos` computes the Fiedler vector of a Laplacian
  by deflating the known all-ones kernel vector.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

MatrixLike = Union[np.ndarray, sp.spmatrix]


def _as_matvec(operator: Union[MatrixLike, Callable[[np.ndarray], np.ndarray]]):
    if callable(operator) and not sp.issparse(operator) and not isinstance(operator, np.ndarray):
        return operator
    return lambda vector: np.asarray(operator @ vector).ravel()


def lanczos_tridiagonalize(
    operator: Union[MatrixLike, Callable[[np.ndarray], np.ndarray]],
    size: int,
    num_steps: int,
    *,
    initial: Optional[np.ndarray] = None,
    random_state: Optional[Union[int, np.random.Generator]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run ``num_steps`` Lanczos steps with full reorthogonalization.

    Returns ``(basis, diagonal, offdiagonal)`` where ``basis`` has one Krylov
    vector per column, ``diagonal`` holds the tridiagonal matrix's diagonal
    entries (alphas) and ``offdiagonal`` its sub-diagonal entries (betas,
    one fewer than the number of steps actually performed).  The iteration
    stops early when the Krylov space becomes invariant.
    """
    if size < 1:
        raise ValueError("operator size must be positive")
    num_steps = min(num_steps, size)
    if num_steps < 1:
        raise ValueError("need at least one Lanczos step")
    matvec = _as_matvec(operator)
    rng = np.random.default_rng(random_state)
    if initial is None:
        vector = rng.standard_normal(size)
    else:
        vector = np.asarray(initial, dtype=float).copy()
        if vector.shape != (size,):
            raise ValueError("initial vector has the wrong shape")
    norm = np.linalg.norm(vector)
    if norm == 0:
        raise ValueError("initial vector must be nonzero")
    vector = vector / norm

    basis = np.zeros((size, num_steps))
    alphas = np.zeros(num_steps)
    betas = np.zeros(max(num_steps - 1, 0))
    previous = np.zeros(size)
    beta = 0.0
    steps_done = 0
    for step in range(num_steps):
        basis[:, step] = vector
        product = matvec(vector)
        alpha = float(np.dot(vector, product))
        alphas[step] = alpha
        residual = product - alpha * vector - beta * previous
        # Full reorthogonalization keeps the basis numerically orthogonal,
        # which matters because we run comparatively many steps on small
        # problems rather than few steps on huge ones.
        residual -= basis[:, : step + 1] @ (basis[:, : step + 1].T @ residual)
        beta = float(np.linalg.norm(residual))
        steps_done = step + 1
        if step + 1 < num_steps:
            if beta < 1e-12:
                break
            betas[step] = beta
            previous = vector
            vector = residual / beta
    return basis[:, :steps_done], alphas[:steps_done], betas[: max(steps_done - 1, 0)]


def lanczos_eigsh(
    operator: Union[MatrixLike, Callable[[np.ndarray], np.ndarray]],
    size: int,
    num_eigenpairs: int = 1,
    *,
    which: str = "smallest",
    num_steps: Optional[int] = None,
    random_state: Optional[Union[int, np.random.Generator]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Approximate extreme eigenpairs of a symmetric operator via Lanczos.

    Parameters
    ----------
    operator, size:
        Symmetric matrix (dense/sparse) or matvec callable and its dimension.
    num_eigenpairs:
        How many eigenpairs to return.
    which:
        ``"smallest"`` or ``"largest"`` (algebraically).
    num_steps:
        Krylov dimension; defaults to ``min(size, max(4 * k, 40))`` which is
        ample for the well-separated spectra the library encounters.

    Returns
    -------
    (eigenvalues, eigenvectors)
        Eigenvalues sorted according to ``which``; eigenvectors as columns.
    """
    if which not in ("smallest", "largest"):
        raise ValueError("which must be 'smallest' or 'largest'")
    if num_eigenpairs < 1 or num_eigenpairs > size:
        raise ValueError("num_eigenpairs must lie in [1, size]")
    if num_steps is None:
        num_steps = min(size, max(4 * num_eigenpairs, 40))
    basis, alphas, betas = lanczos_tridiagonalize(
        operator, size, num_steps, random_state=random_state
    )
    tridiagonal = np.diag(alphas)
    if betas.size:
        tridiagonal += np.diag(betas, 1) + np.diag(betas, -1)
    ritz_values, ritz_vectors = np.linalg.eigh(tridiagonal)
    order = np.argsort(ritz_values)
    if which == "largest":
        order = order[::-1]
    selected = order[:num_eigenpairs]
    eigenvalues = ritz_values[selected]
    eigenvectors = basis @ ritz_vectors[:, selected]
    # Normalize (the basis is orthonormal up to round-off).
    eigenvectors /= np.linalg.norm(eigenvectors, axis=0, keepdims=True)
    return eigenvalues, eigenvectors


def fiedler_vector_lanczos(
    laplacian: MatrixLike,
    *,
    random_state: Optional[Union[int, np.random.Generator]] = None,
) -> np.ndarray:
    """Fiedler vector of a graph Laplacian using the Lanczos solver.

    The Laplacian's smallest eigenvalue is 0 with the all-ones eigenvector;
    that known eigenpair is shifted out of the way (Hotelling-style, by
    adding a large multiple of the ones-projector) so the smallest Ritz pair
    of the modified operator is the Fiedler pair.
    """
    size = laplacian.shape[0]
    if size < 2:
        raise ValueError("need at least a 2x2 Laplacian")
    ones = np.ones(size) / np.sqrt(size)
    base_matvec = _as_matvec(laplacian)
    if sp.issparse(laplacian):
        diagonal = np.asarray(laplacian.diagonal()).ravel()
    else:
        diagonal = np.diag(np.asarray(laplacian, dtype=float))
    # Gershgorin bound on the largest Laplacian eigenvalue: 2 * max degree.
    shift = 2.0 * float(diagonal.max()) + 1.0

    def deflated_matvec(vector: np.ndarray) -> np.ndarray:
        return base_matvec(vector) + shift * ones * float(np.dot(ones, vector))

    _, vectors = lanczos_eigsh(
        deflated_matvec, size, num_eigenpairs=1, which="smallest",
        num_steps=min(size, 80), random_state=random_state,
    )
    fiedler = vectors[:, 0]
    fiedler -= ones * float(np.dot(ones, fiedler))
    norm = np.linalg.norm(fiedler)
    return fiedler / norm if norm else fiedler
