"""Direct eigen-solvers and graph-spectral helpers.

These wrap :mod:`scipy.sparse.linalg` (Arnoldi / Lanczos) for the *direct*
variants of HND and ABH from the paper:

* ``HND-direct`` needs the eigenvector of the 2nd largest eigenvalue of the
  asymmetric AVGHITS matrix ``U`` (Arnoldi, :func:`second_largest_eigenvector`).
* ``ABH-direct`` needs the Fiedler vector, i.e. the eigenvector of the 2nd
  smallest eigenvalue of the Laplacian of ``C C^T`` (Lanczos,
  :func:`fiedler_vector`).

Small matrices fall back to dense :func:`numpy.linalg.eig` because ARPACK
requires ``k < n - 1`` and is unreliable for tiny problems.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

MatrixLike = Union[np.ndarray, sp.spmatrix]

_DENSE_FALLBACK_SIZE = 16


def _to_dense(matrix: MatrixLike) -> np.ndarray:
    if sp.issparse(matrix):
        return np.asarray(matrix.todense(), dtype=float)
    return np.asarray(matrix, dtype=float)


def second_largest_eigenvector(matrix: MatrixLike) -> np.ndarray:
    """Return a real eigenvector for the 2nd largest (by real part) eigenvalue.

    Used by HND-direct on the row-stochastic update matrix ``U`` whose
    spectrum is real in the ideal case; for general inputs we keep the real
    part of the Arnoldi vector, which preserves the ordering information the
    ranking needs.
    """
    size = matrix.shape[0]
    if size < 2:
        raise ValueError("need at least a 2x2 matrix")
    if size <= _DENSE_FALLBACK_SIZE:
        dense = _to_dense(matrix)
        values, vectors = np.linalg.eig(dense)
        order = np.argsort(-values.real)
        return np.real(vectors[:, order[1]]).astype(float)
    operator = matrix if sp.issparse(matrix) else np.asarray(matrix, dtype=float)
    values, vectors = spla.eigs(operator, k=2, which="LR")
    order = np.argsort(-values.real)
    return np.real(vectors[:, order[1]]).astype(float)


def laplacian(matrix: MatrixLike) -> MatrixLike:
    """Return the combinatorial Laplacian ``L = D - A`` of a symmetric matrix.

    ``D`` is the diagonal matrix of row sums of ``A``.  For ABH, ``A`` is the
    user-similarity matrix ``C C^T``.
    """
    if sp.issparse(matrix):
        matrix = matrix.tocsr().astype(float)
        degrees = np.asarray(matrix.sum(axis=1)).ravel()
        return sp.diags(degrees) - matrix
    matrix = np.asarray(matrix, dtype=float)
    degrees = matrix.sum(axis=1)
    return np.diag(degrees) - matrix


def fiedler_vector(laplacian_matrix: MatrixLike) -> np.ndarray:
    """Return the Fiedler vector (2nd smallest eigenvector) of a Laplacian.

    Uses Lanczos (``eigsh`` with ``which="SM"`` via shift-invert fallback) for
    large matrices and a dense symmetric solver for small ones.
    """
    size = laplacian_matrix.shape[0]
    if size < 2:
        raise ValueError("need at least a 2x2 Laplacian")
    if size <= _DENSE_FALLBACK_SIZE or not sp.issparse(laplacian_matrix):
        dense = _to_dense(laplacian_matrix)
        values, vectors = np.linalg.eigh(dense)
        return vectors[:, 1].astype(float)
    try:
        values, vectors = spla.eigsh(laplacian_matrix.tocsc(), k=2, sigma=0, which="LM")
    except (RuntimeError, spla.ArpackNoConvergence, ValueError):
        values, vectors = spla.eigsh(laplacian_matrix, k=2, which="SM")
    order = np.argsort(values)
    return vectors[:, order[1]].astype(float)


def eigenvector_ordering(vector: np.ndarray) -> np.ndarray:
    """Return the permutation that sorts ``vector`` ascending (stable).

    "The eigenvector ordering" in the paper means the ranking of entries by
    value; ties are broken by index so the result is deterministic.
    """
    vector = np.asarray(vector, dtype=float)
    return np.argsort(vector, kind="stable")


def orderings_equivalent(order_a: np.ndarray, order_b: np.ndarray) -> bool:
    """True when two orderings are identical or exact reverses of each other.

    The paper treats an ordering and its reverse as the same (footnote 4);
    symmetry breaking is handled separately by the decile-entropy heuristic.
    """
    order_a = np.asarray(order_a)
    order_b = np.asarray(order_b)
    if order_a.shape != order_b.shape:
        return False
    return bool(np.array_equal(order_a, order_b) or np.array_equal(order_a, order_b[::-1]))
