"""Linear-algebra substrate used by the spectral ranking algorithms.

This package provides the numerical building blocks that the paper's
algorithms are assembled from:

* :mod:`repro.linalg.normalize` -- row/column normalization of (sparse)
  response matrices and vector normalization helpers.
* :mod:`repro.linalg.power_iteration` -- the power method with convergence
  tracking, used by HND-power and ABH-power.
* :mod:`repro.linalg.deflation` -- Hotelling matrix deflation used by the
  HND-deflation variant (Section III-F of the paper).
* :mod:`repro.linalg.spectral` -- direct eigen-solvers (Arnoldi / Lanczos
  wrappers) and Fiedler-vector computation used by HND-direct / ABH-direct.
* :mod:`repro.linalg.operators` -- the difference (``S``) and cumulative-sum
  (``T``) operators from Figure 3 of the paper, implemented as matrix-free
  callables as well as explicit matrices.
"""

from repro.linalg.normalize import (
    normalize_rows,
    normalize_columns,
    l2_normalize,
    safe_divide,
)
from repro.linalg.operators import (
    difference_matrix,
    cumulative_matrix,
    apply_difference,
    apply_cumulative,
)
from repro.linalg.power_iteration import (
    PowerIterationResult,
    power_iteration,
    power_iteration_matvec,
)
from repro.linalg.deflation import hotelling_deflation, dominant_pair
from repro.linalg.spectral import (
    second_largest_eigenvector,
    fiedler_vector,
    laplacian,
    eigenvector_ordering,
    orderings_equivalent,
)
from repro.linalg.lanczos import (
    fiedler_vector_lanczos,
    lanczos_eigsh,
    lanczos_tridiagonalize,
)

__all__ = [
    "lanczos_tridiagonalize",
    "lanczos_eigsh",
    "fiedler_vector_lanczos",
    "normalize_rows",
    "normalize_columns",
    "l2_normalize",
    "safe_divide",
    "difference_matrix",
    "cumulative_matrix",
    "apply_difference",
    "apply_cumulative",
    "PowerIterationResult",
    "power_iteration",
    "power_iteration_matvec",
    "hotelling_deflation",
    "dominant_pair",
    "second_largest_eigenvector",
    "fiedler_vector",
    "laplacian",
    "eigenvector_ordering",
    "orderings_equivalent",
]
