"""The difference operator ``S`` and cumulative-sum operator ``T``.

Figure 3 of the paper introduces two reshaping matrices:

* ``S`` of shape ``(m-1, m)`` computes adjacent differences of a user-score
  vector: ``(S s)_j = s_{j+1} - s_j``.
* ``T`` of shape ``(m, m-1)`` is the lower unit triangular matrix that
  reconstructs scores from differences while pinning the first score to 0:
  ``(T d)_1 = 0`` and ``(T d)_j = d_1 + ... + d_{j-1}`` for ``j > 1``.

HND-power never materializes ``T`` (that would cost ``O(m^2)`` memory);
instead it uses a cumulative sum (``numpy.cumsum``), exactly as the paper
recommends in Section III-F.  Both matrix-free functions and the explicit
matrices (useful for tests and for building ``U^diff`` exactly) live here.
"""

from __future__ import annotations

import numpy as np


def difference_matrix(m: int) -> np.ndarray:
    """Return the ``(m-1, m)`` adjacent-difference matrix ``S``.

    ``S[j, j] = -1`` and ``S[j, j+1] = 1`` so that ``S @ s`` is the vector of
    adjacent differences ``s[1:] - s[:-1]``.
    """
    if m < 2:
        raise ValueError("difference_matrix requires m >= 2, got %d" % m)
    s = np.zeros((m - 1, m), dtype=float)
    idx = np.arange(m - 1)
    s[idx, idx] = -1.0
    s[idx, idx + 1] = 1.0
    return s


def cumulative_matrix(m: int) -> np.ndarray:
    """Return the ``(m, m-1)`` lower unit triangular reconstruction matrix ``T``.

    ``T[j, i] = 1`` for ``i < j`` so that ``(T @ d)[j]`` is the cumulative sum
    of the first ``j`` differences, with ``(T @ d)[0] = 0``.
    """
    if m < 2:
        raise ValueError("cumulative_matrix requires m >= 2, got %d" % m)
    t = np.zeros((m, m - 1), dtype=float)
    rows, cols = np.tril_indices(m, k=-1, m=m - 1)
    t[rows, cols] = 1.0
    return t


def apply_difference(scores: np.ndarray) -> np.ndarray:
    """Matrix-free application of ``S``: adjacent differences of ``scores``."""
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 1 or scores.size < 2:
        raise ValueError("apply_difference expects a 1-D vector of length >= 2")
    return np.diff(scores)


def apply_cumulative(diffs: np.ndarray) -> np.ndarray:
    """Matrix-free application of ``T``: scores from differences, first score 0.

    Equivalent to ``cumulative_matrix(m) @ diffs`` for ``m = len(diffs) + 1``
    but runs in ``O(m)`` time and memory via :func:`numpy.cumsum`.
    """
    diffs = np.asarray(diffs, dtype=float)
    if diffs.ndim != 1 or diffs.size < 1:
        raise ValueError("apply_cumulative expects a 1-D vector of length >= 1")
    return apply_cumulative_into(diffs, np.empty(diffs.size + 1, dtype=float))


def apply_cumulative_into(diffs: np.ndarray, out: np.ndarray) -> np.ndarray:
    """:func:`apply_cumulative` into a preallocated ``len(diffs) + 1`` buffer.

    The matrix-free power iterations apply ``T`` once per iteration on a
    vector whose length never changes; writing into a reused buffer keeps
    those loops allocation-free.
    """
    out[0] = 0.0
    np.cumsum(diffs, out=out[1:])
    return out
