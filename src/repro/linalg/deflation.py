"""Hotelling matrix deflation (Section III-F of the paper).

The 2nd largest eigenvector of the (asymmetric) AVGHITS update matrix ``U``
can be obtained by first computing the dominant left and right eigenvectors,
deflating ``U`` to remove the dominant eigenpair, and then running the power
method on the deflated matrix.  The paper implements exactly this variant
("Hotelling's matrix deflation", White 1958) as the *HND-deflation* baseline
and shows it is slightly slower than HND-power (Figure 5).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.linalg.power_iteration import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    PowerIterationResult,
    power_iteration,
    power_iteration_matvec,
)

MatrixLike = Union[np.ndarray, sp.spmatrix]


def dominant_pair(
    matrix: MatrixLike,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    random_state: Optional[Union[int, np.random.Generator]] = None,
) -> Tuple[PowerIterationResult, PowerIterationResult]:
    """Return the dominant right and left eigenpairs of ``matrix``.

    The left eigenvector is obtained by running the power method on the
    transpose.  Both results carry their own convergence diagnostics.
    """
    right = power_iteration(
        matrix,
        tolerance=tolerance,
        max_iterations=max_iterations,
        random_state=random_state,
    )
    transposed = matrix.T if not sp.issparse(matrix) else matrix.transpose().tocsr()
    left = power_iteration(
        transposed,
        tolerance=tolerance,
        max_iterations=max_iterations,
        random_state=random_state,
    )
    return right, left


def hotelling_deflation(
    matrix: MatrixLike,
    *,
    right_vector: Optional[np.ndarray] = None,
    left_vector: Optional[np.ndarray] = None,
    eigenvalue: Optional[float] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    random_state: Optional[Union[int, np.random.Generator]] = None,
) -> PowerIterationResult:
    """Compute the 2nd largest (right) eigenvector of ``matrix`` by deflation.

    The dominant eigenpair ``(lambda_1, v_1, u_1)`` (right vector ``v_1``,
    left vector ``u_1``) is removed with the rank-one update

    ``B = A - lambda_1 * v_1 u_1^T / (u_1^T v_1)``

    after which the dominant eigenvector of ``B`` equals the 2nd eigenvector
    of ``A``.  The deflated matrix is never materialized: the correction is
    applied inside the matvec so sparse inputs keep their cost profile.

    Parameters
    ----------
    matrix:
        Square matrix whose second eigenvector is sought.
    right_vector, left_vector, eigenvalue:
        Optional precomputed dominant eigenpair.  For the AVGHITS matrix the
        right dominant eigenvector is known analytically (the all-ones
        direction), so HND-deflation passes it in and only the left vector
        is estimated, which saves one power-iteration run.
    """
    size = matrix.shape[0]
    if right_vector is None or eigenvalue is None:
        right_result = power_iteration(
            matrix,
            tolerance=tolerance,
            max_iterations=max_iterations,
            random_state=random_state,
        )
        right_vector = right_result.vector
        eigenvalue = right_result.eigenvalue
    else:
        right_vector = np.asarray(right_vector, dtype=float)
        norm = np.linalg.norm(right_vector)
        if norm == 0:
            raise ValueError("right_vector must be nonzero")
        right_vector = right_vector / norm
    if left_vector is None:
        transposed = matrix.T if not sp.issparse(matrix) else matrix.transpose().tocsr()
        left_result = power_iteration(
            transposed,
            tolerance=tolerance,
            max_iterations=max_iterations,
            random_state=random_state,
        )
        left_vector = left_result.vector
    else:
        left_vector = np.asarray(left_vector, dtype=float)

    overlap = float(np.dot(left_vector, right_vector))
    if abs(overlap) < 1e-12:
        raise ValueError(
            "left and right dominant eigenvectors are numerically orthogonal; "
            "cannot deflate"
        )
    scale = float(eigenvalue) / overlap

    def deflated_matvec(vector: np.ndarray) -> np.ndarray:
        base = np.asarray(matrix @ vector).ravel()
        correction = scale * right_vector * float(np.dot(left_vector, vector))
        return base - correction

    return power_iteration_matvec(
        deflated_matvec,
        size,
        tolerance=tolerance,
        max_iterations=max_iterations,
        random_state=random_state,
    )
