"""Matrix and vector normalization helpers.

The AVGHITS update matrix is built from the row-normalized matrix ``C_row``
and the column-normalized matrix ``C_col`` of the binary response matrix
(Section III-B of the paper).  These helpers work both on dense numpy arrays
and on scipy sparse matrices and treat all-zero rows/columns gracefully
(they are left as zeros rather than producing NaNs), which happens when an
option was never chosen or a user answered no question.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

MatrixLike = Union[np.ndarray, sp.spmatrix]


def safe_divide(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    """Elementwise division that maps ``x / 0`` to ``0`` instead of NaN/inf.

    Parameters
    ----------
    numerator, denominator:
        Arrays of broadcastable shapes.

    Returns
    -------
    numpy.ndarray
        ``numerator / denominator`` with zero wherever ``denominator == 0``.
    """
    numerator = np.asarray(numerator, dtype=float)
    denominator = np.asarray(denominator, dtype=float)
    out = np.zeros(np.broadcast(numerator, denominator).shape, dtype=float)
    np.divide(numerator, denominator, out=out, where=denominator != 0)
    return out


def normalize_rows(matrix: MatrixLike) -> MatrixLike:
    """Return a copy of ``matrix`` whose rows each sum to 1 (or stay 0).

    For a binary response matrix this is ``C_row`` from the paper: each
    nonzero entry in row ``j`` becomes ``1 / (number of answers of user j)``.
    """
    if sp.issparse(matrix):
        matrix = matrix.tocsr().astype(float)
        row_sums = np.asarray(matrix.sum(axis=1)).ravel()
        inverse = safe_divide(np.ones_like(row_sums), row_sums)
        return sp.diags(inverse) @ matrix
    matrix = np.asarray(matrix, dtype=float)
    row_sums = matrix.sum(axis=1, keepdims=True)
    return safe_divide(matrix, row_sums)


def normalize_columns(matrix: MatrixLike) -> MatrixLike:
    """Return a copy of ``matrix`` whose columns each sum to 1 (or stay 0).

    For a binary response matrix this is ``C_col`` from the paper: each
    nonzero entry in column ``i`` becomes ``1 / (number of users who chose
    option i)``.
    """
    if sp.issparse(matrix):
        matrix = matrix.tocsc().astype(float)
        col_sums = np.asarray(matrix.sum(axis=0)).ravel()
        inverse = safe_divide(np.ones_like(col_sums), col_sums)
        return (matrix @ sp.diags(inverse)).tocsr()
    matrix = np.asarray(matrix, dtype=float)
    col_sums = matrix.sum(axis=0, keepdims=True)
    return safe_divide(matrix, col_sums)


def l2_normalize(vector: np.ndarray) -> np.ndarray:
    """Return ``vector`` scaled to unit Euclidean norm.

    A zero vector is returned unchanged, so callers never see NaNs even when
    an iteration collapses (e.g. on degenerate single-user inputs).
    """
    vector = np.asarray(vector, dtype=float)
    norm = np.linalg.norm(vector)
    if norm == 0:
        return vector.copy()
    return vector / norm
