"""Shard-parallel rankers: drop-in twins of the single-process methods.

Each ranker here splits the input matrix into user-range shards and runs the
shard-parallel kernels of :mod:`repro.engine.kernels`, producing **the same
scores, bit for bit,** as its single-process counterpart (``MajorityVoteRanker``,
``DawidSkeneRanker``, ``HNDPower``) at any shard count and worker count —
that equivalence is pinned by ``tests/test_engine_sharding.py``.  The method
``name`` is therefore kept identical too; the execution engine is reported
in the diagnostics (``engine``, ``num_shards``) instead.

All three follow the same template::

    sharded = ShardedResponse.split(response, num_shards, max_workers=...)
    statistics = map over shards  ->  deterministic reduce
    scores     = the shared finishing code of the single-process ranker

so anything not a sufficient statistic (power-iteration driver, EM loop,
symmetry breaking) is literally the same code object as the single-process
path.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.core.ranking import AbilityRanker, AbilityRanking
from repro.core.response import ResponseMatrix
from repro.core.symmetry import orient_scores
from repro.engine.kernels import (
    dawid_skene_accumulators,
    hnd_difference_step,
    majority_vote_scores,
)
from repro.engine.sharding import ShardedResponse
from repro.linalg.operators import apply_cumulative
from repro.linalg.power_iteration import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    power_iteration_matvec,
)
from repro.truth_discovery.dawid_skene import dawid_skene_em, initial_posteriors

RandomState = Optional[Union[int, np.random.Generator]]


def _as_sharded(
    response: Union[ResponseMatrix, ShardedResponse],
    num_shards: int,
    max_workers: Optional[int],
) -> ShardedResponse:
    """Split a matrix, or adopt an existing sharding as-is."""
    if isinstance(response, ShardedResponse):
        return response
    return ShardedResponse.split(response, num_shards, max_workers=max_workers)


class ShardedMajorityVoteRanker(AbilityRanker):
    """Shard-parallel :class:`~repro.truth_discovery.majority.MajorityVoteRanker`."""

    name = "MajorityVote"
    #: Execution-only knobs: results are bit-identical at any shard/worker
    #: count, so the rank cache keys ignore them (see ranker_fingerprint).
    cache_excluded_attributes = ("num_shards", "max_workers")

    def __init__(self, *, num_shards: int = 4, max_workers: Optional[int] = None,
                 normalize_by_answers: bool = True) -> None:
        self.num_shards = num_shards
        self.max_workers = max_workers
        self.normalize_by_answers = normalize_by_answers

    def rank(
        self, response: Union[ResponseMatrix, ShardedResponse]
    ) -> AbilityRanking:
        sharded = _as_sharded(response, self.num_shards, self.max_workers)
        scores, majority = majority_vote_scores(
            sharded, normalize_by_answers=self.normalize_by_answers
        )
        return AbilityRanking(
            scores=scores,
            method=self.name,
            diagnostics={
                "discovered_truths": majority,
                "engine": "sharded",
                "num_shards": sharded.num_shards,
            },
        )


class ShardedDawidSkeneRanker(AbilityRanker):
    """Shard-parallel :class:`~repro.truth_discovery.dawid_skene.DawidSkeneRanker`.

    Runs the shared EM loop (:func:`~repro.truth_discovery.dawid_skene.dawid_skene_em`)
    over the shard-parallel accumulators; only the sufficient-statistic
    reductions are distributed, so the EM trajectory — and the final scores —
    are bit-identical to the single-process ranker.
    """

    name = "Dawid-Skene"
    #: Execution-only knobs (see ShardedMajorityVoteRanker).
    cache_excluded_attributes = ("num_shards", "max_workers")

    def __init__(self, *, num_shards: int = 4, max_workers: Optional[int] = None,
                 max_iterations: int = 100, tolerance: float = 1e-6,
                 smoothing: float = 0.01) -> None:
        self.num_shards = num_shards
        self.max_workers = max_workers
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.smoothing = smoothing

    def rank(
        self, response: Union[ResponseMatrix, ShardedResponse]
    ) -> AbilityRanking:
        sharded = _as_sharded(response, self.num_shards, self.max_workers)
        num_classes = sharded.max_options
        _, items, options = sharded.source.triples
        count_accumulator, loglik_accumulator = dawid_skene_accumulators(
            sharded, num_classes
        )
        result = dawid_skene_em(
            count_accumulator=count_accumulator,
            loglik_accumulator=loglik_accumulator,
            posteriors=initial_posteriors(
                items, options, sharded.num_items, num_classes, self.smoothing
            ),
            num_users=sharded.num_users,
            num_classes=num_classes,
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
            smoothing=self.smoothing,
        )
        diagnostics: Dict[str, object] = {
            "iterations": result.iterations,
            "converged": result.converged,
            "discovered_truths": result.posteriors.argmax(axis=1),
            "class_priors": result.priors,
            "engine": "sharded",
            "num_shards": sharded.num_shards,
        }
        return AbilityRanking(
            scores=result.accuracies, method=self.name, diagnostics=diagnostics
        )


class ShardedHNDPower(AbilityRanker):
    """Shard-parallel :class:`~repro.core.hitsndiffs.HNDPower` (Algorithm 1).

    The power iteration driver, cumulative/difference wrappers, and the
    decile-entropy symmetry breaking are the single-process code; each
    iteration's AVGHITS matvec is the shard-parallel sum of per-shard
    partial products (gather in shards, canonical-order scatter reduce).
    """

    name = "HnD"
    #: Execution-only knobs (see ShardedMajorityVoteRanker).
    cache_excluded_attributes = ("num_shards", "max_workers")

    def __init__(
        self,
        *,
        num_shards: int = 4,
        max_workers: Optional[int] = None,
        tolerance: float = DEFAULT_TOLERANCE,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        break_symmetry: bool = True,
        check_connectivity: bool = False,
        random_state: RandomState = None,
    ) -> None:
        self.num_shards = num_shards
        self.max_workers = max_workers
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.break_symmetry = break_symmetry
        self.check_connectivity = check_connectivity
        self.random_state = random_state

    def rank(
        self, response: Union[ResponseMatrix, ShardedResponse]
    ) -> AbilityRanking:
        sharded = _as_sharded(response, self.num_shards, self.max_workers)
        matrix = sharded.source
        if self.check_connectivity:
            matrix.require_connected()
        m = sharded.num_users
        if m < 2:
            return AbilityRanking(scores=np.zeros(m), method=self.name,
                                  diagnostics={"iterations": 0, "converged": True})
        diff_step = hnd_difference_step(sharded)
        result = power_iteration_matvec(
            diff_step,
            m - 1,
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            random_state=self.random_state,
        )
        scores = apply_cumulative(result.vector)
        diagnostics: Dict[str, object] = {
            "iterations": result.iterations,
            "converged": result.converged,
            "residual": result.residual,
            "eigenvalue": result.eigenvalue,
            "diff_vector_variance": float(np.var(result.vector)),
            "engine": "sharded",
            "num_shards": sharded.num_shards,
        }
        if self.break_symmetry:
            scores, symmetry_diag = orient_scores(matrix, scores)
            diagnostics.update(symmetry_diag)
        return AbilityRanking(scores=scores, method=self.name, diagnostics=diagnostics)
