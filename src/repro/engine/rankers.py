"""Backend-agnostic sharded ranking: kernel interface, runners, and shims.

The paper's shard-friendly methods (MajorityVote, Dawid–Skene, HnD-Power)
are implemented **once** here as *runners* — ``rank_majority_vote``,
``rank_dawid_skene``, ``rank_hnd_power`` — over a small kernel interface
(:class:`ShardKernels`).  A runner owns everything that is not a sufficient
statistic (the power-iteration driver, the EM loop, symmetry breaking), so
every backend walks literally the same code path and produces **the same
scores, bit for bit,** as the single-process rankers (``MajorityVoteRanker``,
``DawidSkeneRanker``, ``HNDPower``) at any shard and worker count:

* :class:`ThreadKernels` dispatches the shard map serially or over the
  :class:`~repro.engine.sharding.ShardedResponse` thread pool;
* :class:`~repro.engine.process_backend.ProcessEngine` dispatches it over a
  ``ProcessPoolExecutor`` (worker-resident shard slices + shared-memory
  vectors) and implements the same interface.

The preferred entry point is :func:`repro.api.rank` with an
:class:`~repro.api.execution.ExecutionPolicy`::

    rank(matrix, "HnD", execution=ExecutionPolicy(backend="threads", shards=8))

.. deprecated:: 1.1
    The ``ShardedMajorityVoteRanker`` / ``ShardedDawidSkeneRanker`` /
    ``ShardedHNDPower`` classes remain as thin shims over the runners for
    backward compatibility, but direct construction is deprecated — new
    code should select the execution strategy through ``ExecutionPolicy``
    rather than by class.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.api.registry import REGISTRY
from repro.core.hitsndiffs import _trivial_diagnostics, hnd_power_solve
from repro.core.ranking import AbilityRanker, AbilityRanking
from repro.core.response import ResponseMatrix
from repro.core.solver_state import SolverState
from repro.core.symmetry import orient_scores
from repro.engine import kernels as _kernels
from repro.engine.sharding import ShardedResponse
from repro.linalg.operators import apply_cumulative
from repro.linalg.power_iteration import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
)
from repro.truth_discovery.dawid_skene import dawid_skene_solve

RandomState = Optional[Union[int, np.random.Generator]]


def _as_sharded(
    response: Union[ResponseMatrix, ShardedResponse],
    num_shards: int,
    max_workers: Optional[int],
) -> ShardedResponse:
    """Split a matrix, or adopt an existing sharding as-is."""
    if isinstance(response, ShardedResponse):
        return response
    return ShardedResponse.split(response, num_shards, max_workers=max_workers)


class ShardKernels:
    """The kernel interface the runners execute against.

    A backend exposes the shard-parallel sufficient-statistic kernels plus
    the small shared state the finishing code needs.  Implementations:
    :class:`ThreadKernels` here and
    :class:`~repro.engine.process_backend.ProcessEngine`.
    """

    #: Reported in result diagnostics (``"threads"`` / ``"serial"`` / ``"processes"``).
    backend: str = "abstract"

    #: Iterations executed per dispatch when the backend provides a chunk
    #: runner (see :meth:`hnd_chunk_runner`).  Execution-only — every value
    #: produces the same bits — so it lives on the kernel object, not in
    #: the registry param spec the rank-cache fingerprints read.
    iteration_batch: int = 1

    @property
    def source(self) -> ResponseMatrix:
        raise NotImplementedError

    @property
    def num_shards(self) -> int:
        raise NotImplementedError

    @property
    def num_users(self) -> int:
        return self.source.num_users

    @property
    def num_items(self) -> int:
        return self.source.num_items

    @property
    def max_options(self) -> int:
        return self.source.max_options

    def diagnostics(self) -> Dict[str, object]:
        return {
            "engine": "sharded",
            "backend": self.backend,
            "num_shards": self.num_shards,
        }

    # Shard-parallel kernels ------------------------------------------- #
    def majority_scores(
        self, *, normalize_by_answers: bool = True
    ) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def dawid_skene_accumulators(
        self, num_classes: int
    ) -> Tuple[Callable, Callable]:
        raise NotImplementedError

    def hnd_difference_step(self) -> Callable[[np.ndarray], np.ndarray]:
        raise NotImplementedError

    def hnd_chunk_runner(self) -> Optional[Callable]:
        """Batched-iteration dispatch hook: ``runner(driver, k)`` or None.

        A backend that pays a per-dispatch round-trip (processes, remote)
        returns a callable that advances the given
        :class:`~repro.linalg.power_iteration.PowerIterationDriver` by
        ``k`` iterations in one dispatch — shipping the serialized driver
        state to where the data lives and restoring the advanced state —
        instead of one task/socket round-trip per matvec.  The driver
        state is complete, so every batch size produces the same bits as
        the in-process loop.  Backends whose matvec dispatch is cheap
        (fused, threads) return None and the loop runs in-process.
        """
        return None


class ThreadKernels(ShardKernels):
    """Kernel interface over in-process shards (serial or thread dispatch).

    A thin adapter around the :mod:`repro.engine.kernels` functions — the
    dispatch mode is whatever the wrapped :class:`ShardedResponse` was
    configured with (``max_workers``).
    """

    def __init__(self, sharded: ShardedResponse) -> None:
        self.sharded = sharded

    @property
    def backend(self) -> str:  # type: ignore[override]
        workers = self.sharded.max_workers
        return "threads" if workers and workers > 1 else "serial"

    @property
    def source(self) -> ResponseMatrix:
        return self.sharded.source

    @property
    def num_shards(self) -> int:
        return self.sharded.num_shards

    def majority_scores(self, *, normalize_by_answers: bool = True):
        return _kernels.majority_vote_scores(
            self.sharded, normalize_by_answers=normalize_by_answers
        )

    def dawid_skene_accumulators(self, num_classes: int):
        return _kernels.dawid_skene_accumulators(self.sharded, num_classes)

    def hnd_difference_step(self):
        return _kernels.hnd_difference_step(self.sharded)


# --------------------------------------------------------------------------- #
# Runners: the shared method implementations every backend executes
# --------------------------------------------------------------------------- #
def rank_majority_vote(
    kernels: ShardKernels, *, normalize_by_answers: bool = True
) -> AbilityRanking:
    """MajorityVote over shard kernels (bit-identical to ``MajorityVoteRanker``)."""
    scores, majority = kernels.majority_scores(
        normalize_by_answers=normalize_by_answers
    )
    diagnostics: Dict[str, object] = {"discovered_truths": majority}
    diagnostics.update(kernels.diagnostics())
    return AbilityRanking(scores=scores, method="MajorityVote", diagnostics=diagnostics)


def rank_dawid_skene(
    kernels: ShardKernels,
    *,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    smoothing: float = 0.01,
    init_state: Optional[SolverState] = None,
) -> AbilityRanking:
    """Dawid–Skene over shard kernels (bit-identical to ``DawidSkeneRanker``).

    Only the two sufficient-statistic reductions are distributed; the EM
    loop itself is the shared
    :func:`~repro.truth_discovery.dawid_skene.dawid_skene_solve`, so the
    trajectory — and the final scores — match the single-process ranker,
    warm-started or not: a warm start is only a different initial posterior
    table, and given the same ``init_state`` every backend walks the same
    trajectory bit for bit.
    """
    num_classes = kernels.max_options
    _, items, options = kernels.source.triples
    count_accumulator, loglik_accumulator = kernels.dawid_skene_accumulators(
        num_classes
    )
    result, state, warm_mode = dawid_skene_solve(
        count_accumulator=count_accumulator,
        loglik_accumulator=loglik_accumulator,
        item_index=items,
        option_index=options,
        num_items=kernels.num_items,
        num_users=kernels.num_users,
        num_classes=num_classes,
        max_iterations=max_iterations,
        tolerance=tolerance,
        smoothing=smoothing,
        init_state=init_state,
    )
    diagnostics: Dict[str, object] = {
        "iterations": result.iterations,
        "converged": result.converged,
        "discovered_truths": result.posteriors.argmax(axis=1),
        "class_priors": result.priors,
        "warm_start": warm_mode,
    }
    diagnostics.update(kernels.diagnostics())
    return AbilityRanking(
        scores=result.accuracies, method="Dawid-Skene",
        diagnostics=diagnostics, state=state,
    )


def rank_hnd_power(
    kernels: ShardKernels,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    break_symmetry: bool = True,
    check_connectivity: bool = False,
    random_state: RandomState = None,
    init_state: Optional[SolverState] = None,
    acceleration: Optional[str] = None,
) -> AbilityRanking:
    """HnD-Power (Algorithm 1) over shard kernels (bit-identical to ``HNDPower``).

    The power-iteration driver (shared
    :func:`~repro.core.hitsndiffs.hnd_power_solve`, including the warm-start
    adaptation and cold-fallback guard), cumulative/difference wrappers, and
    the decile-entropy symmetry breaking are the single-process code; each
    iteration's AVGHITS matvec is the shard-parallel sum of per-shard
    partial products (gather in shards, canonical-order scatter reduce).  A
    warm start is only a different initial vector, so the bit-identity
    guarantee across backends holds for warm solves too.

    When the backend offers a chunk runner and ``kernels.iteration_batch``
    exceeds 1, the iteration loop is dispatched in batches instead of one
    round-trip per matvec — same bits, fewer sync points.
    """
    matrix = kernels.source
    if check_connectivity:
        matrix.require_connected()
    m = kernels.num_users
    if m < 2:
        return AbilityRanking(scores=np.zeros(m), method="HnD",
                              diagnostics=_trivial_diagnostics(init_state))
    iteration_batch = int(getattr(kernels, "iteration_batch", 1) or 1)
    run_chunk = kernels.hnd_chunk_runner() if iteration_batch > 1 else None
    diff_step = kernels.hnd_difference_step()
    result, state, warm_mode = hnd_power_solve(
        diff_step,
        m,
        tolerance=tolerance,
        max_iterations=max_iterations,
        random_state=random_state,
        init_state=init_state,
        acceleration=acceleration,
        run_chunk=run_chunk,
        iteration_batch=iteration_batch,
    )
    scores = apply_cumulative(result.vector)
    diagnostics: Dict[str, object] = {
        "iterations": result.iterations,
        "converged": result.converged,
        "residual": result.residual,
        "eigenvalue": result.eigenvalue,
        "diff_vector_variance": float(np.var(result.vector)),
        "warm_start": warm_mode,
        "acceleration": result.acceleration,
        "iteration_batch": iteration_batch,
    }
    diagnostics.update(kernels.diagnostics())
    if break_symmetry:
        scores, symmetry_diag = orient_scores(matrix, scores)
        diagnostics.update(symmetry_diag)
    return AbilityRanking(scores=scores, method="HnD",
                          diagnostics=diagnostics, state=state)


# --------------------------------------------------------------------------- #
# Deprecated shims: class-based backend selection, kept for compatibility
# --------------------------------------------------------------------------- #
def _warn_deprecated_shim(cls: type, method: str) -> None:
    """Runtime migration signal for the class-based backend selection."""
    warnings.warn(
        "%s is deprecated; use repro.api.rank(response, %r, "
        "execution=ExecutionPolicy(backend='threads', shards=...)) instead"
        % (cls.__name__, method),
        DeprecationWarning,
        stacklevel=3,
    )


class ShardedMajorityVoteRanker(AbilityRanker):
    """Thread-sharded ``MajorityVoteRanker`` (deprecated shim).

    .. deprecated:: 1.1
        Use ``repro.api.rank(response, "MajorityVote",
        execution=ExecutionPolicy(backend="threads", shards=...))``.
    """

    name = "MajorityVote"
    #: Execution-only knobs: results are bit-identical at any shard/worker
    #: count, so the rank cache keys ignore them (see ranker_fingerprint).
    cache_excluded_attributes = ("num_shards", "max_workers")

    def __init__(self, *, num_shards: int = 4, max_workers: Optional[int] = None,
                 normalize_by_answers: bool = True) -> None:
        _warn_deprecated_shim(type(self), "MajorityVote")
        self.num_shards = num_shards
        self.max_workers = max_workers
        self.normalize_by_answers = normalize_by_answers

    def rank(
        self, response: Union[ResponseMatrix, ShardedResponse]
    ) -> AbilityRanking:
        kernels = ThreadKernels(
            _as_sharded(response, self.num_shards, self.max_workers)
        )
        return rank_majority_vote(
            kernels, normalize_by_answers=self.normalize_by_answers
        )


class ShardedDawidSkeneRanker(AbilityRanker):
    """Thread-sharded ``DawidSkeneRanker`` (deprecated shim).

    .. deprecated:: 1.1
        Use ``repro.api.rank(response, "Dawid-Skene",
        execution=ExecutionPolicy(backend="threads", shards=...))``.
    """

    name = "Dawid-Skene"
    #: Execution-only knobs (see ShardedMajorityVoteRanker).
    cache_excluded_attributes = ("num_shards", "max_workers")

    def __init__(self, *, num_shards: int = 4, max_workers: Optional[int] = None,
                 max_iterations: int = 100, tolerance: float = 1e-6,
                 smoothing: float = 0.01) -> None:
        _warn_deprecated_shim(type(self), "Dawid-Skene")
        self.num_shards = num_shards
        self.max_workers = max_workers
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.smoothing = smoothing

    def rank(
        self, response: Union[ResponseMatrix, ShardedResponse]
    ) -> AbilityRanking:
        kernels = ThreadKernels(
            _as_sharded(response, self.num_shards, self.max_workers)
        )
        return rank_dawid_skene(
            kernels,
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
            smoothing=self.smoothing,
        )


class ShardedHNDPower(AbilityRanker):
    """Thread-sharded ``HNDPower`` (deprecated shim).

    .. deprecated:: 1.1
        Use ``repro.api.rank(response, "HnD",
        execution=ExecutionPolicy(backend="threads", shards=...))``.
    """

    name = "HnD"
    #: Execution-only knobs (see ShardedMajorityVoteRanker).
    cache_excluded_attributes = ("num_shards", "max_workers")

    def __init__(
        self,
        *,
        num_shards: int = 4,
        max_workers: Optional[int] = None,
        tolerance: float = DEFAULT_TOLERANCE,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        break_symmetry: bool = True,
        check_connectivity: bool = False,
        random_state: RandomState = None,
        acceleration: Optional[str] = None,
    ) -> None:
        _warn_deprecated_shim(type(self), "HnD")
        self.num_shards = num_shards
        self.max_workers = max_workers
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.break_symmetry = break_symmetry
        self.check_connectivity = check_connectivity
        self.random_state = random_state
        self.acceleration = acceleration

    def rank(
        self, response: Union[ResponseMatrix, ShardedResponse]
    ) -> AbilityRanking:
        kernels = ThreadKernels(
            _as_sharded(response, self.num_shards, self.max_workers)
        )
        return rank_hnd_power(
            kernels,
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            break_symmetry=self.break_symmetry,
            check_connectivity=self.check_connectivity,
            random_state=self.random_state,
            acceleration=self.acceleration,
        )


# The registry entries of the shard-capable methods gain their kernel
# runner here (the ranker classes registered the specs at import time);
# the shim classes map onto the same specs so their cache fingerprints
# read the registry's param spec.
REGISTRY.attach_sharded("MajorityVote", rank_majority_vote,
                        shim=ShardedMajorityVoteRanker)
REGISTRY.attach_sharded("Dawid-Skene", rank_dawid_skene,
                        shim=ShardedDawidSkeneRanker)
REGISTRY.attach_sharded("HnD", rank_hnd_power, shim=ShardedHNDPower)
