"""Process-backed shard execution: a ``ProcessPoolExecutor`` over shard slices.

The thread backend's kernels (:mod:`repro.engine.kernels`) dispatch
closures over shared in-process buffers — neither survives a process
boundary.  :class:`ProcessEngine` keeps the same determinism model with a
different data plane:

* **shard slices live in the workers.**  The canonical triple arrays (and
  the derived binary-column ids) are shipped to every worker exactly once,
  at pool start-up, through the pool initializer — per-call task messages
  are a handful of integers.  Any worker can therefore run any shard,
  which is what lets ``workers < shards`` configurations drain the queue.
* **hot vectors travel through shared memory.**  The per-iteration inputs
  (user-score vectors, option weights, EM posteriors) and the per-answer
  gather buffers are named :class:`multiprocessing.shared_memory.SharedMemory`
  blocks; the parent writes inputs, workers write their disjoint output
  slices, and nothing ``O(nnz)`` is ever pickled in the hot loop.
* **reductions happen in the parent, in canonical answer order.**  Workers
  only *gather* per-answer contributions (or finish per-user row blocks,
  which concatenate without any floating-point arithmetic); the parent
  performs the single sequential ``np.bincount`` scatter over the
  canonical order — the same accumulation order SciPy's CSR/CSC loops and
  the thread backend use.  Scores are therefore **bit-identical to the
  fused single-process kernels at any shard and worker count**, pinned by
  ``tests/test_process_backend.py``.

:class:`ProcessEngine` implements the
:class:`~repro.engine.rankers.ShardKernels` interface, so the runners
(``rank_hnd_power``, ``rank_dawid_skene``, ``rank_majority_vote``) execute
over it unchanged — including **warm starts**: a
:class:`~repro.core.solver_state.SolverState` only changes the initial
vector/posterior table the runner's solve loop starts from, which lives in
the parent, so the worker protocol (shard slices shipped once, shared-memory
vectors per call) and the bit-identity guarantee are untouched.  Entry
point::

    from repro.api import ExecutionPolicy, rank
    rank(matrix, "HnD", execution=ExecutionPolicy(backend="processes", shards=8))
"""

from __future__ import annotations

import os
import secrets
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context, shared_memory
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.engine.rankers import ShardKernels
from repro.exceptions import EngineError, WorkerTimeoutError, WorkerUnavailableError
from repro.engine.sharding import ShardedResponse
from repro.linalg.operators import apply_cumulative_into, apply_difference
from repro.linalg.power_iteration import PowerIterationDriver
from repro.truth_discovery.majority import agreement_counts

#: A buffer reference a worker can resolve: (shared-memory name, shape).
BufferRef = Tuple[str, Tuple[int, ...]]

# ----------------------------------------------------------------------- #
# Worker side: module-level state + picklable task functions
# ----------------------------------------------------------------------- #
#: Engine token -> worker-resident shard state (set by the pool initializer).
_WORKER_STATE: Dict[str, Dict[str, object]] = {}

#: Shared-memory name -> open attachment (cached for the worker's lifetime).
_WORKER_BUFFERS: Dict[str, np.ndarray] = {}
_WORKER_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}


def _worker_init(token: str, payload: Dict[str, np.ndarray]) -> None:
    """Pool initializer: install the shard slices in this worker process."""
    state = dict(payload)
    # Binary-column id of every answer, derived once per worker from the
    # same integers the parent uses (identical values by construction).
    state["columns"] = (
        np.asarray(state["column_starts"])[state["items"]] + state["options"]
    )
    state["blocks"] = {}
    _WORKER_STATE[token] = state


def _worker_block(state: Dict[str, object], index: int) -> sp.csr_matrix:
    """Shard ``index``'s one-hot CSR row block, built once per worker.

    The same block :attr:`ShardedResponse.shard_blocks` caches parent-side:
    row ``u`` holds ones at the binary columns of user ``start + u``'s
    answers, in canonical answer order, so a SciPy CSR matvec over it
    accumulates each user row exactly like the fused kernel.
    """
    blocks: Dict[int, sp.csr_matrix] = state["blocks"]
    block = blocks.get(index)
    if block is None:
        lo, hi, start, stop = _shard_slice(state, index)
        num_columns = int(state["num_columns"])
        local_users = state["users"][lo:hi] - start
        counts = np.bincount(local_users, minlength=stop - start)
        indptr = np.zeros(stop - start + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        block = sp.csr_matrix((stop - start, num_columns))
        block.data = np.ones(hi - lo, dtype=np.float64)
        block.indices = np.ascontiguousarray(state["columns"][lo:hi])
        block.indptr = indptr
        blocks[index] = block
    return block


def _worker_diff_step(state: Dict[str, object]):
    """The fused HnD difference step over a worker-local full replica.

    Built lazily from the triples every worker already holds (the pool
    initializer ships them once) plus the per-item option counts, so the
    replica's binary-column layout — and therefore every accumulation
    order — matches the parent's ``CompiledResponse`` exactly: k driver
    iterations here are bit-identical to k iterations of the fused kernel.
    """
    step = state.get("diff_step")
    if step is None:
        from repro.core.avghits import hnd_difference_step
        from repro.core.response import ResponseMatrix

        matrix = ResponseMatrix.from_triples(
            state["users"], state["items"], state["options"],
            shape=(int(state["boundaries"][-1]), len(state["column_starts"])),
            num_options=state["num_options"],
        )
        step = hnd_difference_step(matrix)
        state["diff_step"] = step
    return step


def _worker_view(ref: BufferRef) -> np.ndarray:
    """A float64 view of a shared-memory block (attachments are cached)."""
    name, shape = ref
    view = _WORKER_BUFFERS.get(name)
    if view is None or view.shape != tuple(shape):
        segment = _WORKER_SEGMENTS.get(name)
        if segment is None:
            segment = shared_memory.SharedMemory(name=name)
            _WORKER_SEGMENTS[name] = segment
        view = np.ndarray(tuple(shape), dtype=np.float64, buffer=segment.buf)
        _WORKER_BUFFERS[name] = view
    return view


def _shard_slice(state: Dict[str, object], index: int) -> Tuple[int, int, int, int]:
    """(answer lo, answer hi, user start, user stop) of shard ``index``."""
    cuts = state["cuts"]
    boundaries = state["boundaries"]
    return (
        int(cuts[index]), int(cuts[index + 1]),
        int(boundaries[index]), int(boundaries[index + 1]),
    )


def _task_gather_user(token: str, index: int, vec_ref: BufferRef,
                      scratch_ref: BufferRef) -> None:
    """scratch[answers of shard] = user_vector[user of each answer]."""
    state = _WORKER_STATE[token]
    lo, hi, _, _ = _shard_slice(state, index)
    scratch = _worker_view(scratch_ref)
    np.take(_worker_view(vec_ref), state["users"][lo:hi], out=scratch[lo:hi])


def _task_user_sums(token: str, index: int, vec_ref: BufferRef,
                    out_ref: BufferRef) -> None:
    """out[shard's user rows] = per-user sums of the picked option values.

    One fused SciPy CSR matvec over the worker-cached shard block — the
    same per-row accumulation order as the old gather + ``np.bincount``
    pair, without its extra ``O(nnz)`` pass.
    """
    state = _WORKER_STATE[token]
    lo, hi, start, stop = _shard_slice(state, index)
    if stop == start:
        return
    out = _worker_view(out_ref)
    out[start:stop] = _worker_block(state, index) @ _worker_view(vec_ref)


def _task_histogram(token: str, index: int, num_items: int, k: int) -> np.ndarray:
    """Shard's per-item option histogram (integer; returned by value)."""
    state = _WORKER_STATE[token]
    lo, hi, _, _ = _shard_slice(state, index)
    return np.bincount(
        state["items"][lo:hi] * k + state["options"][lo:hi],
        minlength=num_items * k,
    )


def _task_agreements(token: str, index: int, majority: np.ndarray) -> np.ndarray:
    """Shard's per-user majority-agreement counts (integer row block)."""
    state = _WORKER_STATE[token]
    lo, hi, start, stop = _shard_slice(state, index)
    return agreement_counts(
        state["users"][lo:hi], state["items"][lo:hi], state["options"][lo:hi],
        majority, stop - start, user_offset=start,
    )


def _task_ds_counts(token: str, index: int, num_classes: int,
                    post_ref: BufferRef, out_ref: BufferRef) -> None:
    """Shard's block of the (m*k, k) confusion-count matrix (M-step)."""
    state = _WORKER_STATE[token]
    lo, hi, start, stop = _shard_slice(state, index)
    if stop == start:
        return
    posteriors = _worker_view(post_ref)
    keys = (state["users"][lo:hi] - start) * num_classes + state["options"][lo:hi]
    items = state["items"][lo:hi]
    minlength = (stop - start) * num_classes
    block = np.stack(
        [
            np.bincount(keys, weights=posteriors[items, label], minlength=minlength)
            for label in range(num_classes)
        ],
        axis=1,
    )
    out = _worker_view(out_ref)
    out[start * num_classes:stop * num_classes, :] = block


def _task_ds_gather(token: str, index: int, num_classes: int,
                    logconf_ref: BufferRef, gathered_ref: BufferRef) -> None:
    """gathered[answers of shard] = log-confusion rows of each answer (E-step)."""
    state = _WORKER_STATE[token]
    lo, hi, _, _ = _shard_slice(state, index)
    keys = state["users"][lo:hi] * num_classes + state["options"][lo:hi]
    gathered = _worker_view(gathered_ref)
    gathered[lo:hi, :] = _worker_view(logconf_ref)[keys]


def _task_hnd_chunk(
    token: str,
    meta: Dict[str, object],
    arrays: Dict[str, np.ndarray],
    steps: int,
) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Advance a serialized power-iteration driver ``steps`` iterations.

    Pure state-in/state-out over the worker's full replica (see
    :func:`_worker_diff_step`): rerunning the same chunk after a worker
    death or timeout re-produces the same output state, so failover simply
    re-submits.
    """
    driver = PowerIterationDriver.from_state(
        _worker_diff_step(_WORKER_STATE[token]), meta, arrays
    )
    driver.advance(steps)
    return driver.export_state()


# ----------------------------------------------------------------------- #
# Parent side
# ----------------------------------------------------------------------- #
class ProcessEngine(ShardKernels):
    """Shard kernels dispatched over a persistent process pool.

    Parameters
    ----------
    sharded:
        The sharding to execute over.  Its thread-pool configuration is
        ignored — dispatch happens through this engine's process pool.
    max_workers:
        Worker processes; ``None`` defaults to ``min(num_shards,
        cpu_count)``.  Fewer workers than shards is legal (tasks queue);
        the worker count never changes results.
    start_method:
        Multiprocessing start method; ``None`` uses the platform default
        (``fork`` on Linux — cheap start-up; ``spawn`` elsewhere — the
        workers re-import this module, which is why the task functions are
        module-level).
    task_timeout:
        Seconds a single shard task may take before the engine gives up,
        aborts the pool, and raises
        :class:`~repro.exceptions.WorkerTimeoutError`.  ``None`` disables
        the deadline.  The default is generous — shard tasks are
        sub-second even at the committed 200k x 5k scale — and exists so a
        wedged worker (e.g. stuck in a kernel call after memory pressure)
        can never hang the solve forever.

    Notes
    -----
    The engine owns OS resources (worker processes, shared-memory
    segments).  Use it as a context manager, or call :meth:`close`; a
    finalizer reclaims everything if the engine is garbage collected while
    open.
    """

    backend = "processes"

    def __init__(
        self,
        sharded: ShardedResponse,
        max_workers: Optional[int] = None,
        *,
        start_method: Optional[str] = None,
        task_timeout: Optional[float] = 120.0,
        iteration_batch: int = 1,
    ) -> None:
        self.sharded = sharded
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive or None, got %r"
                             % task_timeout)
        self.task_timeout = task_timeout
        if int(iteration_batch) < 1:
            raise ValueError("iteration_batch must be >= 1, got %r"
                             % iteration_batch)
        self.iteration_batch = int(iteration_batch)
        if max_workers is None:
            max_workers = min(sharded.num_shards, os.cpu_count() or 1)
        self.num_workers = max(1, min(int(max_workers), sharded.num_shards))
        # Kept short: shared-memory segment names derive from this token
        # and macOS caps shm names at 31 characters (PSHM_NAME_MAX).
        self._token = "rpr%s" % secrets.token_hex(5)
        self._segment_counter = 0

        users, items, options = sharded.source.triples
        payload = {
            "users": users,
            "items": items,
            "options": options,
            "boundaries": np.asarray(sharded.boundaries),
            "cuts": np.asarray(sharded.answer_cuts),
            "column_starts": np.asarray(sharded.column_offsets[:-1]),
            "num_columns": int(sharded.num_columns),
            "num_options": np.asarray(sharded.source.num_options),
        }
        context = get_context(start_method) if start_method else get_context()
        self._pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=self.num_workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(self._token, payload),
        )
        self._segments: Dict[str, Tuple[shared_memory.SharedMemory, np.ndarray]] = {}
        self._finalizer = weakref.finalize(self, _release, self._pool, [])

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the worker pool down and release the shared-memory blocks."""
        self._finalizer.detach()
        pool, self._pool = self._pool, None
        segments, self._segments = self._segments, {}
        _release(pool, [segment for segment, _ in segments.values()])

    def __enter__(self) -> "ProcessEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Shared state and plumbing
    # ------------------------------------------------------------------ #
    @property
    def source(self):
        return self.sharded.source

    @property
    def num_shards(self) -> int:
        return self.sharded.num_shards

    def diagnostics(self) -> Dict[str, object]:
        info = super().diagnostics()
        info["num_workers"] = self.num_workers
        return info

    def _buffer(self, role: str, shape: Tuple[int, ...]) -> Tuple[np.ndarray, BufferRef]:
        """A (cached) named shared-memory float64 buffer for ``role``.

        The cache key includes the shape, so a repeated request with a
        different geometry (e.g. Dawid–Skene rerun with another class
        count) gets a fresh segment rather than a mis-shaped view.
        """
        key = "%s-%s" % (role, "x".join(str(int(dim)) for dim in shape))
        entry = self._segments.get(key)
        if entry is None:
            nbytes = max(8, int(np.prod(shape)) * 8)
            # Segment names stay well under macOS's 31-char shm limit:
            # "rpr" + 10 hex + "-" + a small counter.
            segment = shared_memory.SharedMemory(
                create=True, size=nbytes,
                name="%s-%d" % (self._token, self._segment_counter),
            )
            self._segment_counter += 1
            view = np.ndarray(shape, dtype=np.float64, buffer=segment.buf)
            entry = (segment, view)
            self._segments[key] = entry
            # Re-arm the finalizer with the grown segment list.
            self._finalizer.detach()
            self._finalizer = weakref.finalize(
                self, _release, self._pool, [seg for seg, _ in self._segments.values()]
            )
        segment, view = entry
        return view, (segment.name, tuple(shape))

    def _abort(self) -> None:
        """Kill the pool after a timeout or worker death.

        A plain ``shutdown(wait=True)`` would block on the very task that
        just timed out (or deadlock against a dead worker's queue), so the
        abort path cancels what it can, terminates the worker processes,
        and leaves the shared-memory segments for :meth:`close`.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.terminate()

    def _submit(self, task: Callable, *args):
        """Submit one task to the pool (raises if the engine is closed)."""
        if self._pool is None:
            raise EngineError("ProcessEngine is closed")
        return self._pool.submit(task, self._token, *args)

    def _collect(self, futures: List) -> List[object]:
        """Await futures, converting pool failures to engine exceptions."""
        try:
            return [
                future.result(timeout=self.task_timeout)
                for future in futures
            ]
        except FutureTimeoutError as err:
            self._abort()
            raise WorkerTimeoutError(
                "a shard task did not finish within %.3gs; the worker pool "
                "was aborted and this engine is now closed"
                % self.task_timeout,
                timeout=self.task_timeout,
            ) from err
        except BrokenProcessPool as err:
            self._abort()
            raise WorkerUnavailableError(
                "a pool worker died mid-task (killed or crashed); the "
                "worker pool was aborted and this engine is now closed"
            ) from err

    def _map(self, task: Callable, *args) -> List[object]:
        """Run ``task(token, shard_index, *args)`` for every shard; shard order."""
        if self._pool is None:
            raise EngineError("ProcessEngine is closed")
        return self._collect([
            self._submit(task, index, *args)
            for index in range(self.num_shards)
        ])

    # ------------------------------------------------------------------ #
    # Kernels (ShardKernels interface + the matvec primitives)
    # ------------------------------------------------------------------ #
    def option_histograms(self) -> np.ndarray:
        """``(n, k_max)`` per-item option histograms (exact integer reduce)."""
        partials = self._map(_task_histogram, self.num_items, self.max_options)
        total = partials[0]
        for partial in partials[1:]:
            total = total + partial
        return total.reshape(self.num_items, self.max_options)

    def majority_scores(self, *, normalize_by_answers: bool = True):
        majority = self.option_histograms().argmax(axis=1).astype(int)
        agreements = np.concatenate(self._map(_task_agreements, majority))
        if normalize_by_answers:
            scores = agreements / np.maximum(self.sharded.answers_per_user, 1)
        else:
            scores = agreements.astype(float)
        return scores, majority

    def option_sums(self, user_values: np.ndarray) -> np.ndarray:
        """``C^T v``: worker-parallel gather, sequential canonical scatter."""
        vec, vec_ref = self._buffer("user_vec", (self.num_users,))
        np.copyto(vec, user_values, casting="unsafe")
        scratch, scratch_ref = self._buffer("scratch", (self.sharded.num_answers,))
        self._map(_task_gather_user, vec_ref, scratch_ref)
        return np.bincount(
            self.sharded.columns, weights=scratch,
            minlength=self.sharded.num_columns,
        )

    def user_sums(self, option_values: np.ndarray) -> np.ndarray:
        """``C v``: workers finish disjoint user row blocks (no float reduce)."""
        vec, vec_ref = self._buffer("col_vec", (self.sharded.num_columns,))
        np.copyto(vec, option_values, casting="unsafe")
        out, out_ref = self._buffer("user_out", (self.num_users,))
        self._map(_task_user_sums, vec_ref, out_ref)
        return out.copy()

    def avghits_apply(self, scores: np.ndarray) -> np.ndarray:
        """AVGHITS update ``s -> C_row ((C_col)^T s)`` — same scalings, bitwise."""
        weights = self.option_sums(scores)
        weights *= self.sharded.inv_column_counts
        updated = self.user_sums(weights)
        updated *= self.sharded.inv_answers_per_user
        return updated

    def hnd_difference_step(self) -> Callable[[np.ndarray], np.ndarray]:
        scores = np.empty(self.num_users, dtype=float)

        def diff_step(score_diffs: np.ndarray) -> np.ndarray:
            updated = self.avghits_apply(apply_cumulative_into(score_diffs, scores))
            return apply_difference(updated)

        return diff_step

    def hnd_chunk_runner(self) -> Callable[[PowerIterationDriver, int], None]:
        """Batched-iteration dispatch: k driver iterations per pool task.

        The workers hold the full triples anyway (shipped once at pool
        start-up for shard execution), so a chunk runs on a worker-local
        replica of the fused kernel — bit-identical to the in-process loop
        — and the per-task round-trip is paid once per ``k`` iterations
        instead of twice per matvec.
        """

        def run_chunk(driver: PowerIterationDriver, steps: int) -> None:
            meta, arrays = driver.export_state()
            future = self._submit(_task_hnd_chunk, meta, arrays, steps)
            new_meta, new_arrays = self._collect([future])[0]
            driver.restore_state(new_meta, new_arrays)

        return run_chunk

    def dawid_skene_accumulators(self, num_classes: int):
        num_items = self.num_items
        _, items, _ = self.source.triples
        posteriors_view, posteriors_ref = self._buffer(
            "ds_posteriors", (num_items, num_classes)
        )
        counts_view, counts_ref = self._buffer(
            "ds_counts", (self.num_users * num_classes, num_classes)
        )
        logconf_view, logconf_ref = self._buffer(
            "ds_logconf", (self.num_users * num_classes, num_classes)
        )
        gathered_view, gathered_ref = self._buffer(
            "ds_gathered", (self.sharded.num_answers, num_classes)
        )

        def count_accumulator(posteriors: np.ndarray) -> np.ndarray:
            np.copyto(posteriors_view, posteriors)
            self._map(_task_ds_counts, num_classes, posteriors_ref, counts_ref)
            return counts_view.copy()

        def loglik_accumulator(log_confusion_flat: np.ndarray) -> np.ndarray:
            np.copyto(logconf_view, log_confusion_flat)
            self._map(_task_ds_gather, num_classes, logconf_ref, gathered_ref)
            return np.stack(
                [
                    np.bincount(
                        items,
                        weights=np.ascontiguousarray(gathered_view[:, label]),
                        minlength=num_items,
                    )
                    for label in range(num_classes)
                ],
                axis=1,
            )

        return count_accumulator, loglik_accumulator


def _release(pool: Optional[ProcessPoolExecutor],
             segments: List[shared_memory.SharedMemory]) -> None:
    """Tear down pool and shared memory (used by close() and the finalizer)."""
    if pool is not None:
        pool.shutdown(wait=True)
    for segment in segments:
        # Unlink first: it always succeeds and removes the name, so the OS
        # reclaims the block once the last mapping goes away.  close() can
        # legitimately raise BufferError while a caller still holds a numpy
        # view of the buffer (e.g. an accumulator closure outliving the
        # engine); the mapping is then released when that view dies.
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass
        try:
            segment.close()
        except BufferError:  # pragma: no cover - live external view
            pass
