"""Hash-keyed LRU cache for repeated ``rank()`` calls on unchanged data.

A ranking is a pure function of ``(matrix canonical state, ranker class +
parameters)``.  PR 2 made the first half cheap to key — the canonical
triples are a normal form, so :meth:`ResponseMatrix.content_hash
<repro.core.response.ResponseMatrix.content_hash>` is an ``O(nnz)`` digest
that collides exactly on equal matrices — and :func:`ranker_fingerprint`
derives the second half from a ranker's constructor state.

:class:`RankCache` combines the two into an LRU map, so a service answering
repeated ranking queries over a slowly-changing crowd pays the full
``rank()`` cost once per (matrix, method) pair and ``O(nnz)`` hashing per
hit — at the committed 200k x 5k scenario that turns a roughly two-minute
sharded HnD-Power call into a ~38 ms warm hit, three orders of magnitude
(see ``benchmarks/BENCH_PR3.json``).  Both :class:`ResponseMatrix` and an
already-split :class:`~repro.engine.sharding.ShardedResponse` are accepted;
the key is always the underlying matrix's digest, and a pre-split sharding
is passed through to the ranker so its shard state is reused on a miss.

Nondeterministic rankers (a ``random_state`` of ``None`` or a live
``Generator``) are detected by the fingerprint and **bypass** the cache:
two calls would legitimately return different rankings, so serving a memo
would silently change semantics.

Each entry also carries a **state slot**: the
:class:`~repro.core.solver_state.SolverState` the producing solve ended in
(when the method captures one).  Scores and state are one entry — one unit
of the LRU accounting, evicted together — and :meth:`RankCache.latest_state`
is how :class:`~repro.api.session.CrowdSession` finds the newest
same-fingerprint state to warm-start from after an append makes the
content hash stale.

With a :class:`~repro.store.SnapshotStore` attached (``store=``), the LRU
gains a disk tier: a memory miss consults the store before solving (a hit
is promoted into the LRU and returns the exact stored scores — bit
identity crosses process restarts), and every computed entry is written
back **behind** the solve on the store's write-behind thread, so
durability never sits on the serving latency path.  Corrupt or foreign
records are the store's problem by contract: its lookups return ``None``
(fall back cold) rather than raising, so attaching a store can never make
``rank()`` fail.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, AbstractSet, Dict, Optional, Tuple, Union

import numpy as np

from repro.api.registry import REGISTRY
from repro.core.ranking import AbilityRanker, AbilityRanking
from repro.core.response import ResponseMatrix
from repro.core.solver_state import SolverState
from repro.engine.sharding import ShardedResponse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import SnapshotStore

RankInput = Union[ResponseMatrix, ShardedResponse]


def _fingerprint_value(value: object) -> Optional[object]:
    """A hashable, equality-faithful token for one ranker attribute.

    Returns ``None`` when the value cannot be fingerprinted faithfully
    (which marks the whole ranker uncacheable).
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return (type(value).__name__, value)
    if isinstance(value, np.dtype):
        return ("dtype", value.str)
    if isinstance(value, np.generic):
        return (type(value).__name__, value.item())
    if isinstance(value, np.ndarray):
        return ("ndarray", value.dtype.str, value.shape, value.tobytes())
    if isinstance(value, (tuple, list)):
        tokens = tuple(_fingerprint_value(item) for item in value)
        if any(token is None for token in tokens):
            return None
        return (type(value).__name__, tokens)
    if isinstance(value, dict):
        tokens = tuple(
            (key, _fingerprint_value(item)) for key, item in sorted(value.items())
        )
        if any(token is None for _, token in tokens):
            return None
        return ("dict", tokens)
    return None


def _nondeterministic_random_state(name: str, value: object) -> bool:
    """The uncacheable random-state shapes: fresh-seed-per-call or mutable."""
    return name == "random_state" and (
        value is None or isinstance(value, np.random.Generator)
    )


def ranker_fingerprint(ranker: AbilityRanker) -> Optional[Tuple]:
    """A hashable key identifying a ranker's class and parameters.

    Two rankers with equal fingerprints produce equal rankings on equal
    matrices.  Returns ``None`` — *uncacheable* — when that cannot be
    guaranteed: a method the registry marks non-cacheable, a parameter that
    cannot be faithfully tokenized, or a nondeterministic random state
    (``random_state`` of ``None`` draws a fresh seed per call; a live
    ``Generator`` mutates between calls).

    Resolution order:

    1. a ``cache_fingerprint()`` hook on the ranker (the policy adapters of
       :func:`repro.api.rank` use this to share entries across execution
       backends, which are bit-identical);
    2. the registry's param spec, for registered ranker classes and their
       sharded shims — only the declared result-affecting parameters enter
       the key, so execution knobs (shard counts, worker pools) and
       ``**kwargs``-style incidental state can never poison it with a
       silent ``None`` (cache-bypass) fingerprint;
    3. instance-``vars()`` introspection for unregistered rankers, minus
       any attributes named in ``cache_excluded_attributes``.
    """
    hook = getattr(ranker, "cache_fingerprint", None)
    if callable(hook):
        return hook()

    spec = REGISTRY.spec_for(type(ranker))
    if spec is not None:
        if not (spec.cacheable and spec.deterministic):
            return None
        tokens = []
        for param in sorted(spec.params, key=lambda p: p.name):
            try:
                value = getattr(ranker, param.attribute)
            except AttributeError:
                return None
            if _nondeterministic_random_state(param.name, value):
                return None
            token = _fingerprint_value(value)
            if token is None:
                return None
            tokens.append((param.name, token))
        return (type(ranker).__module__, type(ranker).__qualname__, tuple(tokens))

    excluded = frozenset(getattr(type(ranker), "cache_excluded_attributes", ()))
    tokens = []
    for name, value in sorted(vars(ranker).items()):
        if name in excluded:
            continue
        if _nondeterministic_random_state(name, value):
            return None
        token = _fingerprint_value(value)
        if token is None:
            return None
        tokens.append((name, token))
    return (type(ranker).__module__, type(ranker).__qualname__, tuple(tokens))


class RankCache:
    """Thread-safe LRU cache of :class:`AbilityRanking` results.

    Keys are ``(matrix content hash, ranker fingerprint)``; a hit costs one
    ``O(nnz)`` digest and one dict lookup, independent of the ranking
    method's cost.  Hits return the *stored* ranking object — treat cached
    rankings as read-only (their score arrays are shared across callers).

    Parameters
    ----------
    maxsize:
        Entries kept; the least recently used entry is evicted beyond it.
    store:
        Optional :class:`~repro.store.SnapshotStore` disk tier: memory
        misses consult it (hits are promoted into the LRU), computed
        entries are written back behind the solve, and
        :meth:`latest_state` falls through to its records.
    """

    def __init__(
        self, maxsize: int = 128, store: "Optional[SnapshotStore]" = None
    ) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1, got %d" % maxsize)
        self.maxsize = maxsize
        self.store = store
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.disk_hits = 0
        self._entries: "OrderedDict[Tuple, AbilityRanking]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def key_for(
        self, ranker: AbilityRanker, response: RankInput
    ) -> Optional[Tuple]:
        """The cache key, or ``None`` when the ranker is uncacheable.

        A :class:`ShardedResponse` keys by its underlying matrix: the
        sharding is an execution detail, not part of the answer identity
        (the sharded rankers are bit-identical at any shard count).
        """
        fingerprint = ranker_fingerprint(ranker)
        if fingerprint is None:
            return None
        matrix = (
            response.source if isinstance(response, ShardedResponse) else response
        )
        return (matrix.content_hash(), fingerprint)

    def rank(self, ranker: AbilityRanker, response: RankInput) -> AbilityRanking:
        """``ranker.rank(response)``, served from the cache when possible.

        ``response`` may be a matrix or a pre-split
        :class:`ShardedResponse`; the latter is forwarded to the ranker on
        a miss so its shard state (columns, thread pool) is reused.
        """
        key = self.key_for(ranker, response)
        if key is None:
            with self._lock:
                self.bypasses += 1
            return ranker.rank(response)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
        if self.store is not None:
            # Disk tier: an exact stored answer (bit-identical scores, the
            # producing solver state riding along) beats recomputing.  The
            # store absorbs every failure mode as a miss, so this lookup
            # cannot raise.
            record = self.store.get_snapshot(key[0], key[1])
            if record is not None:
                ranking = record.to_ranking()
                self._insert(key, ranking)
                with self._lock:
                    self.disk_hits += 1
                return ranking
        ranking = ranker.rank(response)
        self._insert(key, ranking)
        if self.store is not None:
            # Write-behind: durability off the critical path.  The ranking
            # is immutable once returned, so handing it to the store's
            # worker thread is safe.
            store, content_hash, fingerprint = self.store, key[0], key[1]
            store.defer(lambda: store.put_snapshot(
                ranking, content_hash=content_hash, fingerprint=fingerprint,
            ))
        return ranking

    def _insert(self, key: Tuple, ranking: AbilityRanking) -> None:
        with self._lock:
            self._entries[key] = ranking
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def latest_state(
        self,
        fingerprint: Optional[Tuple],
        *,
        hashes: Optional[AbstractSet[str]] = None,
    ) -> Optional[SolverState]:
        """The most recently used solver state cached under ``fingerprint``.

        This is the warm-start lookup: the cache key is ``(content hash,
        fingerprint)``, so after an append the *new* hash has no entry —
        but the newest entry of the *same method and parameters* holds the
        solver state the next solve should resume from.  ``hashes``
        restricts the search to entries whose content hash is in the given
        set: a shared cache holds states from *unrelated* crowds under the
        same fingerprint, and a foreign state must never seed a warm start
        (it could converge to the foreign crowd's optimum without tripping
        the blow-up guard), so :class:`~repro.api.session.CrowdSession`
        passes the hashes of its own crowd's history.  The state rides on
        the stored ranking itself — scores and state are one LRU slot,
        counted once in ``stats()['size']`` and evicted together.  Returns
        ``None`` when the fingerprint is ``None`` (uncacheable ranker) or
        no matching entry carries a state.
        """
        if fingerprint is None:
            return None
        with self._lock:
            for key in reversed(self._entries):
                if key[1] != fingerprint:
                    continue
                if hashes is not None and key[0] not in hashes:
                    continue
                state = getattr(self._entries[key], "state", None)
                if state is not None:
                    return state
        if self.store is not None:
            # Disk fallthrough: after a restart the LRU is empty, but the
            # store still holds the pre-restart states — same fingerprint
            # match, same lineage restriction.
            return self.store.latest_state(fingerprint, hashes=hashes)
        return None

    def clear(self) -> None:
        """Drop the in-memory entries (the disk tier is not touched)."""
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.bypasses = self.disk_hits = 0

    def stats(self) -> Dict[str, int]:
        """Counters: ``hits``/``misses``/``bypasses``/``disk_hits``/``size``."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "bypasses": self.bypasses,
                "disk_hits": self.disk_hits,
                "size": len(self._entries),
            }
