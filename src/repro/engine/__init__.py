"""Sharded execution engine: user-range shards, out-of-core ingestion, caching.

Built on the triples-native storage of PR 2: the canonical user-major
triples make user-range sharding a pure slice
(:class:`~repro.engine.sharding.ShardedResponse`), the paper's ranking
methods reduce over per-user contributions so their sufficient statistics
merge across shards (:mod:`~repro.engine.kernels`,
:mod:`~repro.engine.rankers` — bit-identical to the single-process paths),
the chunked readers stream datasets bigger than the raw input buffers
(:mod:`~repro.engine.ingest`), and the ``O(nnz)`` content hash keys an LRU
cache over repeated ``rank()`` calls (:mod:`~repro.engine.cache`).  Shard
dispatch runs serially, over a thread pool, via
:class:`~repro.engine.process_backend.ProcessEngine` over a process pool
with worker-resident shard slices, or — via
:class:`~repro.engine.remote.RemoteEngine` — over remote socket workers
with supervised failover; every mode is bit-identical.  Prefer the
:func:`repro.api.rank` entry point with an ``ExecutionPolicy`` over
constructing the ``Sharded*`` shim classes directly (deprecated).
"""

from repro.engine.sharding import ResponseShard, ShardedResponse
from repro.engine.kernels import (
    avghits_apply,
    dawid_skene_accumulators,
    hnd_difference_step,
    majority_vote_scores,
    majority_votes,
    option_histograms,
    option_sums,
    user_sums,
)
from repro.engine.rankers import (
    ShardKernels,
    ShardedDawidSkeneRanker,
    ShardedHNDPower,
    ShardedMajorityVoteRanker,
    ThreadKernels,
    rank_dawid_skene,
    rank_hnd_power,
    rank_majority_vote,
)
from repro.engine.process_backend import ProcessEngine
from repro.engine.remote import (
    ChaosProxy,
    RemoteEngine,
    SupervisionConfig,
)
from repro.engine.ingest import (
    DEFAULT_CHUNK_SIZE,
    build_from_chunks,
    iter_triples_csv,
    iter_triples_npz,
    load_sharded,
    load_streaming,
    read_csv_header,
    read_npz_metadata,
)
from repro.engine.cache import RankCache, ranker_fingerprint

__all__ = [
    "ResponseShard",
    "ShardedResponse",
    "option_histograms",
    "majority_votes",
    "majority_vote_scores",
    "option_sums",
    "user_sums",
    "avghits_apply",
    "hnd_difference_step",
    "dawid_skene_accumulators",
    "ShardedMajorityVoteRanker",
    "ShardedDawidSkeneRanker",
    "ShardedHNDPower",
    "ShardKernels",
    "ThreadKernels",
    "ProcessEngine",
    "RemoteEngine",
    "SupervisionConfig",
    "ChaosProxy",
    "rank_majority_vote",
    "rank_dawid_skene",
    "rank_hnd_power",
    "DEFAULT_CHUNK_SIZE",
    "iter_triples_npz",
    "iter_triples_csv",
    "read_csv_header",
    "read_npz_metadata",
    "build_from_chunks",
    "load_streaming",
    "load_sharded",
    "RankCache",
    "ranker_fingerprint",
]
