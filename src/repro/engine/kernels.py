"""Shard-parallel sufficient-statistic kernels (map over shards + reduce).

Every kernel here is **bit-identical** to its single-process counterpart in
:class:`~repro.core.response.CompiledResponse` /
:mod:`repro.truth_discovery` for any shard count and either dispatch mode,
by the determinism model of :mod:`repro.engine.sharding`:

* per-user outputs — shards own disjoint row blocks, reduce = concatenate;
* per-item integer histograms — reduce = exact integer partial sums;
* per-item float reductions — shards gather per-answer contributions in
  parallel, then one sequential ``np.bincount`` scatter over the canonical
  answer order performs the final sum.  ``np.bincount`` accumulates in input
  order exactly like SciPy's CSR/CSC matvec loops, which is what makes
  ``avghits_apply`` here match
  :meth:`CompiledResponse.avghits_apply <repro.core.response.CompiledResponse.avghits_apply>`
  bit for bit (pinned by ``tests/test_engine_sharding.py``).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.engine.sharding import ShardedResponse
from repro.linalg.operators import apply_cumulative_into, apply_difference
from repro.truth_discovery.majority import agreement_counts


# --------------------------------------------------------------------------- #
# Per-item integer statistics (exact partial-sum reduce)
# --------------------------------------------------------------------------- #
def option_histograms(sharded: ShardedResponse) -> np.ndarray:
    """``(n, k_max)`` per-item option histograms; integer partial-sum reduce.

    Matches ``ResponseMatrix._option_count_matrix()`` exactly (both are
    integer bincounts over the same answers).
    """
    num_items = sharded.num_items
    k = sharded.max_options

    def shard_histogram(index: int) -> np.ndarray:
        shard = sharded.shards[index]
        return np.bincount(
            shard.items * k + shard.options, minlength=num_items * k
        )

    partials = sharded.run(shard_histogram)
    total = partials[0]
    for partial in partials[1:]:
        total = total + partial
    return total.reshape(num_items, k)


def majority_votes(sharded: ShardedResponse) -> np.ndarray:
    """Most frequently picked option per item (ties to the lower index).

    Identical to :meth:`ResponseMatrix.majority_choices
    <repro.core.response.ResponseMatrix.majority_choices>`.
    """
    return option_histograms(sharded).argmax(axis=1).astype(int)


def majority_vote_scores(
    sharded: ShardedResponse, *, normalize_by_answers: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-user majority-agreement scores and the majority votes.

    The agreement counts are per-user integers — each shard counts its own
    users (via the shared :func:`~repro.truth_discovery.majority.agreement_counts`
    hook) and the rows concatenate; the final division happens once,
    elementwise, exactly as in ``MajorityVoteRanker``.
    """
    majority = majority_votes(sharded)

    def shard_agreements(index: int) -> np.ndarray:
        shard = sharded.shards[index]
        return agreement_counts(
            shard.users, shard.items, shard.options, majority,
            shard.num_users, user_offset=shard.user_start,
        )

    agreements = np.concatenate(sharded.run(shard_agreements))
    if normalize_by_answers:
        scores = agreements / np.maximum(sharded.answers_per_user, 1)
    else:
        scores = agreements.astype(float)
    return scores, majority


# --------------------------------------------------------------------------- #
# Binary-matrix matvecs (parallel gather + canonical-order scatter reduce)
# --------------------------------------------------------------------------- #
def option_sums(
    sharded: ShardedResponse,
    user_values: np.ndarray,
    *,
    scratch: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``C^T v``: per-column sums of ``user_values`` over the picking users.

    The canonical-order accumulation contract makes the scatter inherently
    sequential (one add per answer, in user-major answer order), so when the
    whole matrix shares the caller's address space — the serial and threads
    backends — splitting the work into a shard-parallel gather plus a
    separate scatter only *adds* an ``O(nnz)`` memory pass over the one-pass
    CSC matvec that performs the identical adds in the identical order.
    This therefore runs ``CompiledResponse.option_sums`` on the source
    matrix directly: bit-identical by the same equivalence the old gather +
    ``np.bincount`` reduce was pinned by (``tests/test_engine_sharding.py``
    still asserts exact equality), and ~2x less memory traffic.  The
    cross-process backends keep the explicit gather/scatter split in their
    own kernels — there the gather is what moves per-answer contributions
    out of the workers.

    ``scratch`` is accepted (and ignored) for signature compatibility with
    the gather-based formulation.
    """
    user_values = np.asarray(user_values, dtype=float)
    return sharded.source.compiled.option_sums(user_values)


def user_sums(
    sharded: ShardedResponse,
    option_values: np.ndarray,
    *,
    scratch: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``C v``: per-user sums of ``option_values`` over each user's picks.

    Fully shard-parallel — each shard runs one fused SciPy CSR matvec over
    its cached one-hot block (:attr:`ShardedResponse.shard_blocks`) into its
    own row block of the output.  The per-row accumulation order of the CSR
    matvec is the canonical answer order, i.e. exactly the order of the
    ``CompiledResponse.user_sums`` matvec (and of the gather + ``bincount``
    formulation this replaced), so the result is bit-identical at any shard
    count.  ``scratch`` is accepted for signature compatibility with
    :func:`option_sums` but no longer needed: the fused matvec has no
    separate ``O(nnz)`` gather pass.
    """
    option_values = np.asarray(option_values, dtype=float)
    # The shards partition the user axis and every shard assigns its whole
    # row block below, so the output needs no zero-fill.
    out = np.empty(sharded.num_users, dtype=float)
    blocks = sharded.shard_blocks

    def shard_sums(index: int) -> None:
        shard = sharded.shards[index]
        if shard.num_users == 0:
            return
        out[shard.user_start:shard.user_stop] = blocks[index] @ option_values

    sharded.run(shard_sums)
    return out


def avghits_apply(
    sharded: ShardedResponse,
    scores: np.ndarray,
    *,
    scratch: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Sharded AVGHITS update ``s -> C_row ((C_col)^T s)`` in ``O(nnz)``.

    The two normalizations are the same ``O(K)``/``O(m)`` diagonal scalings
    the fused single-process kernel applies, on bitwise-equal count inverses,
    so the whole update matches ``CompiledResponse.avghits_apply`` bit for
    bit at any shard count.  ``scratch`` as in :func:`option_sums` (the two
    halves use it sequentially, so one buffer serves both).
    """
    weights = option_sums(sharded, scores, scratch=scratch)
    weights *= sharded.inv_column_counts
    updated = user_sums(sharded, weights, scratch=scratch)
    updated *= sharded.inv_answers_per_user
    return updated


def hnd_difference_step(
    sharded: ShardedResponse,
) -> Callable[[np.ndarray], np.ndarray]:
    """Sharded HND update ``s_diff -> S C_row ((C_col)^T (T s_diff))``.

    The sharded twin of :func:`repro.core.avghits.hnd_difference_step`: the
    ``O(m)`` cumulative-sum and difference wrappers are shared code, and the
    AVGHITS core is :func:`avghits_apply` above.  The ``O(m)`` score and
    ``O(nnz)`` gather buffers are hoisted into the closure — one allocation
    per ``rank()`` call instead of two per power iteration — and stay
    private to it, so concurrent calls on one sharding remain safe.
    """
    scores = np.empty(sharded.num_users, dtype=float)
    scratch = np.empty(sharded.num_answers, dtype=float)

    def diff_step(score_diffs: np.ndarray) -> np.ndarray:
        updated = avghits_apply(
            sharded, apply_cumulative_into(score_diffs, scores), scratch=scratch
        )
        return apply_difference(updated)

    return diff_step


# --------------------------------------------------------------------------- #
# Dawid–Skene sufficient statistics
# --------------------------------------------------------------------------- #
def dawid_skene_accumulators(
    sharded: ShardedResponse, num_classes: int
) -> Tuple[Callable[[np.ndarray], np.ndarray], Callable[[np.ndarray], np.ndarray]]:
    """The two EM accumulators of :func:`repro.truth_discovery.dawid_skene.dawid_skene_em`.

    * ``count_accumulator`` (M-step): per-user confusion counts are disjoint
      row blocks of the ``(m*k, k)`` count matrix — each shard bincounts its
      own ``(user, option)`` keys and the blocks stack in shard order.
    * ``loglik_accumulator`` (E-step): per-item sums of per-answer
      log-confusion rows — shards gather their answers' rows in parallel,
      then ``k`` sequential bincounts over the canonical order reduce them.

    Both reproduce the sparse indicator-matrix products of
    ``DawidSkeneRanker`` bit for bit (same contributions, same accumulation
    order), so the shared EM loop walks an identical trajectory.
    """
    num_items = sharded.num_items
    cuts = sharded.answer_cuts
    _, items, _ = sharded.source.triples
    gathered = np.empty((sharded.num_answers, num_classes), dtype=float)

    def count_accumulator(posteriors: np.ndarray) -> np.ndarray:
        def shard_counts(index: int) -> np.ndarray:
            shard = sharded.shards[index]
            keys = shard.local_users * num_classes + shard.options
            minlength = shard.num_users * num_classes
            return np.stack(
                [
                    np.bincount(
                        keys,
                        weights=posteriors[shard.items, label],
                        minlength=minlength,
                    )
                    for label in range(num_classes)
                ],
                axis=1,
            )

        return np.concatenate(sharded.run(shard_counts), axis=0)

    def loglik_accumulator(log_confusion_flat: np.ndarray) -> np.ndarray:
        def gather(index: int) -> None:
            shard = sharded.shards[index]
            keys = shard.users * num_classes + shard.options
            gathered[cuts[index]:cuts[index + 1]] = log_confusion_flat[keys]

        sharded.run(gather)
        return np.stack(
            [
                np.bincount(
                    items,
                    weights=np.ascontiguousarray(gathered[:, label]),
                    minlength=num_items,
                )
                for label in range(num_classes)
            ],
            axis=1,
        )

    return count_accumulator, loglik_accumulator
