"""Length-prefixed, checksummed socket framing for the remote backend.

One message is one frame::

    MAGIC (4 bytes, b"RPR1") | crc32 (u32) | payload length (u32) | payload

and the payload is::

    header length (u32) | header JSON (utf-8) | raw array buffers

The JSON header carries the operation name, a small metadata dict (shard
ids, class counts — plain integers), and a descriptor ``[name, dtype,
shape]`` per array; the array buffers follow back-to-back in descriptor
order as raw C-contiguous bytes.  Nothing is pickled: the wire format is
JSON plus ``ndarray.tobytes()``, so a corrupted or malicious peer can at
worst produce a :class:`~repro.exceptions.ProtocolError`, never code
execution.

The crc32 covers the payload, which is what catches the chaos proxy's
bit-flip fault: a corrupted frame fails the checksum and raises
:class:`~repro.exceptions.ProtocolError` instead of silently yielding a
wrong array.  Truncation (EOF mid-frame) and a bad magic likewise raise;
a clean EOF *between* frames raises :class:`ConnectionClosed`, which the
supervision layer treats as a retriable connection loss.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ProtocolError

MAGIC = b"RPR1"
_PREFIX = struct.Struct("!II")  # crc32, payload length
_HEADER_LEN = struct.Struct("!I")

#: Refuse frames beyond this size (2 GiB) — a corrupted length prefix must
#: not make the receiver attempt an absurd allocation.
MAX_PAYLOAD = 2 << 30


class ConnectionClosed(ProtocolError):
    """The peer closed the connection at a frame boundary (clean EOF)."""


def encode_message(
    op: str,
    meta: Optional[Dict[str, object]] = None,
    arrays: Optional[Dict[str, np.ndarray]] = None,
) -> bytes:
    """Serialize one message to a complete wire frame."""
    buffers = []
    descriptors = []
    for name, array in (arrays or {}).items():
        array = np.ascontiguousarray(array)
        descriptors.append([name, array.dtype.str, list(array.shape)])
        buffers.append(array.tobytes())
    header = json.dumps(
        {"op": op, "meta": meta or {}, "arrays": descriptors},
        separators=(",", ":"),
    ).encode("utf-8")
    payload = b"".join([_HEADER_LEN.pack(len(header)), header, *buffers])
    return b"".join(
        [MAGIC, _PREFIX.pack(zlib.crc32(payload), len(payload)), payload]
    )


def send_message(
    sock: socket.socket,
    op: str,
    meta: Optional[Dict[str, object]] = None,
    arrays: Optional[Dict[str, np.ndarray]] = None,
) -> None:
    sock.sendall(encode_message(op, meta, arrays))


def _recv_exact(sock: socket.socket, num_bytes: int, *,
                at_boundary: bool) -> bytes:
    """Read exactly ``num_bytes``; distinguish clean EOF from truncation."""
    pieces = []
    remaining = num_bytes
    while remaining > 0:
        piece = sock.recv(min(remaining, 1 << 20))
        if not piece:
            if at_boundary and remaining == num_bytes:
                raise ConnectionClosed("connection closed by peer")
            raise ProtocolError(
                "connection closed mid-frame (%d of %d bytes missing)"
                % (remaining, num_bytes)
            )
        pieces.append(piece)
        remaining -= len(piece)
    return pieces[0] if len(pieces) == 1 else b"".join(pieces)


#: Bytes of the fixed frame prefix (magic + crc32 + payload length) — the
#: first read of any receiver, blocking or asyncio.
PREFIX_SIZE = len(MAGIC) + _PREFIX.size


def parse_prefix(prefix: bytes) -> Tuple[int, int]:
    """Validate a frame prefix; returns ``(checksum, payload length)``.

    Shared by the blocking :func:`recv_message` and the asyncio receiver
    in :mod:`repro.serve` — one place rejects a bad magic or an absurd
    length, whoever owns the socket.
    """
    if prefix[:4] != MAGIC:
        raise ProtocolError(
            "bad frame magic %r (expected %r)" % (prefix[:4], MAGIC)
        )
    checksum, length = _PREFIX.unpack(prefix[4:])
    if length > MAX_PAYLOAD:
        raise ProtocolError(
            "frame payload length %d exceeds the %d-byte cap (corrupted "
            "length prefix?)" % (length, MAX_PAYLOAD)
        )
    return checksum, length


def decode_payload(
    payload: bytes, checksum: Optional[int] = None
) -> Tuple[str, Dict[str, object], Dict[str, np.ndarray]]:
    """Decode a received payload; returns ``(op, meta, arrays)``.

    Verifies the crc32 when ``checksum`` is given.  Array values are
    read-only views over ``payload``.  The payload-parsing half of
    :func:`recv_message`, split out so transports that already hold the
    complete frame bytes (the asyncio server) reuse the exact validation.
    """
    if checksum is not None and zlib.crc32(payload) != checksum:
        raise ProtocolError(
            "frame checksum mismatch (payload corrupted in transit)"
        )
    try:
        (header_len,) = _HEADER_LEN.unpack_from(payload)
        header = json.loads(payload[4:4 + header_len].decode("utf-8"))
        op = header["op"]
        meta = header["meta"]
        descriptors = header["arrays"]
    except (struct.error, ValueError, KeyError, UnicodeDecodeError) as err:
        raise ProtocolError("malformed frame header: %s" % err) from err
    arrays: Dict[str, np.ndarray] = {}
    offset = 4 + header_len
    for descriptor in descriptors:
        try:
            name, dtype_str, shape = descriptor
            dtype = np.dtype(dtype_str)
            shape = tuple(int(dim) for dim in shape)
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            nbytes = count * dtype.itemsize
            if offset + nbytes > len(payload):
                raise ValueError(
                    "array %r extends %d bytes past the payload"
                    % (name, offset + nbytes - len(payload))
                )
            arrays[name] = np.frombuffer(
                payload, dtype=dtype, count=count, offset=offset
            ).reshape(shape)
            offset += nbytes
        except (TypeError, ValueError) as err:
            raise ProtocolError("malformed array descriptor: %s" % err) from err
    if offset != len(payload):
        raise ProtocolError(
            "frame has %d trailing bytes after the declared arrays"
            % (len(payload) - offset)
        )
    return op, meta, arrays


def recv_message(
    sock: socket.socket,
) -> Tuple[str, Dict[str, object], Dict[str, np.ndarray]]:
    """Receive one frame; returns ``(op, meta, arrays)``.

    Raises :class:`~repro.exceptions.ProtocolError` on any malformed
    frame and :class:`ConnectionClosed` on clean EOF between frames.
    Array values are read-only views over the received payload.
    """
    prefix = _recv_exact(sock, PREFIX_SIZE, at_boundary=True)
    checksum, length = parse_prefix(prefix)
    payload = _recv_exact(sock, length, at_boundary=False)
    return decode_payload(payload, checksum)
