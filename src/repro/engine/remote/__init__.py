"""Remote execution backend: shard kernels behind a socket boundary.

The process backend (PR 4) already shaped its worker protocol like a
network transport — shard slices shipped once, small per-iteration vectors
exchanged, every float reduction performed in the parent in canonical
answer order.  This package moves that protocol onto real sockets and adds
the failure handling a network needs:

* :mod:`~repro.engine.remote.protocol` — length-prefixed, checksummed
  message framing for numpy arrays.
* :mod:`~repro.engine.remote.worker` — a standalone worker process
  (``python -m repro.engine.remote.worker --port N``) holding shard slices
  and answering per-iteration kernel requests.
* :mod:`~repro.engine.remote.supervision` — per-request timeouts,
  retry with exponential backoff and jitter, heartbeats, and a per-worker
  circuit breaker.
* :mod:`~repro.engine.remote.coordinator` — :class:`RemoteEngine`, a
  :class:`~repro.engine.rankers.ShardKernels` implementation that keeps
  all float reductions coordinator-side, so remote scores stay
  bit-identical to the fused/threads/processes backends, and reassigns a
  dead worker's shards to a survivor (or solves them coordinator-local)
  without changing a single bit of the result.
* :mod:`~repro.engine.remote.chaos` — a fault-injecting TCP proxy used by
  the fault-injection harness and CI chaos job.
"""

from repro.engine.remote.chaos import ChaosProxy
from repro.engine.remote.coordinator import RemoteEngine
from repro.engine.remote.supervision import (
    CircuitBreaker,
    SupervisionConfig,
    WorkerClient,
)
from repro.engine.remote.worker import ShardStore, WorkerServer

__all__ = [
    "ChaosProxy",
    "CircuitBreaker",
    "RemoteEngine",
    "ShardStore",
    "SupervisionConfig",
    "WorkerClient",
    "WorkerServer",
]
