"""The remote coordinator: :class:`RemoteEngine`, shard kernels over sockets.

Data plane (mirrors :class:`~repro.engine.process_backend.ProcessEngine`):

* **shard slices are shipped once**, at engine construction, round-robin
  over the configured workers.  Any worker can hold any shard, which is
  what makes reassignment possible.
* **per-iteration messages are small.**  Requests carry only the vector
  slice a shard can touch (user-range slices for gathers, the full
  option/posterior tables where answers index globally); replies carry the
  shard's gathered contributions or its disjoint user-row block.
* **every float reduction happens here, in canonical answer order** — the
  single sequential ``np.bincount`` scatter over the canonical triples,
  exactly the accumulation order of the fused kernels, the thread backend,
  and the process backend.  Workers never sum across answers that the
  fused kernels would not sum in the same order, so remote scores are
  **bit-identical to every other backend at any shard/worker count** — a
  property that survives worker loss, because a reassigned (or
  coordinator-local) shard computes the same shard-pure function.

Failure plane: requests go through
:class:`~repro.engine.remote.supervision.WorkerClient` (timeouts, retries
with backoff, circuit breaker, heartbeats).  When a worker is declared
lost — retries exhausted, breaker open, or connection refused — the
coordinator re-ships its shards to the least-loaded survivor, cascading
if that one fails too, and falls back to computing the shard locally
(through the same :class:`~repro.engine.remote.worker.ShardStore` code the
workers run) when no workers remain.  Reassignment is recorded in the
event log surfaced by :meth:`RemoteEngine.events` and counted in
``diagnostics()``.
"""

from __future__ import annotations

import threading
import weakref
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.rankers import ShardKernels
from repro.engine.remote.supervision import (
    HeartbeatMonitor,
    SupervisionConfig,
    WorkerClient,
)
from repro.engine.remote.worker import ShardStore
from repro.engine.sharding import ShardedResponse
from repro.exceptions import (
    CircuitOpenError,
    EngineError,
    WorkerTimeoutError,
    WorkerUnavailableError,
)
from repro.linalg.operators import apply_cumulative_into, apply_difference

WorkerAddress = Union[str, Tuple[str, int]]

#: Transport-level failures that trigger shard reassignment.
_FAILOVER_ERRORS = (WorkerUnavailableError, WorkerTimeoutError,
                    CircuitOpenError)


def parse_worker_address(value: WorkerAddress) -> Tuple[str, int]:
    """Normalize ``"host:port"`` / ``(host, port)`` to a ``(host, port)``."""
    if isinstance(value, str):
        host, sep, port = value.rpartition(":")
        if not sep or not host:
            raise ValueError(
                "worker address %r is not of the form host:port" % value
            )
        value = (host, port)
    host, port = value
    try:
        port = int(port)
    except (TypeError, ValueError):
        raise ValueError("worker port %r is not an integer" % (port,))
    if not 0 < port < 65536:
        raise ValueError("worker port %d out of range" % port)
    return str(host), port


class RemoteEngine(ShardKernels):
    """Shard kernels dispatched to remote workers with failover.

    Parameters
    ----------
    sharded:
        The sharding to execute over.
    workers:
        Worker addresses (``"host:port"`` strings or ``(host, port)``
        pairs).  At least one is required; the engine connects and ships
        shard slices immediately.
    supervision:
        Timeout/retry/breaker/heartbeat knobs; defaults to
        :class:`~repro.engine.remote.supervision.SupervisionConfig`.
    local_fallback:
        When every worker is lost, solve orphaned shards in-process
        (default).  ``False`` raises
        :class:`~repro.exceptions.WorkerUnavailableError` instead —
        for callers that must not absorb remote load.
    iteration_batch:
        Solver iterations executed per ``hnd_chunk`` dispatch (default 1 —
        per-op dispatch, the pre-batching behaviour).  Above 1 the HnD
        power loop ships its serialized driver state and runs ``k``
        iterations per socket round-trip on a worker-held full replica
        (shipped once per worker, like shard slices); every value produces
        the same bits.

    Notes
    -----
    The engine owns sockets and a dispatch thread pool; use it as a
    context manager or call :meth:`close`.  It does **not** own the worker
    processes — :meth:`shutdown_workers` asks them to exit, for harnesses
    that want a clean teardown.
    """

    backend = "remote"

    def __init__(
        self,
        sharded: ShardedResponse,
        workers: Sequence[WorkerAddress],
        *,
        supervision: Optional[SupervisionConfig] = None,
        local_fallback: bool = True,
        iteration_batch: int = 1,
    ) -> None:
        if not workers:
            raise ValueError("remote backend needs at least one worker "
                             "address (host:port)")
        if int(iteration_batch) < 1:
            raise ValueError("iteration_batch must be >= 1, got %r"
                             % iteration_batch)
        self.sharded = sharded
        self.config = supervision or SupervisionConfig()
        self.local_fallback = bool(local_fallback)
        self.iteration_batch = int(iteration_batch)
        self._replica_on: set = set()
        self._local_diff_step = None
        addresses = [parse_worker_address(worker) for worker in workers]
        self._clients = [WorkerClient(host, port, self.config)
                         for host, port in addresses]
        self.num_workers = len(self._clients)
        self._alive = [True] * self.num_workers
        self._assignment: List[Optional[int]] = [None] * sharded.num_shards
        self._local_store: Optional[ShardStore] = None
        self._state_lock = threading.RLock()
        # Bounded so a flapping worker cannot grow memory without limit.
        self._events: "deque[Dict[str, object]]" = deque(maxlen=1000)
        self._reassignments = 0
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=min(max(sharded.num_shards, 1), 8),
            thread_name_prefix="repro-remote",
        )
        self._monitor = HeartbeatMonitor(
            dict(enumerate(self._clients)), self.config, self._event
        )
        self._finalizer = weakref.finalize(
            self, _release, self._clients, self._pool, self._monitor
        )
        try:
            self._ship_all()
        except Exception:
            self.close()
            raise
        self._monitor.start()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop heartbeats, close connections, shut the dispatch pool."""
        self._finalizer.detach()
        self._closed = True
        _release(self._clients, self._pool, self._monitor)

    def __enter__(self) -> "RemoteEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def shutdown_workers(self) -> None:
        """Best-effort ``shutdown`` request to every still-alive worker."""
        for index, client in enumerate(self._clients):
            if not self._alive[index]:
                continue
            try:
                client.request("shutdown")
            except EngineError:
                pass

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def source(self):
        return self.sharded.source

    @property
    def num_shards(self) -> int:
        return self.sharded.num_shards

    def events(self) -> List[Dict[str, object]]:
        """A copy of the supervision event log (reassignments, failures)."""
        with self._state_lock:
            return list(self._events)

    def diagnostics(self) -> Dict[str, object]:
        info = super().diagnostics()
        with self._state_lock:
            info["num_workers"] = self.num_workers
            info["alive_workers"] = sum(self._alive)
            info["local_shards"] = self._assignment.count(None)
            info["reassignments"] = self._reassignments
        return info

    def _event(self, kind: str, **details: object) -> None:
        with self._state_lock:
            self._events.append({"event": kind, **details})

    # ------------------------------------------------------------------ #
    # Shard placement
    # ------------------------------------------------------------------ #
    def _shard_payload(self, shard_id: int):
        """The slices shipped for one shard (meta, arrays)."""
        users, items, options = self.sharded.source.triples
        cuts = self.sharded.answer_cuts
        boundaries = self.sharded.boundaries
        lo, hi = int(cuts[shard_id]), int(cuts[shard_id + 1])
        start, stop = int(boundaries[shard_id]), int(boundaries[shard_id + 1])
        meta = {"shard_id": shard_id, "user_start": start, "user_stop": stop}
        arrays = {
            "users": users[lo:hi],
            "items": items[lo:hi],
            "options": options[lo:hi],
            "columns": self.sharded.columns[lo:hi],
        }
        return meta, arrays

    def _ship(self, shard_id: int, worker_index: int) -> None:
        meta, arrays = self._shard_payload(shard_id)
        self._clients[worker_index].request("load_shard", meta, arrays,
                                            shard=shard_id)

    def _ship_all(self) -> None:
        pending = deque()
        for shard_id in range(self.num_shards):
            worker_index = shard_id % self.num_workers
            if self._alive[worker_index]:
                try:
                    self._ship(shard_id, worker_index)
                    self._assignment[shard_id] = worker_index
                    continue
                except _FAILOVER_ERRORS as err:
                    pending.extend(self._mark_dead(worker_index, err))
            pending.append(shard_id)
        self._place_orphans(pending)

    def _mark_dead(self, worker_index: int, err: BaseException) -> List[int]:
        """Declare a worker lost; returns the shards it orphans (idempotent)."""
        with self._state_lock:
            if not self._alive[worker_index]:
                return []
            self._alive[worker_index] = False
            orphans = [shard_id
                       for shard_id, owner in enumerate(self._assignment)
                       if owner == worker_index]
            for shard_id in orphans:
                self._assignment[shard_id] = -1  # in flight, owner pending
            self._event(
                "worker_lost", worker=self._clients[worker_index].address,
                shards=orphans, error=str(err), etype=type(err).__name__,
            )
        self._monitor.forget(worker_index)
        self._clients[worker_index].close()
        return orphans

    def _pick_target(self) -> Optional[int]:
        with self._state_lock:
            alive = [index for index in range(self.num_workers)
                     if self._alive[index]]
            if not alive:
                return None
            return min(alive, key=lambda index: (
                sum(1 for owner in self._assignment if owner == index), index
            ))

    def _place_orphans(self, pending: "deque[int]") -> None:
        """Re-ship orphaned shards to survivors, cascading; local last."""
        while pending:
            shard_id = pending.popleft()
            while True:
                target = self._pick_target()
                if target is None:
                    try:
                        self._assign_local(shard_id)
                    except WorkerUnavailableError:
                        # Mark every orphan as lost so concurrent dispatch
                        # threads fail typed instead of waiting forever.
                        with self._state_lock:
                            self._assignment[shard_id] = -2
                            for orphan in pending:
                                self._assignment[orphan] = -2
                        raise
                    break
                try:
                    self._ship(shard_id, target)
                except _FAILOVER_ERRORS as err:
                    pending.extend(self._mark_dead(target, err))
                    continue
                with self._state_lock:
                    self._assignment[shard_id] = target
                    self._reassignments += 1
                self._event("shard_reassigned", shard=shard_id,
                            worker=self._clients[target].address)
                break

    def _assign_local(self, shard_id: int) -> None:
        if not self.local_fallback:
            raise WorkerUnavailableError(
                "all %d remote workers are unavailable and local fallback "
                "is disabled" % self.num_workers, shard=shard_id,
            )
        with self._state_lock:
            if self._local_store is None:
                self._local_store = ShardStore()
            store = self._local_store
            meta, arrays = self._shard_payload(shard_id)
            store.load_shard(
                shard_id, arrays["users"], arrays["items"], arrays["options"],
                arrays["columns"], meta["user_start"], meta["user_stop"],
            )
            self._assignment[shard_id] = None
            self._reassignments += 1
        self._event("shard_local", shard=shard_id)

    def _handle_worker_failure(self, worker_index: int,
                               err: BaseException) -> None:
        with self._state_lock:  # serialize concurrent failure handling
            orphans = deque(self._mark_dead(worker_index, err))
            self._place_orphans(orphans)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _shard_request(self, shard_id: int, op: str,
                       meta: Dict[str, object],
                       arrays: Dict[str, np.ndarray]) -> np.ndarray:
        """One shard op, surviving worker loss via reassignment."""
        while True:
            with self._state_lock:
                owner = self._assignment[shard_id]
            if owner is None:
                return self._local_compute(shard_id, op, meta, arrays)
            if owner == -2:  # reassignment failed terminally
                raise WorkerUnavailableError(
                    "shard %d lost: all remote workers unavailable and "
                    "local fallback is disabled" % shard_id, shard=shard_id,
                )
            if owner == -1:
                # Reassignment in flight on another thread; acquiring the
                # state lock blocks until the handler resolves it.
                with self._state_lock:
                    continue
            try:
                _, reply = self._clients[owner].request(
                    op, {**meta, "shard_id": shard_id}, arrays, shard=shard_id
                )
                return np.asarray(reply["out"])
            except _FAILOVER_ERRORS as err:
                self._handle_worker_failure(owner, err)

    def _local_compute(self, shard_id: int, op: str,
                       meta: Dict[str, object],
                       arrays: Dict[str, np.ndarray]) -> np.ndarray:
        store = self._local_store
        if store is None or shard_id not in store:  # pragma: no cover
            raise EngineError("shard %d has no owner and no local copy"
                              % shard_id, shard=shard_id)
        if op == "gather_user":
            return store.gather_user(shard_id, arrays["vec"])
        if op == "user_sums":
            return store.user_sums(shard_id, arrays["vec"])
        if op == "histogram":
            return store.histogram(shard_id, int(meta["num_items"]),
                                   int(meta["k"]))
        if op == "agreements":
            return store.agreements(shard_id, arrays["majority"])
        if op == "ds_counts":
            return store.ds_counts(shard_id, int(meta["num_classes"]),
                                   arrays["posteriors"])
        if op == "ds_gather":
            return store.ds_gather(shard_id, int(meta["num_classes"]),
                                   arrays["logconf"])
        raise EngineError("unknown local op %r" % op, shard=shard_id)

    def _map(
        self,
        op: str,
        request_for: Callable[[int], Tuple[Dict[str, object],
                                           Dict[str, np.ndarray]]],
    ) -> List[np.ndarray]:
        """Run one op on every shard (worker-concurrent); shard order."""
        if self._closed:
            raise EngineError("RemoteEngine is closed")
        futures = []
        for shard_id in range(self.num_shards):
            meta, arrays = request_for(shard_id)
            futures.append(self._pool.submit(
                self._shard_request, shard_id, op, meta, arrays
            ))
        return [future.result() for future in futures]

    def _shard_bounds(self, shard_id: int) -> Tuple[int, int, int, int]:
        cuts = self.sharded.answer_cuts
        boundaries = self.sharded.boundaries
        return (int(cuts[shard_id]), int(cuts[shard_id + 1]),
                int(boundaries[shard_id]), int(boundaries[shard_id + 1]))

    # ------------------------------------------------------------------ #
    # Kernels (ShardKernels interface + the matvec primitives)
    # ------------------------------------------------------------------ #
    def option_histograms(self) -> np.ndarray:
        """``(n, k_max)`` per-item option histograms (exact integer reduce)."""
        k = self.max_options
        partials = self._map(
            "histogram",
            lambda s: ({"num_items": self.num_items, "k": k}, {}),
        )
        total = partials[0]
        for partial in partials[1:]:
            total = total + partial
        return total.reshape(self.num_items, self.max_options)

    def majority_scores(self, *, normalize_by_answers: bool = True):
        majority = self.option_histograms().argmax(axis=1).astype(int)
        blocks = self._map("agreements", lambda s: ({}, {"majority": majority}))
        agreements = np.concatenate(blocks)
        if normalize_by_answers:
            scores = agreements / np.maximum(self.sharded.answers_per_user, 1)
        else:
            scores = agreements.astype(float)
        return scores, majority

    def option_sums(self, user_values: np.ndarray) -> np.ndarray:
        """``C^T v``: worker-parallel gather, sequential canonical scatter."""
        vec = np.ascontiguousarray(user_values, dtype=np.float64)

        def request_for(shard_id: int):
            _, _, start, stop = self._shard_bounds(shard_id)
            return {}, {"vec": vec[start:stop]}

        gathered = self._map("gather_user", request_for)
        scratch = np.empty(self.sharded.num_answers, dtype=np.float64)
        for shard_id, block in enumerate(gathered):
            lo, hi, _, _ = self._shard_bounds(shard_id)
            scratch[lo:hi] = block
        return np.bincount(
            self.sharded.columns, weights=scratch,
            minlength=self.sharded.num_columns,
        )

    def user_sums(self, option_values: np.ndarray) -> np.ndarray:
        """``C v``: workers finish disjoint user row blocks (no float reduce)."""
        vec = np.ascontiguousarray(option_values, dtype=np.float64)
        blocks = self._map("user_sums", lambda s: ({}, {"vec": vec}))
        return np.concatenate([np.asarray(block, dtype=np.float64)
                               for block in blocks])

    def avghits_apply(self, scores: np.ndarray) -> np.ndarray:
        """AVGHITS update ``s -> C_row ((C_col)^T s)`` — same scalings, bitwise."""
        weights = self.option_sums(scores)
        weights *= self.sharded.inv_column_counts
        updated = self.user_sums(weights)
        updated *= self.sharded.inv_answers_per_user
        return updated

    def hnd_difference_step(self) -> Callable[[np.ndarray], np.ndarray]:
        scores = np.empty(self.num_users, dtype=float)

        def diff_step(score_diffs: np.ndarray) -> np.ndarray:
            updated = self.avghits_apply(apply_cumulative_into(score_diffs, scores))
            return apply_difference(updated)

        return diff_step

    # ------------------------------------------------------------------ #
    # Batched-iteration dispatch (full-replica chunks)
    # ------------------------------------------------------------------ #
    def _replica_payload(self):
        source = self.sharded.source
        users, items, options = source.triples
        meta = {"num_users": source.num_users, "num_items": source.num_items}
        arrays = {
            "users": users,
            "items": items,
            "options": options,
            "num_options": np.asarray(source.num_options, dtype=np.int64),
        }
        return meta, arrays

    def _ensure_replica(self, worker_index: int) -> None:
        """Ship the full triples to a worker once (tracked per worker)."""
        with self._state_lock:
            shipped = worker_index in self._replica_on
        if shipped:
            return
        meta, arrays = self._replica_payload()
        self._clients[worker_index].request("load_replica", meta, arrays)
        with self._state_lock:
            self._replica_on.add(worker_index)

    def _local_hnd_step(self) -> Callable[[np.ndarray], np.ndarray]:
        """Coordinator-local fused difference step (total-worker-loss path).

        The coordinator holds the full source matrix anyway, so the local
        fallback for a chunk is simply the fused kernel — bit-identical to
        the replica the workers run.
        """
        if self._local_diff_step is None:
            from repro.core.avghits import hnd_difference_step as fused_step

            self._local_diff_step = fused_step(self.sharded.source)
        return self._local_diff_step

    def hnd_chunk_runner(self) -> Callable:
        """Batched-iteration dispatch: k driver iterations per round-trip.

        A chunk is a pure state-in/state-out function of the immutable
        replica, so failover is plain retry: if the worker dies mid-chunk
        the same input state is re-sent to a survivor (or advanced on the
        coordinator's own fused kernel once none remain), producing the
        same bytes the lost worker would have produced.
        """

        def run_chunk(driver, steps: int) -> None:
            state_meta, state_arrays = driver.export_state()
            while True:
                target = self._pick_target()
                if target is None:
                    if not self.local_fallback:
                        raise WorkerUnavailableError(
                            "all %d remote workers are unavailable and "
                            "local fallback is disabled" % self.num_workers,
                        )
                    original = driver.matvec
                    driver.matvec = self._local_hnd_step()
                    try:
                        driver.advance(steps)
                    finally:
                        driver.matvec = original
                    return
                try:
                    self._ensure_replica(target)
                    reply_meta, reply_arrays = self._clients[target].request(
                        "hnd_chunk",
                        {"steps": int(steps), "state": state_meta},
                        state_arrays,
                    )
                    driver.restore_state(reply_meta["state"], reply_arrays)
                    return
                except _FAILOVER_ERRORS as err:
                    with self._state_lock:
                        self._replica_on.discard(target)
                    self._handle_worker_failure(target, err)

        return run_chunk

    def dawid_skene_accumulators(self, num_classes: int):
        num_items = self.num_items
        _, items, _ = self.source.triples

        def count_accumulator(posteriors: np.ndarray) -> np.ndarray:
            table = np.ascontiguousarray(posteriors, dtype=np.float64)
            blocks = self._map(
                "ds_counts",
                lambda s: ({"num_classes": num_classes},
                           {"posteriors": table}),
            )
            return np.concatenate(
                [np.asarray(block, dtype=np.float64) for block in blocks],
                axis=0,
            )

        def loglik_accumulator(log_confusion_flat: np.ndarray) -> np.ndarray:
            flat = np.ascontiguousarray(log_confusion_flat, dtype=np.float64)

            def request_for(shard_id: int):
                _, _, start, stop = self._shard_bounds(shard_id)
                return (
                    {"num_classes": num_classes},
                    {"logconf": flat[start * num_classes:stop * num_classes]},
                )

            blocks = self._map("ds_gather", request_for)
            gathered = np.empty((self.sharded.num_answers, num_classes),
                                dtype=np.float64)
            for shard_id, block in enumerate(blocks):
                lo, hi, _, _ = self._shard_bounds(shard_id)
                gathered[lo:hi, :] = np.asarray(block).reshape(hi - lo,
                                                               num_classes)
            return np.stack(
                [
                    np.bincount(
                        items,
                        weights=np.ascontiguousarray(gathered[:, label]),
                        minlength=num_items,
                    )
                    for label in range(num_classes)
                ],
                axis=1,
            )

        return count_accumulator, loglik_accumulator


def _release(clients: List[WorkerClient], pool: ThreadPoolExecutor,
             monitor: HeartbeatMonitor) -> None:
    """Tear down sockets and threads (used by close() and the finalizer)."""
    monitor.stop()
    for client in clients:
        client.close()
    pool.shutdown(wait=False, cancel_futures=True)
