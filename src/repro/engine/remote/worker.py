"""Standalone remote worker: holds shard slices, answers kernel requests.

Launch with ``python -m repro.engine.remote.worker --port N`` (``--port 0``
picks an ephemeral port).  The worker prints a single ``READY host=...
port=...`` line to stdout once it is accepting connections — harnesses and
CI parse that line to learn the bound port.

The compute lives in :class:`ShardStore`, a plain in-memory map from shard
id to its triple slices with one pure numpy method per kernel op.  Each
method mirrors the corresponding task function of
:mod:`repro.engine.process_backend` *exactly* — same ``np.bincount`` keys,
same weight gathers, same accumulation order — which is what keeps remote
results bit-identical to the other backends.  The coordinator instantiates
its own :class:`ShardStore` for the coordinator-local fallback path, so a
shard solved locally after a total worker loss produces the same bytes it
would have produced remotely.

The server is deliberately small: a listening socket, a thread per
connection, no framework.  Kernel ops are pure reads over immutable
arrays, so concurrent connections need no locking beyond the store's
mutation lock (``load_shard``).
"""

from __future__ import annotations

import argparse
import socket
import sys
import threading
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.engine.remote import protocol
from repro.engine.remote.protocol import ConnectionClosed
from repro.exceptions import ProtocolError
from repro.linalg.power_iteration import PowerIterationDriver
from repro.truth_discovery.majority import agreement_counts


def _one_hot_block(users_local: np.ndarray, columns: np.ndarray,
                   num_rows: int, num_columns: int) -> sp.csr_matrix:
    """A shard's one-hot CSR row block (canonical answer order per row).

    The same block the thread backend caches on ``ShardedResponse`` and
    the process backend builds per worker: a SciPy matvec over it
    accumulates each user row in canonical answer order, bit-identical to
    the fused kernel and to the gather + ``np.bincount`` pair it replaces.
    """
    counts = np.bincount(users_local, minlength=num_rows)
    indptr = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    block = sp.csr_matrix((num_rows, num_columns))
    block.data = np.ones(columns.size, dtype=np.float64)
    block.indices = np.ascontiguousarray(columns)
    block.indptr = indptr
    return block


class ShardStore:
    """Shard slices plus the per-shard kernel computations.

    Each shard is registered once via :meth:`load_shard` with the same
    integer arrays the process backend ships through its pool initializer;
    the kernel methods then answer per-iteration requests against the
    stored slices.
    """

    def __init__(self) -> None:
        self._shards: Dict[int, Dict[str, np.ndarray]] = {}
        self._lock = threading.Lock()
        self._replica: Optional[Dict[str, object]] = None
        self._replica_step = None

    def __contains__(self, shard_id: int) -> bool:
        return shard_id in self._shards

    @property
    def shard_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._shards))

    def load_shard(
        self,
        shard_id: int,
        users: np.ndarray,
        items: np.ndarray,
        options: np.ndarray,
        columns: np.ndarray,
        user_start: int,
        user_stop: int,
    ) -> None:
        """Register (or re-register, idempotently) one shard's slices.

        ``users`` are global user ids (all within ``[user_start,
        user_stop)``); ``columns`` are the global binary-column ids of the
        shard's answers.  Arrays are copied so the store never aliases a
        receive buffer.
        """
        shard = {
            "users_local": np.asarray(users, dtype=np.int64) - int(user_start),
            "items": np.array(items, dtype=np.int64, copy=True),
            "options": np.array(options, dtype=np.int64, copy=True),
            "columns": np.array(columns, dtype=np.int64, copy=True),
            "user_start": int(user_start),
            "user_stop": int(user_stop),
        }
        with self._lock:
            self._shards[int(shard_id)] = shard

    def drop_shard(self, shard_id: int) -> None:
        with self._lock:
            self._shards.pop(int(shard_id), None)

    def _shard(self, shard_id: int) -> Dict[str, np.ndarray]:
        try:
            return self._shards[int(shard_id)]
        except KeyError:
            raise KeyError("shard %d is not loaded on this worker" % shard_id)

    # ------------------------------------------------------------------ #
    # Kernel ops — one per process-backend task function, same arithmetic
    # ------------------------------------------------------------------ #
    def gather_user(self, shard_id: int, vec_slice: np.ndarray) -> np.ndarray:
        """Per-answer user-score gather: ``out[j] = vec[user of answer j]``.

        ``vec_slice`` is the ``[user_start, user_stop)`` slice of the full
        user vector — the only part this shard's answers can touch.
        """
        shard = self._shard(shard_id)
        return np.take(np.asarray(vec_slice, dtype=np.float64),
                       shard["users_local"])

    def user_sums(self, shard_id: int, col_vec: np.ndarray) -> np.ndarray:
        """Per-user sums of the picked option values (disjoint row block).

        One fused CSR matvec over the shard's cached one-hot block.  The
        block is built lazily on first use (the column-space width comes
        from the request); a concurrent first use races benignly — both
        connections build the identical block and one wins the cache slot.
        """
        shard = self._shard(shard_id)
        col_vec = np.asarray(col_vec, dtype=np.float64)
        block = shard.get("block")
        if block is None or block.shape[1] != col_vec.size:
            block = _one_hot_block(
                shard["users_local"], shard["columns"],
                shard["user_stop"] - shard["user_start"], col_vec.size,
            )
            shard["block"] = block
        return block @ col_vec

    def histogram(self, shard_id: int, num_items: int, k: int) -> np.ndarray:
        """Shard's flat per-item option histogram (exact integers)."""
        shard = self._shard(shard_id)
        return np.bincount(shard["items"] * k + shard["options"],
                           minlength=num_items * k)

    def agreements(self, shard_id: int, majority: np.ndarray) -> np.ndarray:
        """Per-user majority-agreement counts (integer row block)."""
        shard = self._shard(shard_id)
        return agreement_counts(
            shard["users_local"], shard["items"], shard["options"],
            np.asarray(majority, dtype=np.int64),
            shard["user_stop"] - shard["user_start"],
        )

    def ds_counts(self, shard_id: int, num_classes: int,
                  posteriors: np.ndarray) -> np.ndarray:
        """Shard's block of the ``(m*k, k)`` confusion-count matrix."""
        shard = self._shard(shard_id)
        posteriors = np.asarray(posteriors, dtype=np.float64)
        keys = shard["users_local"] * num_classes + shard["options"]
        items = shard["items"]
        minlength = (shard["user_stop"] - shard["user_start"]) * num_classes
        return np.stack(
            [
                np.bincount(keys, weights=posteriors[items, label],
                            minlength=minlength)
                for label in range(num_classes)
            ],
            axis=1,
        )

    def ds_gather(self, shard_id: int, num_classes: int,
                  logconf_slice: np.ndarray) -> np.ndarray:
        """Per-answer log-confusion rows (E-step gather).

        ``logconf_slice`` is the ``[user_start*k, user_stop*k)`` row block
        of the flat log-confusion table.
        """
        shard = self._shard(shard_id)
        keys = shard["users_local"] * num_classes + shard["options"]
        return np.asarray(logconf_slice, dtype=np.float64)[keys]

    # ------------------------------------------------------------------ #
    # Full-replica ops (batched-iteration dispatch)
    # ------------------------------------------------------------------ #
    def load_replica(
        self,
        users: np.ndarray,
        items: np.ndarray,
        options: np.ndarray,
        num_options: np.ndarray,
        num_users: int,
        num_items: int,
    ) -> None:
        """Register (idempotently) the full canonical triples.

        Shipped once per worker by the coordinator when batched-iteration
        dispatch is on; :meth:`hnd_chunk` then advances solver state
        against a locally built replica of the fused kernel.
        """
        replica = {
            "users": np.array(users, dtype=np.int64, copy=True),
            "items": np.array(items, dtype=np.int64, copy=True),
            "options": np.array(options, dtype=np.int64, copy=True),
            "num_options": np.array(num_options, dtype=np.int64, copy=True),
            "num_users": int(num_users),
            "num_items": int(num_items),
        }
        with self._lock:
            self._replica = replica
            self._replica_step = None

    def _replica_diff_step(self):
        with self._lock:
            replica = self._replica
            step = self._replica_step
        if replica is None:
            raise KeyError("no replica is loaded on this worker")
        if step is None:
            from repro.core.avghits import hnd_difference_step
            from repro.core.response import ResponseMatrix

            matrix = ResponseMatrix.from_triples(
                replica["users"], replica["items"], replica["options"],
                shape=(replica["num_users"], replica["num_items"]),
                num_options=replica["num_options"],
            )
            step = hnd_difference_step(matrix)
            with self._lock:
                self._replica_step = step
        return step

    def hnd_chunk(
        self,
        meta: Dict[str, object],
        arrays: Dict[str, np.ndarray],
        steps: int,
    ) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        """Advance a serialized power-iteration driver ``steps`` iterations.

        Pure state-in/state-out over the replica: identical column layout
        and accumulation order to the parent's ``CompiledResponse``, so a
        chunk is bit-identical to the same iterations run anywhere else —
        and re-running it after a failover produces the same bytes.
        """
        driver = PowerIterationDriver.from_state(
            self._replica_diff_step(), meta, arrays
        )
        driver.advance(int(steps))
        return driver.export_state()


#: op name -> (store method, meta keys, array keys) — the request surface.
_KERNEL_OPS = {
    "gather_user": ("gather_user", (), ("vec",)),
    "user_sums": ("user_sums", (), ("vec",)),
    "histogram": ("histogram", ("num_items", "k"), ()),
    "agreements": ("agreements", (), ("majority",)),
    "ds_counts": ("ds_counts", ("num_classes",), ("posteriors",)),
    "ds_gather": ("ds_gather", ("num_classes",), ("logconf",)),
}


class WorkerServer:
    """Threaded socket server wrapping a :class:`ShardStore`.

    One thread per connection; each connection processes requests
    sequentially (the coordinator pipelines per-worker requests over a
    single connection, so this matches the traffic shape).  A protocol
    error poisons only its own connection — the socket is closed and the
    server keeps serving others.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.store = ShardStore()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(32)
        self.host, self.port = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._threads: list = []

    def serve_forever(self) -> None:
        """Accept connections until :meth:`shutdown` (or a shutdown op)."""
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed by shutdown()
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def serve_in_background(self) -> threading.Thread:
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def shutdown(self) -> None:
        self._stop.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while not self._stop.is_set():
                try:
                    op, meta, arrays = protocol.recv_message(conn)
                except ConnectionClosed:
                    return
                except (ProtocolError, OSError) as err:
                    print("worker: dropping connection: %s" % err,
                          file=sys.stderr, flush=True)
                    return
                try:
                    reply_meta, reply_arrays = self._dispatch(op, meta, arrays)
                except Exception as err:  # application error -> typed reply
                    protocol.send_message(
                        conn, "error",
                        {"message": str(err), "etype": type(err).__name__},
                    )
                    continue
                protocol.send_message(conn, "ok", reply_meta, reply_arrays)
                if op == "shutdown":
                    self.shutdown()
                    return
        except OSError:
            return  # peer vanished mid-reply; nothing to salvage
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _dispatch(self, op, meta, arrays):
        if op == "ping":
            return {"shards": list(self.store.shard_ids)}, {}
        if op == "shutdown":
            return {}, {}
        if op == "load_shard":
            self.store.load_shard(
                int(meta["shard_id"]),
                arrays["users"], arrays["items"], arrays["options"],
                arrays["columns"],
                int(meta["user_start"]), int(meta["user_stop"]),
            )
            return {"shard_id": int(meta["shard_id"])}, {}
        if op == "load_replica":
            self.store.load_replica(
                arrays["users"], arrays["items"], arrays["options"],
                arrays["num_options"],
                int(meta["num_users"]), int(meta["num_items"]),
            )
            return {}, {}
        if op == "hnd_chunk":
            state_meta, state_arrays = self.store.hnd_chunk(
                meta["state"], arrays, int(meta["steps"])
            )
            return {"state": state_meta}, state_arrays
        if op in _KERNEL_OPS:
            method, meta_keys, array_keys = _KERNEL_OPS[op]
            args = [int(meta[key]) for key in meta_keys]
            args += [arrays[key] for key in array_keys]
            result = getattr(self.store, method)(int(meta["shard_id"]), *args)
            return {}, {"out": result}
        raise ValueError("unknown op %r" % op)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.remote.worker",
        description="repro remote shard worker",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 picks an ephemeral port)")
    args = parser.parse_args(argv)
    server = WorkerServer(args.host, args.port)
    print("READY host=%s port=%d" % (server.host, server.port), flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        server.shutdown()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
