"""ChaosProxy: a fault-injecting TCP proxy for the remote backend.

Sits between the coordinator and one worker and forwards protocol frames
while injecting faults on command::

    proxy = ChaosProxy(worker_host, worker_port)
    proxy.start()
    engine = RemoteEngine(sharded, ["%s:%d" % (proxy.host, proxy.port)])
    proxy.set_fault("corrupt")        # flip payload bits from now on
    proxy.set_fault("pass")           # heal

Both directions are pumped **frame-aware** — the proxy parses the
``MAGIC | crc32 | length`` prefix and forwards whole frames — so faults
operate on protocol units and the client→server frame count is exact.
That counter drives deterministic mid-solve faults: ``on_request`` is
called with the running request number *before* the frame is forwarded,
letting a harness kill the worker after exactly N requests instead of
racing a wall-clock timer.

Faults (``set_fault(mode, ...)``):

* ``"pass"`` — forward faithfully (the default).
* ``"delay"`` — sleep ``delay`` seconds before forwarding each frame.
* ``"drop"`` — blackhole: consume frames, forward nothing (clients see
  a request timeout).
* ``"truncate"`` — forward only the first ``truncate_bytes`` bytes of the
  next frame, then sever that connection (clients see a cut-off frame).
* ``"corrupt"`` — XOR a byte in the payload, leaving the length intact
  (receivers see a checksum mismatch).
* ``"sever"`` — immediately close existing connections; new connections
  are accepted and instantly closed while the mode lasts.

Faults apply to a configurable ``direction``: ``"c2s"`` (requests),
``"s2c"`` (responses) or ``"both"``.  Every injected fault is appended to
:attr:`log` (and to ``log_path``, when given) for post-mortems.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from repro.engine.remote.protocol import MAGIC

_PREFIX = struct.Struct("!II")


class _Fault:
    def __init__(self, mode: str, direction: str, delay: float,
                 truncate_bytes: int) -> None:
        self.mode = mode
        self.direction = direction
        self.delay = delay
        self.truncate_bytes = truncate_bytes


class ChaosProxy:
    """A programmable fault-injecting TCP forwarder (see module docs)."""

    MODES = ("pass", "delay", "drop", "truncate", "corrupt", "sever")

    def __init__(self, target_host: str, target_port: int,
                 host: str = "127.0.0.1", port: int = 0,
                 log_path: Optional[Union[str, Path]] = None) -> None:
        self.target = (target_host, int(target_port))
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.host, self.port = self._listener.getsockname()[:2]
        self.log: List[str] = []
        self.log_path = None if log_path is None else Path(log_path)
        self.requests_forwarded = 0
        #: Called with the 1-based request number before forwarding it.
        self.on_request: Optional[Callable[[int], None]] = None
        self._fault = _Fault("pass", "both", 0.0, 0)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._conns: List[socket.socket] = []
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        return "%s:%d" % (self.host, self.port)

    # ------------------------------------------------------------------ #
    def start(self) -> "ChaosProxy":
        self._thread = threading.Thread(target=self._accept_loop,
                                        daemon=True, name="chaos-proxy")
        self._thread.start()
        self._log("proxy listening on %s -> %s:%d"
                  % (self.address, *self.target))
        return self

    def stop(self) -> None:
        self._stop.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        self._close_all()
        if self.log_path is not None:
            self.log_path.write_text("\n".join(self.log) + "\n")

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    def set_fault(self, mode: str, *, direction: str = "both",
                  delay: float = 0.0, truncate_bytes: int = 16) -> None:
        """Switch the active fault; ``"sever"`` also cuts live connections."""
        if mode not in self.MODES:
            raise ValueError("unknown fault %r (one of %s)"
                             % (mode, ", ".join(self.MODES)))
        with self._lock:
            self._fault = _Fault(mode, direction, delay, truncate_bytes)
        self._log("fault set: %s (direction=%s)" % (mode, direction))
        if mode == "sever":
            self._close_all()

    def heal(self) -> None:
        self.set_fault("pass")

    # ------------------------------------------------------------------ #
    def _log(self, message: str) -> None:
        with self._lock:
            self.log.append("[%.3f] %s" % (time.monotonic(), message))

    def _close_all(self) -> None:
        with self._lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            if self._fault.mode == "sever":
                self._log("sever: refusing new connection")
                client.close()
                continue
            try:
                upstream = socket.create_connection(self.target, timeout=5.0)
            except OSError as err:
                self._log("upstream connect failed: %s" % err)
                client.close()
                continue
            with self._lock:
                self._conns += [client, upstream]
            for source, sink, direction in (
                (client, upstream, "c2s"), (upstream, client, "s2c"),
            ):
                threading.Thread(
                    target=self._pump, args=(source, sink, direction),
                    daemon=True,
                ).start()
            self._log("connection established")

    # ------------------------------------------------------------------ #
    def _read_exact(self, sock: socket.socket, n: int) -> bytes:
        pieces = []
        while n > 0:
            piece = sock.recv(min(n, 1 << 20))
            if not piece:
                raise ConnectionError("eof")
            pieces.append(piece)
            n -= len(piece)
        return b"".join(pieces)

    def _pump(self, source: socket.socket, sink: socket.socket,
              direction: str) -> None:
        """Forward whole protocol frames from ``source`` to ``sink``."""
        try:
            while not self._stop.is_set():
                prefix = self._read_exact(source, len(MAGIC) + _PREFIX.size)
                if prefix[:4] != MAGIC:  # not our protocol; bail out
                    raise ConnectionError("non-protocol bytes")
                _, length = _PREFIX.unpack(prefix[4:])
                frame = prefix + self._read_exact(source, length)
                if direction == "c2s":
                    with self._lock:
                        self.requests_forwarded += 1
                        count = self.requests_forwarded
                    if self.on_request is not None:
                        self.on_request(count)
                if not self._forward(frame, sink, direction):
                    break
        except (ConnectionError, OSError):
            pass
        finally:
            for sock in (source, sink):
                try:
                    sock.close()
                except OSError:  # pragma: no cover
                    pass

    def _forward(self, frame: bytes, sink: socket.socket,
                 direction: str) -> bool:
        fault = self._fault
        applies = fault.direction in ("both", direction)
        if applies and fault.mode == "delay":
            self._log("delaying %s frame %.3fs" % (direction, fault.delay))
            time.sleep(fault.delay)
        elif applies and fault.mode == "drop":
            self._log("dropping %s frame (%d bytes)" % (direction, len(frame)))
            return True
        elif applies and fault.mode == "truncate":
            cut = min(fault.truncate_bytes, len(frame))
            self._log("truncating %s frame to %d of %d bytes, severing"
                      % (direction, cut, len(frame)))
            sink.sendall(frame[:cut])
            return False
        elif applies and fault.mode == "corrupt":
            index = len(frame) - 1  # flip a payload byte, keep the prefix
            frame = frame[:index] + bytes([frame[index] ^ 0xFF])
            self._log("corrupting %s frame (%d bytes)" % (direction, len(frame)))
        elif fault.mode == "sever":
            self._log("severing during %s forward" % direction)
            return False
        sink.sendall(frame)
        return True
