"""Fault tolerance for the remote backend: timeouts, retries, breakers.

Three cooperating pieces:

* :class:`SupervisionConfig` — every knob in one dataclass with
  production-ish defaults (tests shrink the timeouts to keep the fault
  matrix fast).
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine, per worker.  ``breaker_threshold`` *consecutive* failures trip
  it open; while open every request fails fast with
  :class:`~repro.exceptions.CircuitOpenError` (no network touched); after
  ``breaker_reset`` seconds one probe request is let through (half-open)
  and its outcome closes or re-opens the breaker.
* :class:`WorkerClient` — a supervised connection to one worker.  Every
  engine op is a pure function of the request (shard slices are immutable
  once shipped), so every request is **idempotent and safe to retry**:
  the client retries connection losses, protocol violations, and timeouts
  with exponential backoff plus jitter, up to ``max_attempts``, before
  surfacing a typed error.  Application errors the worker *reports* (an
  unknown shard, a compute error) are not transport failures and are
  raised immediately without retry.

Heartbeats run on a **separate short-lived connection** per probe, so a
long-running kernel request on the main connection never makes a healthy
worker look dead, and a stuck worker is detected even while the main
connection is idle.  Heartbeat outcomes feed the same breaker as requests.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.engine.remote import protocol
from repro.exceptions import (
    CircuitOpenError,
    EngineError,
    ProtocolError,
    WorkerTimeoutError,
    WorkerUnavailableError,
)


@dataclass(frozen=True)
class SupervisionConfig:
    """Every supervision knob, in one place.

    Attributes
    ----------
    request_timeout:
        Seconds a single request attempt may take end-to-end.
    connect_timeout:
        Seconds to wait for a TCP connect.
    max_attempts:
        Total attempts per request (first try + retries).
    backoff_base / backoff_multiplier / backoff_max:
        Exponential backoff between attempts: the ``i``-th retry sleeps
        ``min(backoff_base * backoff_multiplier**i, backoff_max)`` seconds
        before jitter.
    jitter:
        Fraction of each backoff delay randomized away (0.5 means the
        sleep is uniform in ``[0.5 * d, d]``), decorrelating retry storms.
    heartbeat_interval:
        Seconds between background pings per worker; ``0`` disables the
        heartbeat thread.
    heartbeat_timeout:
        Deadline for one heartbeat probe (connect + ping round trip).
    breaker_threshold:
        Consecutive failures that trip the breaker open.
    breaker_reset:
        Seconds the breaker stays open before allowing a half-open probe.
    """

    request_timeout: float = 30.0
    connect_timeout: float = 5.0
    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.5
    heartbeat_interval: float = 2.0
    heartbeat_timeout: float = 1.0
    breaker_threshold: int = 3
    breaker_reset: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1, got %d"
                             % self.max_attempts)
        if self.request_timeout <= 0 or self.connect_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1], got %r" % self.jitter)
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1, got %d"
                             % self.breaker_threshold)


def backoff_delays(config: SupervisionConfig,
                   rng: random.Random) -> Iterator[float]:
    """The jittered sleep before each retry (``max_attempts - 1`` values)."""
    delay = config.backoff_base
    for _ in range(config.max_attempts - 1):
        capped = min(delay, config.backoff_max)
        yield capped * (1.0 - config.jitter * rng.random())
        delay *= config.backoff_multiplier


class CircuitBreaker:
    """Per-worker closed → open → half-open breaker.

    Thread-safe.  ``clock`` is injectable for deterministic tests.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(self, threshold: int = 3, reset_timeout: float = 5.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.threshold = threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (self._state == self.OPEN
                and self._clock() - self._opened_at >= self.reset_timeout):
            self._state = self.HALF_OPEN
            self._probing = False

    def allow(self) -> bool:
        """May a request proceed now?  Half-open admits a single probe."""
        with self._lock:
            self._maybe_half_open()
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def retry_after(self) -> float:
        """Seconds until the breaker would admit a probe (0 when it would)."""
        with self._lock:
            self._maybe_half_open()
            if self._state == self.OPEN:
                return max(
                    0.0,
                    self.reset_timeout - (self._clock() - self._opened_at),
                )
            return 0.0

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = self.CLOSED
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == self.HALF_OPEN or self._failures >= self.threshold:
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probing = False


class WorkerClient:
    """A supervised, retrying connection to one remote worker."""

    def __init__(self, host: str, port: int,
                 config: Optional[SupervisionConfig] = None,
                 *, seed: Optional[int] = None) -> None:
        self.host = host
        self.port = int(port)
        self.config = config or SupervisionConfig()
        self.breaker = CircuitBreaker(self.config.breaker_threshold,
                                      self.config.breaker_reset)
        # Jitter draws come from a private generator: request retries must
        # never touch global random state (solver reproducibility).
        self._rng = random.Random(seed if seed is not None
                                  else (hash((host, port)) & 0xFFFF))
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None

    @property
    def address(self) -> str:
        return "%s:%d" % (self.host, self.port)

    # ------------------------------------------------------------------ #
    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.config.connect_timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _drop(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    def close(self) -> None:
        with self._lock:
            self._drop()

    # ------------------------------------------------------------------ #
    def request(
        self,
        op: str,
        meta: Optional[Dict[str, object]] = None,
        arrays: Optional[Dict[str, np.ndarray]] = None,
        *,
        shard: Optional[int] = None,
    ) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        """One supervised request: breaker gate, retries, typed failures."""
        if not self.breaker.allow():
            raise CircuitOpenError(
                "circuit breaker for worker %s is %s"
                % (self.address, self.breaker.state),
                worker=self.address, shard=shard,
                retry_after=self.breaker.retry_after(),
            )
        with self._lock:
            delays = backoff_delays(self.config, self._rng)
            last_error: Optional[BaseException] = None
            timed_out = False
            for attempt in range(self.config.max_attempts):
                if attempt:
                    time.sleep(next(delays))
                try:
                    if self._sock is None:
                        self._sock = self._connect()
                    self._sock.settimeout(self.config.request_timeout)
                    protocol.send_message(self._sock, op, meta, arrays)
                    reply_op, reply_meta, reply_arrays = protocol.recv_message(
                        self._sock
                    )
                except (socket.timeout, TimeoutError) as err:
                    self._drop()
                    self.breaker.record_failure()
                    last_error, timed_out = err, True
                    continue
                except (ProtocolError, ConnectionError, OSError) as err:
                    self._drop()
                    self.breaker.record_failure()
                    last_error, timed_out = err, False
                    continue
                if reply_op == "error":
                    # The worker answered; transport is healthy.  The op
                    # itself failed — retrying the same bad request cannot
                    # help, so surface it immediately.
                    self.breaker.record_success()
                    raise EngineError(
                        "worker %s rejected %r: %s"
                        % (self.address, op, reply_meta.get("message")),
                        worker=self.address, shard=shard,
                    )
                self.breaker.record_success()
                return reply_meta, reply_arrays
            if timed_out:
                raise WorkerTimeoutError(
                    "worker %s did not answer %r within %.3gs "
                    "(%d attempts)" % (self.address, op,
                                       self.config.request_timeout,
                                       self.config.max_attempts),
                    worker=self.address, shard=shard,
                    timeout=self.config.request_timeout,
                ) from last_error
            raise WorkerUnavailableError(
                "worker %s unreachable after %d attempts: %s"
                % (self.address, self.config.max_attempts, last_error),
                worker=self.address, shard=shard,
            ) from last_error

    # ------------------------------------------------------------------ #
    def ping(self) -> Dict[str, object]:
        """One heartbeat probe on a fresh, short-lived connection.

        Raises :class:`~repro.exceptions.WorkerUnavailableError` on any
        failure; feeds the breaker either way.  Never touches the main
        request connection, so it stays honest while a long op is in
        flight.
        """
        deadline = self.config.heartbeat_timeout
        try:
            with socket.create_connection((self.host, self.port),
                                          timeout=deadline) as sock:
                sock.settimeout(deadline)
                protocol.send_message(sock, "ping")
                reply_op, reply_meta, _ = protocol.recv_message(sock)
        except (ProtocolError, ConnectionError, OSError,
                socket.timeout, TimeoutError) as err:
            self.breaker.record_failure()
            raise WorkerUnavailableError(
                "heartbeat to worker %s failed: %s" % (self.address, err),
                worker=self.address,
            ) from err
        if reply_op != "ok":  # pragma: no cover - worker never errors a ping
            self.breaker.record_failure()
            raise WorkerUnavailableError(
                "heartbeat to worker %s returned %r" % (self.address, reply_op),
                worker=self.address,
            )
        self.breaker.record_success()
        return reply_meta


class HeartbeatMonitor:
    """Background pinger: probes every client each ``heartbeat_interval``.

    Failures only feed each client's breaker (and the ``on_event`` log) —
    acting on them is the coordinator's job, at the next request, through
    the breaker.  The thread is a daemon and never blocks shutdown.
    """

    def __init__(self, clients: Dict[object, WorkerClient],
                 config: SupervisionConfig,
                 on_event: Optional[Callable[..., None]] = None) -> None:
        self._clients = clients
        self._config = config
        self._on_event = on_event or (lambda *a, **k: None)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def forget(self, key: object) -> None:
        """Stop probing one client (e.g. a worker declared lost)."""
        self._clients.pop(key, None)

    def start(self) -> None:
        if self._config.heartbeat_interval <= 0 or self._thread is not None:
            return
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-heartbeat")
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2 * self._config.heartbeat_interval)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self._config.heartbeat_interval):
            for key, client in list(self._clients.items()):
                if self._stop.is_set():
                    return
                try:
                    client.ping()
                except WorkerUnavailableError as err:
                    self._on_event("heartbeat_failed", worker=client.address,
                                   error=str(err),
                                   breaker=client.breaker.state)
